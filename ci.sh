#!/usr/bin/env sh
# Local CI gate: formatting, lints, tests.
#
#   ./ci.sh          # fmt check + clippy -D warnings + tests
#   ./ci.sh --fast   # skip clippy (quick pre-commit loop)
#
# Everything runs offline: the external dependencies are vendored
# stand-ins under vendor/ (see vendor/README.md).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

if [ "${1:-}" != "--fast" ]; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo test -q (tier-1: facade package)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> net integration gate: loopback server/client conservation under a hard timeout"
timeout 300 cargo test -q -p offloadnn-net --test loopback

echo "==> reshard gate: deterministic harness on two fixed seeds plus one random one"
for seed in 1 424242 "$(awk 'BEGIN{srand();print int(rand()*65536)}')"; do
    echo "    RESHARD_SEED=$seed"
    RESHARD_SEED="$seed" timeout 300 cargo test -q -p offloadnn-serve --test reshard_harness
done

echo "==> reshard gate: live 4->8->2 reshard over TCP under sustained load"
timeout 300 cargo run -q --release -p offloadnn-net --bin net_loadgen -- \
    --requests 8000 --clients 4 --shards 4 --scale-script "2000:8,5000:2" >/dev/null

echo "==> reactor gate: live 4->8->2 reshard through the epoll frontend"
timeout 300 cargo run -q --release -p offloadnn-net --bin net_loadgen -- \
    --frontend reactor --requests 8000 --clients 4 --shards 4 --scale-script "2000:8,5000:2" >/dev/null

echo "==> reactor gate: 512 concurrent connections on the fixed-size event-loop pool"
timeout 300 cargo run -q --release -p offloadnn-net --bin net_loadgen -- \
    --frontend reactor --requests 5120 --clients 512 --window 4 --shards 2 --ues 3 >/dev/null

echo "==> gateway gate: deterministic kill-one-node failover harness on fixed + random seeds"
for seed in 42 31337 "$(awk 'BEGIN{srand();print int(rand()*65536)}')"; do
    echo "    GATEWAY_SEED=$seed"
    GATEWAY_SEED="$seed" timeout 300 cargo test -q -p offloadnn-gateway --test failover_harness
done

echo "==> gateway gate: live 3-node loopback cluster, one node killed mid-run"
timeout 300 cargo run -q --release -p offloadnn-gateway --bin gateway_loadgen -- \
    --nodes 3 --requests 3000 --clients 4 --kill-node-at 1200 >/dev/null

echo "==> gateway gate: hedged requests through the reactor frontend"
timeout 300 cargo run -q --release -p offloadnn-gateway --bin gateway_loadgen -- \
    --frontend reactor --nodes 2 --requests 2000 --hedge --deadline-ms 40 >/dev/null

echo "==> discovery gate: deterministic membership-churn harness on fixed + random seeds"
for seed in 42 31337 "$(awk 'BEGIN{srand();print int(rand()*65536)}')"; do
    echo "    DISCOVERY_SEED=$seed"
    DISCOVERY_SEED="$seed" timeout 300 cargo test -q -p offloadnn-gateway --test discovery_harness
done

echo "==> discovery gate: live hot-join + graceful leave under load"
timeout 300 cargo run -q --release -p offloadnn-gateway --bin gateway_loadgen -- \
    --nodes 2 --requests 3000 --clients 4 --join-node-at 600 --leave-node-at 1800 >/dev/null

echo "==> federation gate: deterministic two-cluster overflow harness on fixed + random seeds"
for seed in 42 31337 "$(awk 'BEGIN{srand();print int(rand()*65536)}')"; do
    echo "    FEDERATION_SEED=$seed"
    FEDERATION_SEED="$seed" timeout 300 cargo test -q -p offloadnn-gateway --test federation_harness
done

echo "==> federation gate: live two-gateway overflow forwarding over the wire"
timeout 300 cargo run -q --release -p offloadnn-gateway --bin gateway_loadgen -- \
    --nodes 1 --shards 1 --queue-capacity 8 --requests 2000 --clients 4 --peer >/dev/null

echo "==> admitter gate: the same workload conserves through every tier behind the unified API"
timeout 300 cargo test -q -p offloadnn-gateway --test admitter_conservation

echo "==> plancache gate: cached-equals-fresh equivalence on fixed + random seeds"
for seed in "$(awk 'BEGIN{srand();print int(rand()*65536)}')"; do
    echo "    PLANCACHE_SEED=$seed (plus the baked-in fixed seeds)"
    PLANCACHE_SEED="$seed" timeout 300 cargo test -q -p offloadnn-serve --test plancache_equivalence
done
timeout 300 cargo test -q -p offloadnn-serve --test plancache_staleness

echo "==> plancache gate: Zipf loadgen hit-rate + solve-path speedup with conservation intact"
# The large scenario with per-request rounds is where the solver cost
# dominates; measured speedup is 1.3-1.5x, gated at 1.15x with a 0.70
# hit-rate floor. The binary exits non-zero on any conservation breach.
timeout 600 cargo run -q --release -p offloadnn-serve --bin serve_loadgen -- \
    --requests 2000 --scenario large --batch-max 1 --shape-skew 1.2 --shape-pool 32 \
    --seed 7 --plan-cache true --compare-baseline true \
    --min-hit-rate 0.70 --min-speedup 1.15 >/dev/null

echo "==> telemetry overhead gate: workspace builds and tier-1 passes with telemetry compiled out"
cargo build --workspace --features telemetry-disabled
cargo test -q --features telemetry-disabled
timeout 300 cargo test -q -p offloadnn-serve --test reshard_telemetry --features offloadnn-telemetry/disabled
timeout 300 cargo test -q -p offloadnn-net --test net_telemetry --features offloadnn-telemetry/disabled
timeout 300 cargo test -q -p offloadnn-gateway --test gateway_telemetry --features offloadnn-telemetry/disabled
timeout 300 cargo test -q -p offloadnn-gateway --test discovery_harness --features offloadnn-telemetry/disabled
timeout 300 cargo test -q -p offloadnn-gateway --test federation_harness --features offloadnn-telemetry/disabled
timeout 300 cargo test -q -p offloadnn-plancache --features offloadnn-telemetry/disabled

echo "==> cargo bench smoke (criterion --test mode)"
cargo bench --workspace -- --test >/dev/null

echo "CI green."

//! Large-scale scenario (Table IV): 20 tasks, 125 dynamic DNN structures,
//! compared across request-rate levels against the SEM-O-RAN baseline.
//!
//! Run with `cargo run --release --example large_scale_admission`.

use offloadnn::core::heuristic::OffloadnnSolver;
use offloadnn::core::objective::verify;
use offloadnn::core::scenario::{large_scenario, LoadLevel};
use offloadnn::core::SolutionSummary;
use offloadnn::semoran::SemORanSolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for load in LoadLevel::ALL {
        let scenario = large_scenario(load);
        let instance = &scenario.instance;

        let off = OffloadnnSolver::new().solve(instance)?;
        assert!(verify(instance, &off).is_empty());
        let osum = SolutionSummary::of(instance, &off);

        let sem = SemORanSolver::new().solve(instance)?;

        println!("\n=== load {} ({} req/s per task) ===", load.name(), load.rate_hz());
        println!(
            "OffloaDNN: {} admitted (weighted {:.2}), memory {:.0}%, compute {:.1}%, solved in {:.1} ms",
            off.admitted_tasks(),
            osum.weighted_admission,
            osum.memory_utilisation * 100.0,
            osum.compute_utilisation * 100.0,
            off.solve_seconds * 1e3
        );
        println!(
            "SEM-O-RAN: {} admitted (value {:.2}), memory {:.0}%, compute {:.1}%",
            sem.admitted_tasks(),
            sem.value,
            sem.memory_used / instance.budgets.memory_bytes * 100.0,
            sem.compute_used / instance.budgets.compute_seconds * 100.0
        );

        // Show how block sharing plays out: how many distinct blocks serve
        // the admitted tasks, vs the sum of per-task path lengths.
        let chosen: Vec<_> = off
            .choices
            .iter()
            .enumerate()
            .filter_map(|(t, c)| c.map(|o| instance.options[t][o].path.clone()))
            .collect();
        let unique = scenario.repo.unique_blocks(chosen.iter()).len();
        let total: usize = chosen.iter().map(|p| p.blocks.len()).sum();
        println!("block sharing: {total} path-blocks served by {unique} distinct resident blocks");
    }
    Ok(())
}

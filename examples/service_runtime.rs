//! The sharded admission-control service runtime end to end: start a
//! fleet of controller shards, submit a burst of concurrent requests,
//! watch verdicts and live metrics, depart some admitted tasks, drain
//! gracefully, and check the conservation invariant.
//!
//! Run with `cargo run --release --example service_runtime`.

use offloadnn::core::scenario::small_scenario;
use offloadnn::core::task::TaskId;
use offloadnn::serve::{Outcome, Service, ServiceConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = small_scenario(5);
    let instance = &scenario.instance;

    // Four shards, each owning a quarter of the edge budgets and its own
    // controller. Requests batch for up to 1 ms before a solver round.
    let config =
        ServiceConfig { shards: 4, batch_window: Duration::from_millis(1), ..ServiceConfig::default() };
    let service = Service::start(config, instance)?;
    println!(
        "started {} shards, each with {:.1} RBs / {:.2} GPU-s/s / {:.2} GB\n",
        config.shards,
        instance.budgets.rbs / config.shards as f64,
        instance.budgets.compute_seconds / config.shards as f64,
        instance.budgets.memory_bytes / config.shards as f64 / 1e9,
    );

    // Offer 40 requests derived from the scenario's five prototypes,
    // each with a unique task id (the id picks the shard).
    let mut tickets = Vec::new();
    for i in 0..40u32 {
        let proto = (i as usize) % instance.tasks.len();
        let mut task = instance.tasks[proto].clone();
        task.id = TaskId(1000 + i);
        let ticket = service.submit(task, instance.options[proto].clone())?;
        tickets.push(ticket);
    }

    // Redeem the tickets; every request gets exactly one verdict.
    let mut admitted: Vec<TaskId> = Vec::new();
    for ticket in &tickets {
        match ticket.wait().expect("workers resolve every ticket") {
            Outcome::Admitted { admission, rbs, shard } => {
                println!(
                    "task {:>4} -> shard {shard}: admitted (z = {admission:.2}, {rbs:.2} RBs)",
                    ticket.task.0
                );
                admitted.push(ticket.task);
            }
            Outcome::Rejected { shard } => {
                println!("task {:>4} -> shard {shard}: rejected", ticket.task.0)
            }
            Outcome::Shed { shard } => {
                println!("task {:>4} -> shard {shard}: shed (backpressure)", ticket.task.0)
            }
            Outcome::Expired { shard } => {
                println!("task {:>4} -> shard {shard}: expired in queue", ticket.task.0)
            }
        }
    }

    let live = service.metrics();
    println!("\nlive metrics while running:\n{live}\n");

    // Half the admitted tasks finish; their shards release the capacity
    // (routing by task id reaches the controller that holds each task).
    let departing = admitted.len() / 2;
    for id in admitted.drain(..departing) {
        service.depart(id);
    }
    println!("departed {departing} tasks\n");

    // Graceful drain: ingress closes, every queued request still gets a
    // verdict, workers join and report their final controller state.
    let report = service.drain();
    println!("final metrics:\n{}\n", report.metrics);
    for shard in &report.shards {
        println!(
            "shard {}: {} rounds, {} tasks active at exit, peak {:.2}/{:.2} RBs",
            shard.shard, shard.rounds, shard.snapshot.active_tasks, shard.peak_rbs, shard.budgets.rbs
        );
    }

    assert!(report.metrics.is_conserved(), "every request must have exactly one verdict");
    assert!(report.within_budgets(), "no shard may exceed its budget partition");
    println!("\nconservation holds: submitted = admitted + rejected + shed + expired");
    Ok(())
}

//! Dynamic arrivals (the Sec. III-B remark): solve for three initial
//! tasks, deploy them, then admit two newly arrived tasks against the
//! residual capacity — already-deployed blocks are free, so the new tasks
//! preferentially reuse them.
//!
//! Run with `cargo run --release --example incremental_admission`.

use offloadnn::core::heuristic::OffloadnnSolver;
use offloadnn::core::incremental::{residual_instance, DeployedState};
use offloadnn::core::objective::verify;
use offloadnn::core::scenario::small_scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 1: the edge starts with the full five-task instance but only
    // the first three tasks have arrived.
    let scenario = small_scenario(5);
    let mut first = scenario.instance.clone();
    for t in 3..5 {
        // Not arrived yet: model as zero-priority, unadmittable for now.
        first.options[t].clear();
    }
    let sol1 = OffloadnnSolver::new().solve(&first)?;
    assert!(verify(&first, &sol1).is_empty());
    println!("phase 1: admitted {} of 3 arrived tasks", sol1.admitted_tasks());

    let deployed = DeployedState::from_solution(&first, &sol1);
    println!(
        "deployed: {} blocks, {:.2} GB, {:.2} GPU-s/s, {:.1} RBs",
        deployed.blocks.len(),
        deployed.memory_bytes / 1e9,
        deployed.compute_seconds,
        deployed.rbs
    );

    // Phase 2: tasks 4 and 5 arrive; solve them against the residual.
    let mut second = scenario.instance.clone();
    for t in 0..3 {
        second.options[t].clear();
    }
    let residual = residual_instance(&second, &deployed);
    let sol2 = OffloadnnSolver::new().solve(&residual)?;
    assert!(verify(&residual, &sol2).is_empty());
    println!("phase 2: admitted {} of 2 new tasks against residual capacity", sol2.admitted_tasks());

    for (t, c) in sol2.choices.iter().enumerate() {
        if let Some(o) = c {
            let opt = &residual.options[t][*o];
            let reused = opt.path.blocks.iter().filter(|b| deployed.blocks.contains(b)).count();
            println!(
                "  task {} -> {} (z = {:.2}), reuses {}/{} blocks already deployed",
                t + 1,
                opt.label,
                sol2.admission[t],
                reused,
                opt.path.blocks.len()
            );
        }
    }
    Ok(())
}

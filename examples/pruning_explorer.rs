//! Explore the structured-pruning design space: parameters, FLOPs,
//! estimated edge latency and deployed accuracy of every Table I
//! configuration at several prune ratios, for ResNet-18 and MobileNetV2.
//!
//! Run with `cargo run --release --example pruning_explorer`.

use offloadnn::dnn::config::{Config, PathConfig};
use offloadnn::dnn::models::{mobilenet_v2, resnet18};
use offloadnn::dnn::repository::Repository;
use offloadnn::dnn::{GroupId, TensorShape};
use offloadnn::profiler::cost::{path_accuracy, CostTable, ProfileConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = TensorShape::new(3, 224, 224);
    let profile = ProfileConfig::reference();

    for (name, model) in
        [("ResNet-18", resnet18(60, 1000, input)), ("MobileNetV2", mobilenet_v2(60, 1000, input))]
    {
        println!("\n=== {name} ===");
        println!(
            "{:>18} {:>6} {:>10} {:>10} {:>9} {:>8}",
            "configuration", "ratio", "params", "GFLOPs", "lat [ms]", "acc"
        );
        for ratio in [0.5, 0.8] {
            let mut repo = Repository::new();
            let m = repo.add_model(model.clone());
            for cfg in [Config::B, Config::C, Config::D, Config::A] {
                for pruned in [false, true] {
                    let pc = PathConfig { config: cfg, pruned };
                    let path = repo.instantiate_path(m, GroupId(0), pc, ratio)?;
                    let table = CostTable::profile(&repo, &profile);
                    let acc = path_accuracy(&mut repo, &profile.accuracy, &path, 1.0, 0.0);
                    println!(
                        "{:>18} {:>6} {:>10} {:>10.2} {:>9.2} {:>8.3}",
                        pc.label(),
                        if pruned { format!("{ratio}") } else { "-".into() },
                        repo.path_params(&path),
                        repo.path_flops(&path) as f64 / 1e9,
                        table.path_compute_seconds(&path) * 1e3,
                        acc,
                    );
                }
            }
        }
    }
    Ok(())
}

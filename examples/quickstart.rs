//! Quickstart: build the paper's small-scale scenario, solve it with the
//! OffloaDNN heuristic, and print the decisions.
//!
//! Run with `cargo run --release --example quickstart`.

use offloadnn::core::heuristic::OffloadnnSolver;
use offloadnn::core::objective::verify;
use offloadnn::core::scenario::small_scenario;
use offloadnn::core::SolutionSummary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = small_scenario(5);
    let instance = &scenario.instance;

    let solution = OffloadnnSolver::new().solve(instance)?;
    let violations = verify(instance, &solution);
    assert!(violations.is_empty(), "solver produced violations: {violations:?}");

    println!("OffloaDNN decisions for the small-scale scenario (T = 5):");
    for (t, task) in instance.tasks.iter().enumerate() {
        match solution.choices[t] {
            Some(o) => {
                let opt = &instance.options[t][o];
                println!(
                    "  {} ({:12}) -> {:28} z = {:.2}, r = {:4.1} RBs, acc {:.3} >= {:.2}, proc {:.1} ms",
                    task.id,
                    task.name,
                    opt.label,
                    solution.admission[t],
                    solution.rbs[t],
                    opt.accuracy,
                    task.min_accuracy,
                    opt.proc_seconds * 1e3,
                );
            }
            None => println!("  {} ({:12}) -> rejected", task.id, task.name),
        }
    }
    println!("\nsummary: {}", SolutionSummary::of(instance, &solution).row());
    Ok(())
}

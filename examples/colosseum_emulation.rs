//! Sec. V-B end to end: solve the 5-task small-scale scenario, deploy it
//! into the emulated LTE cell (the Colosseum stand-in) and trace per-task
//! end-to-end latency against the targets (Fig. 11).
//!
//! Run with `cargo run --release --example colosseum_emulation`.

use offloadnn::core::heuristic::OffloadnnSolver;
use offloadnn::core::scenario::small_scenario;
use offloadnn::emu::colosseum::{validate, ColosseumConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = small_scenario(5);
    let instance = &scenario.instance;
    let solution = OffloadnnSolver::new().solve(instance)?;

    let mut cfg = ColosseumConfig::reference();
    cfg.emulator.duration = 20.0;
    let report = validate(instance, &solution, &cfg)?;

    println!("Colosseum-style validation: 20 s, {} UEs, {}-RB cell", instance.num_tasks(), cfg.total_rbs);
    for (t, task) in instance.tasks.iter().enumerate() {
        let stats = &report.stats[t];
        println!(
            "task {} ({:12}): slice {:2} RBs | {:3} sent, {:3} done | mean {:.3} s, p95 {:.3} s (target {:.1} s) | misses {:.1}%",
            t + 1,
            task.name,
            solution.rbs[t].ceil() as u32,
            stats.admitted,
            stats.completed,
            report.mean_latency(t).unwrap_or(0.0),
            report.latency_percentile(t, 0.95).unwrap_or(0.0),
            task.max_latency,
            stats.miss_rate() * 100.0
        );
    }
    println!("GPU utilisation: {:.1}%", report.gpu_utilisation() * 100.0);
    Ok(())
}

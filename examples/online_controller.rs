//! The OffloaDNN controller run as a long-lived service (Fig. 4 over
//! time): tasks arrive in waves, are admitted against the residual
//! capacity (reusing already-deployed blocks for free), and depart —
//! releasing whatever no surviving task shares.
//!
//! Run with `cargo run --release --example online_controller`.

use offloadnn::core::controller::{AdmissionRequest, Controller};
use offloadnn::core::heuristic::OffloadnnSolver;
use offloadnn::core::scenario::small_scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = small_scenario(5);
    let instance = &scenario.instance;
    let mut controller = Controller::new(instance, OffloadnnSolver::new());

    let request =
        |t: usize| AdmissionRequest { task: instance.tasks[t].clone(), options: instance.options[t].clone() };
    let report = |c: &Controller, round: &str| {
        let d = c.deployed();
        let h = c.headroom();
        println!(
            "{round}: {} active tasks | {} resident blocks, {:.2} GB | headroom: {:.1} RBs, {:.2} GPU-s/s, {:.2} GB",
            c.active().len(),
            d.blocks.len(),
            d.memory_bytes / 1e9,
            h.rbs,
            h.compute_seconds,
            h.memory_bytes / 1e9
        );
    };

    // Round 1: three tasks arrive.
    let out = controller.submit(vec![request(0), request(1), request(2)])?;
    println!(
        "round 1: admitted {:?}, rejected {:?}",
        out.admitted.iter().map(|a| a.task.name.clone()).collect::<Vec<_>>(),
        out.rejected
    );
    report(&controller, "after round 1");

    // Round 2: two more arrive; deployed blocks are free for them.
    let out = controller.submit(vec![request(3), request(4)])?;
    println!(
        "\nround 2: admitted {:?} (reused blocks are free)",
        out.admitted.iter().map(|a| a.task.name.clone()).collect::<Vec<_>>()
    );
    report(&controller, "after round 2");

    // Round 3: tasks 1 and 2 depart; shared blocks survive if still used.
    let departed: Vec<_> = controller.active()[..2].iter().map(|a| a.task.id).collect();
    controller.release(&departed);
    report(&controller, "\nafter departures");

    // Round 4: 'trains' returns. Its configuration shares base feature
    // blocks with the survivors' paths, so part of its deployment is
    // already resident (and free in the residual instance).
    let resident_before = controller.deployed().blocks;
    let out = controller.submit(vec![request(1)])?;
    let a = &out.admitted[0];
    let reused = a.option.path.blocks.iter().filter(|b| resident_before.contains(b)).count();
    println!(
        "\nround 4: '{}' readmitted via {} (z = {:.2}); {}/{} of its blocks were already resident",
        a.task.name,
        a.option.label,
        a.admission,
        reused,
        a.option.path.blocks.len()
    );
    report(&controller, "final");
    Ok(())
}

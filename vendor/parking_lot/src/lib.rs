//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`/`RwLock`
//! API implemented over `std::sync`. Poisoning is absorbed by recovering
//! the inner guard — matching `parking_lot`'s semantics, where a panic
//! while holding a lock never poisons it.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

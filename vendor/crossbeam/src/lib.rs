//! Offline stand-in for `crossbeam`, providing the [`channel`] module the
//! workspace uses: cloneable multi-producer multi-consumer bounded and
//! unbounded FIFO channels with disconnect semantics and timed receives.
//!
//! Implemented over `Mutex` + two `Condvar`s rather than a lock-free
//! queue; throughput is ample for solver-round granularity (the service
//! runtime batches hundreds of requests per lock acquisition).

#![forbid(unsafe_code)]

pub mod channel;

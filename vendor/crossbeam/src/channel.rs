//! MPMC FIFO channels with the `crossbeam-channel` API surface this
//! workspace uses: `bounded` / `unbounded` construction, cloneable
//! [`Sender`] / [`Receiver`] halves, blocking, non-blocking and timed
//! operations, and disconnection when one side's handles all drop.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers have been dropped.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: the channel is empty and all
/// senders have been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn sender_disconnected(&self) -> bool {
        self.state.lock().unwrap().senders == 0
    }
}

/// The sending half of a channel. Cloning produces another producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloning produces another consumer;
/// each message is delivered to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel holding at most `cap` in-flight messages; sends block
/// (or [`TrySendError::Full`]) when it is at capacity.
///
/// # Panics
///
/// Panics if `cap` is zero (rendezvous channels are not supported by this
/// stand-in; no caller in the workspace uses them).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "zero-capacity channels are not supported");
    make(Some(cap))
}

/// Creates a channel with no backpressure: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Sends a message, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns the message if all receivers have been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.shared.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.shared.not_full.wait(state).unwrap();
                }
                _ => break,
            }
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Sends without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TrySendError::Full`] at capacity or
    /// [`TrySendError::Disconnected`] if all receivers are gone; both carry
    /// the message back.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and all senders
    /// have been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if no message is ready,
    /// [`TryRecvError::Disconnected`] if additionally all senders are gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives, blocking for at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if the deadline passes,
    /// [`RecvTimeoutError::Disconnected`] if the channel empties and all
    /// senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self.shared.not_empty.wait_timeout(state, deadline - now).unwrap();
            state = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every message currently in the queue without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut state = self.shared.state.lock().unwrap();
        let msgs: Vec<T> = state.queue.drain(..).collect();
        drop(state);
        self.shared.not_full.notify_all();
        msgs
    }

    /// Whether all senders have been dropped (messages may still remain).
    pub fn is_disconnected(&self) -> bool {
        self.shared.sender_disconnected()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            // Match crossbeam-channel: disconnecting the receive side
            // discards everything still queued, so in-flight messages'
            // `Drop` impls run now rather than whenever the last sender
            // goes away (a waiter on a reply channel inside a queued
            // message must learn about the disconnect promptly).
            let orphaned: VecDeque<T> = std::mem::take(&mut state.queue);
            drop(state);
            drop(orphaned);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").field("len", &self.len()).finish()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn recv_after_sender_drop_drains_then_errors() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap_err(), RecvError);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7).unwrap_err(), SendError(7));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u32>(1);
        let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Disconnected);
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let t = thread::spawn(move || tx.send(1).unwrap());
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 0);
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = unbounded();
        let n = 1000;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}

//! Offline stand-in for `criterion` covering the API this workspace's
//! benches use: [`Criterion`], [`BenchmarkId`], benchmark groups,
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: after a short warm-up, each benchmark runs
//! `sample_size` samples and reports min / mean / max wall-clock time per
//! iteration. Under `--test` (as in `cargo bench -- --test`) every
//! benchmark body executes exactly once and no timing is printed, which is
//! what CI uses to smoke-run benches quickly.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Runs `body` repeatedly, recording one timing sample per run (or
    /// exactly once in `--test` mode).
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        if self.test_mode {
            black_box(body());
            return;
        }
        // Warm-up: a few unrecorded runs to fault in caches/allocations.
        for _ in 0..2 {
            black_box(body());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `body` with an input value, reported under `id`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        body: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.criterion.test_mode, input, body);
        self
    }

    /// Benchmarks a closure reported under `name`.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut body: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, self.criterion.test_mode, &(), |b, ()| body(b));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(&mut self) {}
}

fn run_one<I>(
    label: &str,
    sample_size: usize,
    test_mode: bool,
    input: &I,
    mut body: impl FnMut(&mut Bencher<'_>, &I),
) {
    let mut samples = Vec::new();
    let mut bencher = Bencher { samples: &mut samples, sample_size, test_mode };
    body(&mut bencher, input);
    if test_mode {
        println!("test {label} ... ok");
        return;
    }
    if samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{label}: mean {:>12} [min {:>12}, max {:>12}] ({} samples)",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    /// Builds a harness configured from the process arguments: `--test`
    /// (passed by `cargo bench -- --test`) switches to single-iteration
    /// smoke mode; other flags cargo forwards are ignored.
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode, default_sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, sample_size: self.default_sample_size }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut body: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        run_one(&name.to_string(), self.default_sample_size, self.test_mode, &(), |b, ()| body(b));
        self
    }
}

/// Declares a benchmark group function running the listed targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
/// `pub` so a wrapper bench target (e.g. a root-package alias of a
/// bench living in another crate) can re-run it via `#[path]` + call.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        pub fn main() {
            $( $group(); )+
        }
    };
}

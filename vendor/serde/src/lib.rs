//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on most public types for
//! API-compatibility with the real crate, but never actually serializes
//! anything (there is no `serde_json` in the tree). This stand-in keeps the
//! derive sites compiling offline: the traits are empty markers and the
//! derives (re-exported from the vendored `serde_derive`) emit marker impls.
//!
//! If a future PR needs real serialization, replace `vendor/serde` with the
//! genuine crate and delete this file — no call sites need to change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods).
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

macro_rules! marker_impls {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

marker_impls!(
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
    ()
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for std::collections::HashSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::HashSet<T> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de> for std::collections::HashMap<K, V> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<K, V> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

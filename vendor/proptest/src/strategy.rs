//! The [`Strategy`] trait and the strategy combinators this workspace
//! uses: numeric ranges, tuples (up to 12 components), [`Just`] and
//! `prop_map`.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no value tree: strategies sample
/// directly from a deterministic RNG, and failing cases are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates with `self`, then with the strategy `f` builds from the
    /// value (dependent generation).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn sample(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*
    };
}

range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

//! Test-runner configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The RNG handed to strategies: a seeded [`StdRng`] wrapped so strategy
/// implementations outside this crate cannot depend on the concrete
/// generator.
#[derive(Debug, Clone)]
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    /// Creates the RNG for one case. The seed mixes a fixed salt with the
    /// case index, so every case explores a different region of the input
    /// space while remaining reproducible run-to-run.
    pub fn deterministic(case: u64) -> Self {
        Self(StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ (case.wrapping_mul(0x2545_F491_4F6C_DD1D))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn cases_are_reproducible_and_distinct() {
        let s = 0.0f64..1.0;
        let a: f64 = s.sample(&mut TestRng::deterministic(0));
        let b: f64 = s.sample(&mut TestRng::deterministic(0));
        let c: f64 = s.sample(&mut TestRng::deterministic(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! Offline stand-in for `proptest` covering the API surface this
//! workspace uses: the [`proptest!`] macro, range / tuple / collection
//! strategies, `prop_map`, `prop_assert!` family and [`ProptestConfig`].
//!
//! Semantics versus the real crate:
//!
//! * **Deterministic**: every case is generated from a fixed per-case
//!   seed, so runs are reproducible without a regression file (any
//!   `.proptest-regressions` files in the tree are ignored).
//! * **No shrinking**: a failing case reports the panic message from
//!   `prop_assert!` directly; the values are not minimized.
//!
//! These trade-offs keep the implementation small and dependency-free
//! while preserving the tests' ability to explore their input spaces.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// The accepted size specifications for [`vec`]: an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { start: n, end: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { start: r.start, end: r.end }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors of `element` values with a length
    /// drawn from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start + 1 == self.size.end {
                self.size.start
            } else {
                rng.0.random_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies over booleans.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.0.random_bool(0.5)
        }
    }
}

/// The common imports test modules glob in.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs one property function over `cases` deterministic samples.
/// Implementation detail of [`proptest!`].
#[doc(hidden)]
pub fn run_cases(cases: u32, mut f: impl FnMut(&mut test_runner::TestRng, u32)) {
    for case in 0..cases {
        let mut rng = test_runner::TestRng::deterministic(case as u64);
        f(&mut rng, case);
    }
}

/// Declares property tests: an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
/// `fn name(binding in strategy, ...) { body }` items, each expanded to a
/// `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(cfg.cases, |rng, case| {
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strat), rng);
                    )+
                    let run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    };
                    if let Err(msg) = run() {
                        panic!("proptest case {case} failed: {msg}");
                    }
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case with
/// a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
/// (The stand-in treats the case as vacuously passing rather than
/// resampling.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal derive that emits *marker* impls of the stand-in `serde` traits
//! (which carry no methods — see `vendor/serde`). The derive only needs to
//! recover the type name from the item; the field list is irrelevant.
//!
//! Supported input: non-generic `struct`/`enum`/`union` items, which covers
//! every derive site in this workspace. Generic items produce a compile
//! error naming this limitation rather than silently mis-expanding.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type identifier following the `struct`/`enum`/`union`
/// keyword, skipping outer attributes and visibility modifiers.
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // Outer attribute: `#` followed by a bracket group.
            TokenTree::Punct(ref p) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            TokenTree::Ident(ref id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    match iter.next() {
                        Some(TokenTree::Ident(name)) => {
                            if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                                return Err(format!(
                                    "vendored serde_derive does not support generic type `{name}`"
                                ));
                            }
                            return Ok(name.to_string());
                        }
                        _ => return Err("expected a type name after the item keyword".into()),
                    }
                }
                // `pub`, `pub(crate)`, etc.: keep scanning.
            }
            _ => {}
        }
    }
    Err("no struct/enum/union item found".into())
}

fn expand(input: TokenStream, template: &str) -> TokenStream {
    match type_name(input) {
        Ok(name) => template.replace("__NAME__", &name).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives the stand-in `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, "impl ::serde::Serialize for __NAME__ {}")
}

/// Derives the stand-in `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, "impl<'de> ::serde::Deserialize<'de> for __NAME__ {}")
}

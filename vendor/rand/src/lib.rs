//! Offline stand-in for `rand` covering the API surface this workspace
//! uses: a seedable deterministic [`rngs::StdRng`] plus
//! [`RngExt::random_range`] over numeric half-open ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation workloads and fully reproducible from a `u64`
//! seed, which is all the emulator, profiler and traffic models need.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Minimal core-RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Maps a uniform word to a double in `[0, 1)` with 53 random bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to draw a uniform sample of `T` from an RNG.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = unit_f64(rng.next_u64());
        // Clamp guards the open upper bound against rounding when the
        // span is many orders of magnitude larger than the start.
        (self.start + u * (self.end - self.start)).min(f64::from_bits(self.end.to_bits() - 1))
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        Range { start: self.start as f64, end: self.end as f64 }.sample_from(rng) as f32
    }
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    // Lemire-style widening reduction: maps a uniform u64
                    // into [0, span) with negligible bias for span << 2^64.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    ((self.start as u64).wrapping_add(hi)) as $t
                }
            }
        )*
    };
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Standard RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for the real
    /// crate's `StdRng`; not cryptographically secure, which no caller in
    /// this workspace requires).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn reproducible_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = 0usize;
        for _ in 0..10_000 {
            if rng.random_range(0.0f64..1.0) < 0.5 {
                lo += 1;
            }
        }
        assert!((4_000..6_000).contains(&lo), "uniformity: {lo}");
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(5..15);
            assert!((5..15).contains(&x));
            seen_low |= x == 5;
            seen_high |= x == 14;
        }
        assert!(seen_low && seen_high, "both endpoints reachable");
    }

    #[test]
    fn tiny_positive_f64_range_is_positive() {
        // The traffic generator samples f64::MIN_POSITIVE..1.0 and takes a
        // logarithm; zero would be fatal.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let _ = rng.random_range(0u64..u64::MAX);
        }
    }
}

//! # OffloaDNN — facade crate
//!
//! Re-exports the whole workspace of the ICDCS 2024 "OffloaDNN"
//! reproduction under one roof:
//!
//! * [`dnn`] — DNN structures, blocks, pruning, repositories.
//! * [`profiler`] — analytic latency/memory/accuracy/training models.
//! * [`radio`] — SNR-to-rate models, slices, traffic.
//! * [`core`] — the DOT problem, the OffloaDNN heuristic, the exact
//!   solver, scenarios and the admission controller.
//! * [`semoran`] — the SEM-O-RAN baseline.
//! * [`emu`] — the discrete-event edge/radio emulator.
//! * [`serve`] — the sharded admission-control service runtime
//!   (batching, backpressure, metrics, load generation).
//! * [`gateway`] — the multi-node offloading tier: health-checked
//!   weighted-rendezvous routing over a pool of serve nodes, with
//!   automatic failover and deadline-aware hedged requests.
//! * [`plancache`] — the shared admission plan cache: canonical
//!   task-shape fingerprints, sharded CLOCK eviction, per-entry TTL
//!   (shorter for negative entries), epoch invalidation on topology
//!   changes and single-flight solver dedup; wired into the serve
//!   shards and the gateway affinity tier.
//! * [`telemetry`] — zero-dependency instrumentation: lock-free
//!   counters/gauges, phase span histograms, ring-buffer event log and
//!   JSONL/table exporters (compile out with the `telemetry-disabled`
//!   feature).
//!
//! ```
//! use offloadnn::core::{scenario::small_scenario, OffloadnnSolver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let s = small_scenario(3);
//! let solution = OffloadnnSolver::new().solve(&s.instance)?;
//! assert_eq!(solution.admitted_tasks(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use offloadnn_core as core;
pub use offloadnn_dnn as dnn;
pub use offloadnn_emu as emu;
pub use offloadnn_gateway as gateway;
pub use offloadnn_net as net;
pub use offloadnn_plancache as plancache;
pub use offloadnn_profiler as profiler;
pub use offloadnn_radio as radio;
pub use offloadnn_semoran as semoran;
pub use offloadnn_serve as serve;
pub use offloadnn_telemetry as telemetry;

//! Cross-crate integration: the full small-scale pipeline from DNN
//! catalog construction through solving to emulated deployment.

use offloadnn::core::exact::ExactSolver;
use offloadnn::core::heuristic::OffloadnnSolver;
use offloadnn::core::objective::{memory_bytes, verify};
use offloadnn::core::scenario::small_scenario;
use offloadnn::core::SolutionSummary;
use offloadnn::emu::colosseum::{validate, ColosseumConfig};

#[test]
fn heuristic_and_exact_are_feasible_for_all_sizes() {
    for t in 1..=5 {
        let s = small_scenario(t);
        let h = OffloadnnSolver::new().solve(&s.instance).unwrap();
        let o = ExactSolver::new().solve(&s.instance).unwrap();
        assert!(verify(&s.instance, &h).is_empty(), "heuristic T={t}: {:?}", verify(&s.instance, &h));
        assert!(verify(&s.instance, &o).is_empty(), "exact T={t}");
        assert!(
            o.cost.total() <= h.cost.total() + 1e-9,
            "T={t}: optimum {} must not exceed heuristic {}",
            o.cost.total(),
            h.cost.total()
        );
        // Paper claim: the heuristic matches the optimum very closely.
        assert!(
            h.cost.total() <= o.cost.total() * 1.10,
            "T={t}: heuristic {} strays >10% from optimum {}",
            h.cost.total(),
            o.cost.total()
        );
    }
}

#[test]
fn all_five_tasks_admitted_in_small_scenario() {
    let s = small_scenario(5);
    let h = OffloadnnSolver::new().solve(&s.instance).unwrap();
    assert_eq!(h.admitted_tasks(), 5, "resources are ample in Table IV's small scenario");
    for z in &h.admission {
        assert!((z - 1.0).abs() < 1e-9, "full admission expected, got {z}");
    }
}

#[test]
fn memory_accounting_matches_repository_union() {
    // The instance-level memory (blocks deduped by id) must equal the
    // repository's union accounting plus the per-block runtime overheads.
    let s = small_scenario(4);
    let h = OffloadnnSolver::new().solve(&s.instance).unwrap();
    let chosen: Vec<_> = h
        .choices
        .iter()
        .enumerate()
        .filter_map(|(t, c)| c.map(|o| s.instance.options[t][o].path.clone()))
        .collect();
    let unique = s.repo.unique_blocks(chosen.iter());
    let from_instance = memory_bytes(&s.instance, &h.choices, &h.admission);
    let from_repo: f64 = unique.iter().map(|&b| s.instance.memory_of(b)).sum();
    assert!((from_instance - from_repo).abs() < 1.0);
    // Sharing must be real: the union is smaller than the sum of paths.
    let sum_paths: f64 = chosen.iter().flat_map(|p| p.blocks.iter()).map(|&b| s.instance.memory_of(b)).sum();
    assert!(from_instance < sum_paths, "no sharing at all would be a regression");
}

#[test]
fn solved_solution_deploys_and_meets_latency() {
    let s = small_scenario(5);
    let h = OffloadnnSolver::new().solve(&s.instance).unwrap();
    let report = validate(&s.instance, &h, &ColosseumConfig::reference()).unwrap();
    for t in 0..5 {
        if h.admission[t] > 0.0 {
            let mean = report.mean_latency(t).expect("completions exist");
            assert!(mean <= s.instance.tasks[t].max_latency, "task {t}: emulated mean {mean} exceeds target");
        }
    }
    // Conservation across the whole deployment.
    for st in &report.stats {
        assert_eq!(st.generated, st.thinned + st.admitted);
        assert_eq!(st.admitted, st.completed + st.in_flight_at_end);
    }
}

#[test]
fn summaries_stay_within_budgets() {
    for t in 1..=5 {
        let s = small_scenario(t);
        let h = OffloadnnSolver::new().solve(&s.instance).unwrap();
        let sum = SolutionSummary::of(&s.instance, &h);
        assert!(sum.radio_utilisation <= 1.0 + 1e-9);
        assert!(sum.memory_utilisation <= 1.0 + 1e-9);
        assert!(sum.compute_utilisation <= 1.0 + 1e-9);
    }
}

#[test]
fn tighter_budgets_never_admit_more() {
    let s = small_scenario(5);
    let base = OffloadnnSolver::new().solve(&s.instance).unwrap();
    let mut tight = s.instance.clone();
    tight.budgets.rbs = 12.0;
    tight.budgets.memory_bytes /= 8.0;
    let squeezed = OffloadnnSolver::new().solve(&tight).unwrap();
    assert!(verify(&tight, &squeezed).is_empty());
    assert!(squeezed.weighted_admission(&tight) <= base.weighted_admission(&s.instance) + 1e-9);
}

//! Cross-crate integration: the large-scale scenario and the SEM-O-RAN
//! comparison — the paper's headline claims as executable assertions.

use offloadnn::core::heuristic::OffloadnnSolver;
use offloadnn::core::objective::verify;
use offloadnn::core::scenario::{large_scenario, LoadLevel};
use offloadnn::core::SolutionSummary;
use offloadnn::semoran::SemORanSolver;

#[test]
fn offloadnn_dominates_sem_o_ran_at_every_load() {
    for load in LoadLevel::ALL {
        let s = large_scenario(load);
        let off = OffloadnnSolver::new().solve(&s.instance).unwrap();
        assert!(verify(&s.instance, &off).is_empty(), "{load:?}");
        let osum = SolutionSummary::of(&s.instance, &off);
        let sem = SemORanSolver::new().solve(&s.instance).unwrap();
        let b = &s.instance.budgets;

        assert!(
            osum.weighted_admission > sem.value,
            "{load:?}: weighted admission {} vs {}",
            osum.weighted_admission,
            sem.value
        );
        assert!(off.admitted_tasks() >= sem.admitted_tasks(), "{load:?}: admitted counts");
        assert!(
            osum.memory_utilisation < 0.5 * sem.memory_used / b.memory_bytes,
            "{load:?}: block sharing + pruning must at least halve memory"
        );
        assert!(
            osum.compute_utilisation < 0.5 * sem.compute_used / b.compute_seconds,
            "{load:?}: pruned paths must at least halve inference compute"
        );
    }
}

#[test]
fn admission_profile_follows_priority_order() {
    // Fig. 9: admission ratios are non-increasing in task index (priority
    // strictly decreases with the index).
    for load in LoadLevel::ALL {
        let s = large_scenario(load);
        let off = OffloadnnSolver::new().solve(&s.instance).unwrap();
        for w in off.admission.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "{load:?}: admission must not increase down the priority list");
        }
    }
}

#[test]
fn high_load_saturates_radio_and_drops_tail() {
    let s = large_scenario(LoadLevel::High);
    let off = OffloadnnSolver::new().solve(&s.instance).unwrap();
    let sum = SolutionSummary::of(&s.instance, &off);
    assert!(sum.radio_utilisation > 0.98, "high load must saturate RBs, got {}", sum.radio_utilisation);
    assert!(off.admitted_tasks() < 20, "some low-priority tasks must be rejected");
    // The top-priority task is always served in full.
    assert!((off.admission[0] - 1.0).abs() < 1e-9);
}

#[test]
fn low_and_medium_load_admit_everyone() {
    for load in [LoadLevel::Low, LoadLevel::Medium] {
        let s = large_scenario(load);
        let off = OffloadnnSolver::new().solve(&s.instance).unwrap();
        assert_eq!(off.admitted_tasks(), 20, "{load:?}");
    }
}

#[test]
fn memory_constant_across_low_and_medium() {
    // Paper: "memory usage remains the same for low and medium task
    // request rates because our solution selects the same tree branch".
    let lo = {
        let s = large_scenario(LoadLevel::Low);
        let off = OffloadnnSolver::new().solve(&s.instance).unwrap();
        (off.choices.clone(), SolutionSummary::of(&s.instance, &off).memory_utilisation)
    };
    let med = {
        let s = large_scenario(LoadLevel::Medium);
        let off = OffloadnnSolver::new().solve(&s.instance).unwrap();
        (off.choices.clone(), SolutionSummary::of(&s.instance, &off).memory_utilisation)
    };
    assert_eq!(lo.0, med.0, "same branch selected");
    assert!((lo.1 - med.1).abs() < 1e-9);
}

#[test]
fn sem_o_ran_is_memory_bound_at_low_load() {
    // The paper's explanation of Fig. 9: SEM-O-RAN's dedicated full DNNs
    // exhaust memory long before radio at low rates.
    let s = large_scenario(LoadLevel::Low);
    let sem = SemORanSolver::new().solve(&s.instance).unwrap();
    let b = &s.instance.budgets;
    assert!(sem.memory_used / b.memory_bytes > 0.85, "memory nearly exhausted");
    assert!(sem.rbs_used / b.rbs < 0.7, "radio is not the binding resource");
    assert!(sem.admitted_tasks() < 20);
}

#[test]
fn block_sharing_exists_among_admitted_tasks() {
    let s = large_scenario(LoadLevel::Low);
    let off = OffloadnnSolver::new().solve(&s.instance).unwrap();
    let chosen: Vec<_> = off
        .choices
        .iter()
        .enumerate()
        .filter_map(|(t, c)| c.map(|o| s.instance.options[t][o].path.clone()))
        .collect();
    let unique = s.repo.unique_blocks(chosen.iter()).len();
    let total: usize = chosen.iter().map(|p| p.blocks.len()).sum();
    assert!(unique < total, "at least some blocks must be shared ({unique} vs {total})");
}

#[test]
fn quality_dimension_is_exploited_under_pressure() {
    // Fig. 9 tail behaviour: the lowest-priority admitted tasks fall back
    // to compressed input quality at some load level.
    let mut compressed_anywhere = false;
    for load in LoadLevel::ALL {
        let s = large_scenario(load);
        let off = OffloadnnSolver::new().solve(&s.instance).unwrap();
        for (t, c) in off.choices.iter().enumerate() {
            if let Some(o) = c {
                if s.instance.options[t][*o].quality.quality < 1.0 {
                    compressed_anywhere = true;
                }
            }
        }
    }
    assert!(compressed_anywhere, "the quality dimension q_tau should be used somewhere");
}

//! Property-based cross-crate tests: randomised DOT instances, the
//! knapsack reduction, and emulator conservation.

use offloadnn::core::exact::ExactSolver;
use offloadnn::core::heuristic::OffloadnnSolver;
use offloadnn::core::instance::{Budgets, DotInstance, PathOption};
use offloadnn::core::objective::verify;
use offloadnn::core::reduction::{knapsack_dp, knapsack_to_dot, knapsack_value, KnapsackItem};
use offloadnn::core::task::{QualityLevel, Task, TaskId};
use offloadnn::dnn::config::{Config, PathConfig};
use offloadnn::dnn::repository::DnnPath;
use offloadnn::dnn::{BlockId, GroupId, ModelId};
use offloadnn::emu::sim::{run, EmulatorConfig, TaskDeployment};
use offloadnn::radio::{ArrivalProcess, RateModel, SnrDb};
use proptest::prelude::*;

/// A randomised synthetic DOT instance with a shared pool of blocks.
fn arb_instance() -> impl Strategy<Value = DotInstance> {
    let task_count = 1..5usize;
    let block_pool = 8usize;
    (
        task_count,
        proptest::collection::vec(0.05f64..1.0, 8), // priorities source
        proptest::collection::vec(0.5f64..0.95, 8), // accuracy requirements
        proptest::collection::vec(0.15f64..0.8, 8), // latency bounds
        proptest::collection::vec(1.0f64..8.0, 8),  // request rates
        proptest::collection::vec(0.1e9f64..2e9, block_pool), // block memory
        proptest::collection::vec(0.0f64..400.0, block_pool), // block training
        proptest::collection::vec(0.5f64..0.95, 24), // option accuracies
        proptest::collection::vec(0.001f64..0.05, 24), // option proc times
        proptest::collection::vec(0u64..u64::MAX, 24), // option block picks
    )
        .prop_map(|(n, prios, accs, lats, rates, mem, train, oacc, oproc, opick)| {
            let tasks: Vec<Task> = (0..n)
                .map(|i| Task {
                    id: TaskId(i as u32),
                    name: format!("t{i}"),
                    group: GroupId(i as u32),
                    priority: prios[i],
                    request_rate: rates[i],
                    min_accuracy: accs[i],
                    max_latency: lats[i],
                    snr: SnrDb(0.0),
                    qualities: vec![QualityLevel::table_iv()],
                    difficulty: 0.0,
                })
                .collect();
            let options: Vec<Vec<PathOption>> = (0..n)
                .map(|i| {
                    (0..3)
                        .map(|j| {
                            let k = i * 3 + j;
                            // Pick 2 blocks from the pool deterministically
                            // from the random seed value.
                            let b1 = (opick[k] % 8) as u32;
                            let b2 = ((opick[k] >> 8) % 8) as u32;
                            PathOption {
                                path: DnnPath {
                                    model: ModelId(0),
                                    group: GroupId(i as u32),
                                    config: PathConfig { config: Config::C, pruned: false },
                                    blocks: vec![BlockId(b1), BlockId(b2)],
                                },
                                quality: QualityLevel::table_iv(),
                                accuracy: oacc[k],
                                proc_seconds: oproc[k],
                                training_seconds: 0.0,
                                label: format!("opt{k}"),
                            }
                        })
                        .collect()
                })
                .collect();
            DotInstance {
                tasks,
                options,
                block_memory: mem,
                block_training: train,
                rate: RateModel::table_iv(),
                budgets: Budgets {
                    rbs: 40.0,
                    compute_seconds: 1.0,
                    training_seconds: 1000.0,
                    memory_bytes: 5e9,
                },
                alpha: 0.5,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heuristic_solutions_are_always_feasible(instance in arb_instance()) {
        let sol = OffloadnnSolver::new().solve(&instance).unwrap();
        let violations = verify(&instance, &sol);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn exact_never_worse_than_heuristic(instance in arb_instance()) {
        let h = OffloadnnSolver::new().solve(&instance).unwrap();
        let o = ExactSolver::new().solve(&instance).unwrap();
        prop_assert!(verify(&instance, &o).is_empty());
        prop_assert!(o.cost.total() <= h.cost.total() + 1e-9,
            "optimum {} vs heuristic {}", o.cost.total(), h.cost.total());
    }

    #[test]
    fn beam_search_never_worse_than_first_branch(instance in arb_instance()) {
        let b1 = OffloadnnSolver::new().solve(&instance).unwrap();
        let b4 = OffloadnnSolver::with_beam(4).solve(&instance).unwrap();
        prop_assert!(verify(&instance, &b4).is_empty());
        prop_assert!(b4.cost.total() <= b1.cost.total() + 1e-9);
    }

    #[test]
    fn knapsack_reduction_matches_dp(
        values in proptest::collection::vec(1.0f64..50.0, 3..9),
        weights in proptest::collection::vec(1u32..12, 3..9),
        capacity in 5u32..30,
    ) {
        let n = values.len().min(weights.len());
        let items: Vec<KnapsackItem> = (0..n)
            .map(|i| KnapsackItem { value: values[i], weight: weights[i] })
            .collect();
        let dp = knapsack_dp(&items, capacity);
        let dot = knapsack_to_dot(&items, capacity);
        let sol = ExactSolver::new().solve(&dot).unwrap();
        let got = knapsack_value(&items, &sol.admission);
        prop_assert!((got - dp).abs() < 1e-6, "DOT {got} vs DP {dp}");
    }

    #[test]
    fn emulator_conserves_requests(
        rbs in 1u32..12,
        lambda in 0.5f64..8.0,
        admission in 0.0f64..1.0,
        proc_ms in 1.0f64..50.0,
        seed in 0u64..1000,
        poisson in proptest::bool::ANY,
    ) {
        let dep = TaskDeployment {
            name: "p".into(),
            slice_rbs: rbs,
            bits_per_image: 350e3,
            bits_per_rb: 0.35e6,
            proc_seconds: proc_ms / 1e3,
            admission,
            arrivals: if poisson {
                ArrivalProcess::Poisson { rate_hz: lambda }
            } else {
                ArrivalProcess::Periodic { rate_hz: lambda }
            },
            max_latency: 0.5,
        };
        let cfg = EmulatorConfig { duration: 10.0, seed, gpu_concurrency: 1, ..EmulatorConfig::reference() };
        let report = run(&[dep], &cfg).unwrap();
        let s = &report.stats[0];
        prop_assert_eq!(s.generated, s.thinned + s.admitted);
        prop_assert_eq!(s.admitted, s.completed + s.in_flight_at_end);
        // Latency is bounded below by the zero-queue service path.
        for sample in &report.samples[0] {
            prop_assert!(sample.latency > 0.0);
        }
    }
}

//! Root-package alias for the `serve_throughput` bench in
//! `crates/bench/benches/`, so `cargo bench --bench serve_throughput`
//! works from the workspace root (where the facade package is the
//! default target). The source of truth lives next to the other
//! criterion benches.

#[path = "../crates/bench/benches/serve_throughput.rs"]
mod serve_throughput;

fn main() {
    serve_throughput::main();
}

//! # offloadnn-serve — sharded admission-control service runtime
//!
//! The Fig. 4 controller ([`offloadnn_core::controller::Controller`]) is a
//! single-threaded library struct: one `submit()` call per admission
//! round. This crate turns it into a long-running, multithreaded service
//! that can absorb heavy concurrent request streams:
//!
//! * **Sharding** — the edge budgets are partitioned across N worker
//!   shards ([`router::partition_budgets`]), each owning its own
//!   `Controller`; requests are routed by consistent hashing of the task
//!   id ([`router::Router`]), so a task's departure reaches the shard
//!   that admitted it.
//! * **Batching** — each shard coalesces arrivals into solver rounds,
//!   triggered by size (`batch_max`) or time (`batch_window`), amortising
//!   the DOT solve over many requests.
//! * **Backpressure & shedding** — ingress queues are bounded; a full
//!   queue sheds immediately, and a backlog past the watermark is drained
//!   and resolved priority-first, shedding the low-priority tail. A
//!   request that waits past its admission deadline is answered
//!   [`Outcome::Expired`] — never silently dropped.
//! * **Metrics** — [`metrics::ServiceMetrics`] counts every verdict with
//!   atomic counters and fixed-bucket latency histograms, snapshotable
//!   from any thread; conservation (`submitted = admitted + rejected +
//!   shed + expired`) is checkable at any quiescent point.
//! * **Lifecycle** — departures feed `Controller::release` so long-running
//!   state does not leak capacity, and [`service::Service::drain`] stops
//!   ingress, flushes every queued request to a verdict and joins the
//!   workers.
//!
//! ```
//! use offloadnn_core::scenario::small_scenario;
//! use offloadnn_serve::config::ServiceConfig;
//! use offloadnn_serve::service::Service;
//!
//! let scenario = small_scenario(5);
//! let config = ServiceConfig { shards: 2, ..ServiceConfig::default() };
//! let service = Service::start(config, &scenario.instance).unwrap();
//! let task = scenario.instance.tasks[0].clone();
//! let options = scenario.instance.options[0].clone();
//! let ticket = service.submit(task, options).unwrap();
//! let outcome = ticket.wait().unwrap();
//! let report = service.drain();
//! assert!(report.metrics.is_conserved());
//! # let _ = outcome;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admit;
pub mod config;
pub mod error;
pub mod loadgen;
pub mod metrics;
pub mod router;
pub mod service;
mod shard;

pub use admit::{Admitter, PendingVerdict, VerdictError, VerdictHandle};
pub use config::{ChaosConfig, ServiceConfig, ServiceConfigBuilder};
pub use error::{ServeError, SubmitError};
pub use loadgen::{LoadgenConfig, LoadgenReport, ShapePool, VerdictTally};
pub use metrics::{HistogramSnapshot, MetricsSnapshot, ServiceMetrics, HISTOGRAM_BUCKETS};
pub use router::Router;
pub use service::{DrainReport, Outcome, ReshardReport, Service, Ticket};
pub use shard::ShardReport;

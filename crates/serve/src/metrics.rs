//! Thread-safe service metrics: verdict counters, peak gauges and
//! latency histograms, snapshotable from any thread without stopping the
//! workers.
//!
//! Since the telemetry subsystem landed, the instruments themselves live
//! in [`offloadnn_telemetry`]: every counter, gauge and histogram here is
//! a handle registered in a per-service [`Registry`], so the whole
//! service can be exported through the shared JSONL/table exporters
//! ([`ServiceMetrics::registry`]). The conservation invariant is
//! *functional* accounting, so these instruments record unconditionally —
//! they are not gated on [`offloadnn_telemetry::enabled`] and the
//! invariant holds with telemetry on, off, or compiled out.

use offloadnn_telemetry::{Counter, Gauge, Histogram, Registry};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

pub use offloadnn_telemetry::HISTOGRAM_BUCKETS;

/// The service's latency histogram type (the shared telemetry
/// implementation; kept under its historical name for call sites).
pub type LatencyHistogram = Histogram;

/// Point-in-time copy of a [`LatencyHistogram`], serde-serialisable for
/// reports. Convertible from the telemetry snapshot it mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket 0 is sub-microsecond, bucket `i >= 1`
    /// covers `[2^(i-1) µs, 2^i µs)`, the last bucket is the overflow.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Saturating sum of all observations in microseconds.
    pub sum_us: u64,
}

impl From<offloadnn_telemetry::HistogramSnapshot> for HistogramSnapshot {
    fn from(s: offloadnn_telemetry::HistogramSnapshot) -> Self {
        Self { buckets: s.buckets, count: s.count, sum_us: s.sum_us }
    }
}

impl HistogramSnapshot {
    fn as_telemetry(&self) -> offloadnn_telemetry::HistogramSnapshot {
        offloadnn_telemetry::HistogramSnapshot {
            buckets: self.buckets,
            count: self.count,
            sum_us: self.sum_us,
        }
    }

    /// Mean observation, or zero when empty.
    pub fn mean(&self) -> Duration {
        self.as_telemetry().mean()
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`0 < p <= 1`), or zero when empty. Log-bucket resolution: the
    /// estimate is within 2x of the true quantile.
    pub fn quantile(&self, p: f64) -> Duration {
        self.as_telemetry().quantile(p)
    }
}

/// Verdict counters, gauges and histograms of a running service.
///
/// Every submitted request increments `submitted` at ingress and exactly
/// one of `admitted` / `rejected` / `shed` / `expired` at resolution, so
/// at any quiescent point (no request in flight) the counters satisfy
/// `submitted = admitted + rejected + shed + expired`.
#[derive(Debug)]
pub struct ServiceMetrics {
    registry: Registry,
    /// Requests accepted at ingress.
    pub submitted: Arc<Counter>,
    /// Requests granted a slice by the solver.
    pub admitted: Arc<Counter>,
    /// Requests the solver declined (infeasible or not worth capacity).
    pub rejected: Arc<Counter>,
    /// Requests dropped by backpressure or priority shedding.
    pub shed: Arc<Counter>,
    /// Requests that waited past their admission deadline.
    pub expired: Arc<Counter>,
    /// Departure notices processed (capacity released).
    pub departed: Arc<Counter>,
    /// Solver rounds executed across all shards.
    pub solver_rounds: Arc<Counter>,
    /// Solver rounds that returned an error (every request in the round is
    /// counted `rejected`).
    pub solver_errors: Arc<Counter>,
    /// Completed [`crate::Service::scale_to`] topology changes.
    pub reshards: Arc<Counter>,
    /// In-flight tasks migrated to a new owner shard across all reshards.
    pub migrated: Arc<Counter>,
    /// Current ring generation (0 at start, +1 per completed reshard).
    pub generation: Arc<Gauge>,
    /// Highest queue depth observed at round assembly on any shard.
    pub peak_queue_depth: Arc<Gauge>,
    /// Largest batch resolved in one round.
    pub peak_batch: Arc<Gauge>,
    /// Running mean of a solver round in milliseconds, exported for
    /// cluster tiers that fold per-node solver cost into routing weight.
    /// Derived from `round_time` after each round; not part of the wire
    /// [`MetricsSnapshot`] (which already carries the full histogram).
    pub solver_round_ms: Arc<Gauge>,
    /// End-to-end request latency (submit to verdict).
    pub latency: Arc<LatencyHistogram>,
    /// Wall-clock time of each solver round.
    pub round_time: Arc<LatencyHistogram>,
}

impl ServiceMetrics {
    /// Creates zeroed metrics on a fresh per-service registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        Self {
            submitted: registry.counter("serve.submitted"),
            admitted: registry.counter("serve.admitted"),
            rejected: registry.counter("serve.rejected"),
            shed: registry.counter("serve.shed"),
            expired: registry.counter("serve.expired"),
            departed: registry.counter("serve.departed"),
            solver_rounds: registry.counter("serve.solver_rounds"),
            solver_errors: registry.counter("serve.solver_errors"),
            reshards: registry.counter("serve.reshards"),
            migrated: registry.counter("serve.migrated"),
            generation: registry.gauge("serve.generation"),
            peak_queue_depth: registry.gauge("serve.peak_queue_depth"),
            peak_batch: registry.gauge("serve.peak_batch"),
            solver_round_ms: registry.gauge("solver.round_ms"),
            latency: registry.phase("serve.latency"),
            round_time: registry.phase("serve.round"),
            registry,
        }
    }

    /// The per-service telemetry registry holding these instruments —
    /// snapshot it for the shared JSONL/table exporters.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Copies all counters and histograms.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.get(),
            admitted: self.admitted.get(),
            rejected: self.rejected.get(),
            shed: self.shed.get(),
            expired: self.expired.get(),
            departed: self.departed.get(),
            solver_rounds: self.solver_rounds.get(),
            solver_errors: self.solver_errors.get(),
            reshards: self.reshards.get(),
            migrated: self.migrated.get(),
            generation: self.generation.get(),
            peak_queue_depth: self.peak_queue_depth.get(),
            peak_batch: self.peak_batch.get(),
            latency: self.latency.snapshot().into(),
            round_time: self.round_time.snapshot().into(),
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time copy of [`ServiceMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted at ingress.
    pub submitted: u64,
    /// Requests granted a slice.
    pub admitted: u64,
    /// Requests declined by the solver.
    pub rejected: u64,
    /// Requests dropped by backpressure or priority shedding.
    pub shed: u64,
    /// Requests that waited past their deadline.
    pub expired: u64,
    /// Departure notices processed.
    pub departed: u64,
    /// Solver rounds executed.
    pub solver_rounds: u64,
    /// Solver rounds that errored.
    pub solver_errors: u64,
    /// Completed reshards (topology changes).
    pub reshards: u64,
    /// In-flight tasks migrated across all reshards.
    pub migrated: u64,
    /// Ring generation at snapshot time.
    pub generation: u64,
    /// Highest observed queue depth.
    pub peak_queue_depth: u64,
    /// Largest batch resolved in one round.
    pub peak_batch: u64,
    /// End-to-end request latency histogram.
    pub latency: HistogramSnapshot,
    /// Solver round time histogram.
    pub round_time: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Total resolved requests.
    pub fn resolved(&self) -> u64 {
        self.admitted + self.rejected + self.shed + self.expired
    }

    /// Conservation invariant: every submitted request has exactly one
    /// verdict. Holds at any quiescent point; in particular after
    /// [`crate::service::Service::drain`].
    pub fn is_conserved(&self) -> bool {
        self.submitted == self.resolved()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "submitted {:>8}   admitted {:>8}   rejected {:>8}   shed {:>8}   expired {:>8}",
            self.submitted, self.admitted, self.rejected, self.shed, self.expired
        )?;
        writeln!(
            f,
            "rounds    {:>8}   errors   {:>8}   departed {:>8}   peak queue {:>5}   peak batch {:>5}",
            self.solver_rounds, self.solver_errors, self.departed, self.peak_queue_depth, self.peak_batch
        )?;
        writeln!(
            f,
            "reshards  {:>8}   migrated {:>8}   generation {:>6}",
            self.reshards, self.migrated, self.generation
        )?;
        writeln!(
            f,
            "latency   mean {:>10.3?}   p50 {:>10.3?}   p99 {:>10.3?}",
            self.latency.mean(),
            self.latency.quantile(0.5),
            self.latency.quantile(0.99)
        )?;
        write!(
            f,
            "round     mean {:>10.3?}   p50 {:>10.3?}   p99 {:>10.3?}",
            self.round_time.mean(),
            self.round_time.quantile(0.5),
            self.round_time.quantile(0.99)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log_spaced() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(0)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 1
        h.record(Duration::from_micros(3)); // bucket 2
        h.record(Duration::from_micros(1000)); // bucket 10
        h.record(Duration::from_secs(100)); // overflow bucket
        let s: HistogramSnapshot = h.snapshot().into();
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn edge_samples_land_in_first_and_last_bucket() {
        // The satellite fix: zero-duration and u64::MAX-µs samples must be
        // counted (first/last bucket), never panic or vanish — and a
        // pathological sample must not wrap the sum.
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record_us(u64::MAX);
        h.record(Duration::MAX);
        let s: HistogramSnapshot = h.snapshot().into();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(s.sum_us, u64::MAX, "sum saturates instead of wrapping");
    }

    #[test]
    fn quantiles_bound_observations() {
        let h = LatencyHistogram::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(Duration::from_micros(us));
        }
        let s: HistogramSnapshot = h.snapshot().into();
        assert!(s.quantile(0.5) >= Duration::from_micros(32));
        assert!(s.quantile(0.5) <= Duration::from_micros(128));
        assert!(s.quantile(1.0) >= Duration::from_micros(1000));
        assert_eq!(
            HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum_us: 0 }.quantile(0.5),
            Duration::ZERO
        );
    }

    #[test]
    fn conservation_checks_the_four_verdicts() {
        let m = ServiceMetrics::new();
        m.submitted.add(10);
        m.admitted.add(4);
        m.rejected.add(3);
        m.shed.add(2);
        assert!(!m.snapshot().is_conserved());
        m.expired.inc();
        let s = m.snapshot();
        assert!(s.is_conserved());
        assert_eq!(s.resolved(), 10);
    }

    #[test]
    fn peaks_only_rise() {
        let m = ServiceMetrics::new();
        m.peak_batch.raise(5);
        m.peak_batch.raise(3);
        assert_eq!(m.snapshot().peak_batch, 5);
        m.peak_batch.raise(9);
        assert_eq!(m.snapshot().peak_batch, 9);
    }

    #[test]
    fn metrics_live_on_the_service_registry() {
        let m = ServiceMetrics::new();
        m.submitted.add(7);
        m.latency.record(Duration::from_micros(50));
        let snap = m.registry().snapshot();
        assert!(snap.counters.iter().any(|(n, v)| *n == "serve.submitted" && *v == 7));
        assert!(snap.phases.iter().any(|(n, h)| *n == "serve.latency" && h.count == 1));
    }
}

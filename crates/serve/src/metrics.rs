//! Thread-safe service metrics: atomic verdict counters, gauges and
//! fixed-bucket latency histograms, snapshotable from any thread without
//! stopping the workers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: one sub-microsecond bucket, power-of-two
/// buckets up to ~2.1 s, and one overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 23;

/// A fixed-bucket log-scale histogram over microsecond durations.
///
/// Buckets are powers of two: bucket 0 counts sub-microsecond
/// observations, bucket `i >= 1` counts observations in
/// `[2^(i-1) µs, 2^i µs)`, and the last bucket absorbs everything from
/// `2^21 µs` (~2.1 s) up. Recording is one atomic increment — safe from
/// any worker thread.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = (64 - us.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Copies the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket 0 is sub-microsecond, bucket `i >= 1`
    /// covers `[2^(i-1) µs, 2^i µs)`, the last bucket is the overflow.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations in microseconds.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// Mean observation, or zero when empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_us / self.count)
    }

    /// Upper bound of the bucket containing the `p`-quantile
    /// (`0 < p <= 1`), or zero when empty. Log-bucket resolution: the
    /// estimate is within 2x of the true quantile.
    pub fn quantile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_micros(1u64 << i);
            }
        }
        Duration::from_micros(1u64 << (HISTOGRAM_BUCKETS - 1))
    }
}

/// Verdict counters, gauges and histograms of a running service.
///
/// Every submitted request increments `submitted` at ingress and exactly
/// one of `admitted` / `rejected` / `shed` / `expired` at resolution, so
/// at any quiescent point (no request in flight) the counters satisfy
/// `submitted = admitted + rejected + shed + expired`.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Requests accepted at ingress.
    pub submitted: AtomicU64,
    /// Requests granted a slice by the solver.
    pub admitted: AtomicU64,
    /// Requests the solver declined (infeasible or not worth capacity).
    pub rejected: AtomicU64,
    /// Requests dropped by backpressure or priority shedding.
    pub shed: AtomicU64,
    /// Requests that waited past their admission deadline.
    pub expired: AtomicU64,
    /// Departure notices processed (capacity released).
    pub departed: AtomicU64,
    /// Solver rounds executed across all shards.
    pub solver_rounds: AtomicU64,
    /// Solver rounds that returned an error (every request in the round is
    /// counted `rejected`).
    pub solver_errors: AtomicU64,
    /// Highest queue depth observed at round assembly on any shard.
    pub peak_queue_depth: AtomicU64,
    /// Largest batch resolved in one round.
    pub peak_batch: AtomicU64,
    /// End-to-end request latency (submit to verdict).
    pub latency: LatencyHistogram,
    /// Wall-clock time of each solver round.
    pub round_time: LatencyHistogram,
}

impl ServiceMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises a peak gauge to at least `value`.
    pub(crate) fn raise_peak(gauge: &AtomicU64, value: u64) {
        gauge.fetch_max(value, Ordering::Relaxed);
    }

    /// Copies all counters and histograms.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            departed: self.departed.load(Ordering::Relaxed),
            solver_rounds: self.solver_rounds.load(Ordering::Relaxed),
            solver_errors: self.solver_errors.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            peak_batch: self.peak_batch.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
            round_time: self.round_time.snapshot(),
        }
    }
}

/// Point-in-time copy of [`ServiceMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted at ingress.
    pub submitted: u64,
    /// Requests granted a slice.
    pub admitted: u64,
    /// Requests declined by the solver.
    pub rejected: u64,
    /// Requests dropped by backpressure or priority shedding.
    pub shed: u64,
    /// Requests that waited past their deadline.
    pub expired: u64,
    /// Departure notices processed.
    pub departed: u64,
    /// Solver rounds executed.
    pub solver_rounds: u64,
    /// Solver rounds that errored.
    pub solver_errors: u64,
    /// Highest observed queue depth.
    pub peak_queue_depth: u64,
    /// Largest batch resolved in one round.
    pub peak_batch: u64,
    /// End-to-end request latency histogram.
    pub latency: HistogramSnapshot,
    /// Solver round time histogram.
    pub round_time: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Total resolved requests.
    pub fn resolved(&self) -> u64 {
        self.admitted + self.rejected + self.shed + self.expired
    }

    /// Conservation invariant: every submitted request has exactly one
    /// verdict. Holds at any quiescent point; in particular after
    /// [`crate::service::Service::drain`].
    pub fn is_conserved(&self) -> bool {
        self.submitted == self.resolved()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "submitted {:>8}   admitted {:>8}   rejected {:>8}   shed {:>8}   expired {:>8}",
            self.submitted, self.admitted, self.rejected, self.shed, self.expired
        )?;
        writeln!(
            f,
            "rounds    {:>8}   errors   {:>8}   departed {:>8}   peak queue {:>5}   peak batch {:>5}",
            self.solver_rounds, self.solver_errors, self.departed, self.peak_queue_depth, self.peak_batch
        )?;
        writeln!(
            f,
            "latency   mean {:>10.3?}   p50 {:>10.3?}   p99 {:>10.3?}",
            self.latency.mean(),
            self.latency.quantile(0.5),
            self.latency.quantile(0.99)
        )?;
        write!(
            f,
            "round     mean {:>10.3?}   p50 {:>10.3?}   p99 {:>10.3?}",
            self.round_time.mean(),
            self.round_time.quantile(0.5),
            self.round_time.quantile(0.99)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log_spaced() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(0)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 1
        h.record(Duration::from_micros(3)); // bucket 2
        h.record(Duration::from_micros(1000)); // bucket 10
        h.record(Duration::from_secs(100)); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn quantiles_bound_observations() {
        let h = LatencyHistogram::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert!(s.quantile(0.5) >= Duration::from_micros(32));
        assert!(s.quantile(0.5) <= Duration::from_micros(128));
        assert!(s.quantile(1.0) >= Duration::from_micros(1000));
        assert_eq!(
            HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum_us: 0 }.quantile(0.5),
            Duration::ZERO
        );
    }

    #[test]
    fn conservation_checks_the_four_verdicts() {
        let m = ServiceMetrics::new();
        m.submitted.fetch_add(10, Ordering::Relaxed);
        m.admitted.fetch_add(4, Ordering::Relaxed);
        m.rejected.fetch_add(3, Ordering::Relaxed);
        m.shed.fetch_add(2, Ordering::Relaxed);
        assert!(!m.snapshot().is_conserved());
        m.expired.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert!(s.is_conserved());
        assert_eq!(s.resolved(), 10);
    }

    #[test]
    fn peaks_only_rise() {
        let m = ServiceMetrics::new();
        ServiceMetrics::raise_peak(&m.peak_batch, 5);
        ServiceMetrics::raise_peak(&m.peak_batch, 3);
        assert_eq!(m.snapshot().peak_batch, 5);
        ServiceMetrics::raise_peak(&m.peak_batch, 9);
        assert_eq!(m.snapshot().peak_batch, 9);
    }
}

//! Service-runtime configuration.

use crate::error::ServeError;
use offloadnn_plancache::PlanCacheConfig;
use std::time::Duration;

/// Tuning knobs of the sharded admission service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of worker shards; the edge budgets are partitioned evenly
    /// across them.
    pub shards: usize,
    /// Bound of each shard's ingress queue. A submit that finds the queue
    /// full is shed immediately (backpressure surfaces as an explicit
    /// [`crate::Outcome::Shed`], not a blocked caller).
    pub queue_capacity: usize,
    /// Maximum number of requests resolved in one solver round.
    pub batch_max: usize,
    /// Maximum time a shard waits to fill a batch once the first request
    /// of a round has arrived.
    pub batch_window: Duration,
    /// Admission deadline granted to each request at ingress: a request
    /// still unresolved this long after submission is answered
    /// [`crate::Outcome::Expired`].
    pub admission_deadline: Duration,
    /// Backlog watermark (in queued requests) past which a shard switches
    /// to priority-ordered shedding: the backlog is drained, the highest
    /// priority `batch_max` requests are kept and the rest are shed.
    pub shed_watermark: usize,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub virtual_nodes: usize,
    /// Plan cache for repeat task shapes: `Some` enables per-shard plan
    /// memoization with single-flight dedup; `None` (the default) keeps
    /// the cold-solve path byte-identical to previous releases.
    pub plan_cache: Option<PlanCacheConfig>,
    /// Fault injection for chaos testing; inert by default.
    pub chaos: ChaosConfig,
}

/// Fault injection knobs, used by the reshard/chaos test harness to
/// prove the service degrades instead of hanging or corrupting its
/// accounting. The default injects nothing and costs nothing on the hot
/// path (two branch checks per solver round).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosConfig {
    /// Panic the worker thread of shard `.0` when it begins solver round
    /// `.1` (1-based). The panic is deliberately *not* caught by the
    /// worker: the harness verifies the rest of the fleet keeps serving
    /// and that [`crate::Service::scale_to`] self-heals the dead shard.
    pub panic_shard_at_round: Option<(usize, u64)>,
    /// Sleep this long inside every solver round (a pathologically slow
    /// solver). [`Duration::ZERO`] disables the injection.
    pub slow_solver: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 1024,
            batch_max: 64,
            batch_window: Duration::from_millis(2),
            admission_deadline: Duration::from_secs(5),
            shed_watermark: 512,
            virtual_nodes: 64,
            plan_cache: None,
            chaos: ChaosConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// A builder starting from [`ServiceConfig::default`]. Setters keep
    /// every untouched field at its default and
    /// [`ServiceConfigBuilder::build`] validates the result, so an
    /// invalid combination fails where it was written instead of at
    /// [`crate::Service::start`]. Struct literals with
    /// `..ServiceConfig::default()` keep working unchanged.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder { config: Self::default() }
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::InvalidConfig("shards must be >= 1"));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig("queue_capacity must be >= 1"));
        }
        if self.batch_max == 0 {
            return Err(ServeError::InvalidConfig("batch_max must be >= 1"));
        }
        if self.batch_window.is_zero() {
            return Err(ServeError::InvalidConfig("batch_window must be > 0"));
        }
        if self.admission_deadline.is_zero() {
            return Err(ServeError::InvalidConfig("admission_deadline must be > 0"));
        }
        if self.shed_watermark == 0 {
            return Err(ServeError::InvalidConfig("shed_watermark must be >= 1"));
        }
        if self.virtual_nodes == 0 {
            return Err(ServeError::InvalidConfig("virtual_nodes must be >= 1"));
        }
        if let Some(pc) = &self.plan_cache {
            if pc.validate().is_err() {
                return Err(ServeError::InvalidConfig("plan_cache knobs must be positive"));
            }
        }
        Ok(())
    }
}

/// Builder for [`ServiceConfig`] — see [`ServiceConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the worker-shard count.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the per-shard ingress queue bound.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the solver-round batching knobs (size and window).
    #[must_use]
    pub fn batching(mut self, batch_max: usize, batch_window: Duration) -> Self {
        self.config.batch_max = batch_max;
        self.config.batch_window = batch_window;
        self
    }

    /// Sets the policy admission deadline.
    #[must_use]
    pub fn admission_deadline(mut self, deadline: Duration) -> Self {
        self.config.admission_deadline = deadline;
        self
    }

    /// Sets the priority-shedding backlog watermark.
    #[must_use]
    pub fn shed_watermark(mut self, watermark: usize) -> Self {
        self.config.shed_watermark = watermark;
        self
    }

    /// Sets the virtual nodes per shard on the consistent-hash ring.
    #[must_use]
    pub fn virtual_nodes(mut self, vnodes: usize) -> Self {
        self.config.virtual_nodes = vnodes;
        self
    }

    /// Enables the per-shard plan cache.
    #[must_use]
    pub fn plan_cache(mut self, cache: PlanCacheConfig) -> Self {
        self.config.plan_cache = Some(cache);
        self
    }

    /// Sets the chaos (fault-injection) knobs.
    #[must_use]
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.config.chaos = chaos;
        self
    }

    /// Validates and returns the finished config.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] naming the offending field.
    pub fn build(self) -> Result<ServiceConfig, ServeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(ServiceConfig::default().validate().is_ok());
    }

    #[test]
    fn builder_validates_and_matches_literal_construction() {
        let built = ServiceConfig::builder()
            .shards(2)
            .queue_capacity(8)
            .batching(4, Duration::from_millis(1))
            .admission_deadline(Duration::from_secs(1))
            .shed_watermark(6)
            .build()
            .unwrap();
        let literal = ServiceConfig {
            shards: 2,
            queue_capacity: 8,
            batch_max: 4,
            batch_window: Duration::from_millis(1),
            admission_deadline: Duration::from_secs(1),
            shed_watermark: 6,
            ..ServiceConfig::default()
        };
        assert_eq!(built, literal);
        assert!(ServiceConfig::builder().shards(0).build().is_err());
    }

    #[test]
    fn each_zero_field_is_rejected() {
        let base = ServiceConfig::default();
        let bad_cache = PlanCacheConfig { capacity: 0, ..PlanCacheConfig::default() };
        let cases: [(&str, ServiceConfig); 8] = [
            ("shards", ServiceConfig { shards: 0, ..base }),
            ("queue", ServiceConfig { queue_capacity: 0, ..base }),
            ("batch", ServiceConfig { batch_max: 0, ..base }),
            ("window", ServiceConfig { batch_window: Duration::ZERO, ..base }),
            ("deadline", ServiceConfig { admission_deadline: Duration::ZERO, ..base }),
            ("watermark", ServiceConfig { shed_watermark: 0, ..base }),
            ("vnodes", ServiceConfig { virtual_nodes: 0, ..base }),
            ("plancache", ServiceConfig { plan_cache: Some(bad_cache), ..base }),
        ];
        for (name, cfg) in cases {
            assert!(cfg.validate().is_err(), "{name} should be rejected");
        }
    }
}

//! Consistent-hash routing of tasks to shards, and partitioning of the
//! edge budgets across them.

use offloadnn_core::instance::Budgets;
use offloadnn_core::task::TaskId;

/// 64-bit FNV-1a — small, dependency-free, well-mixed enough for ring
/// placement.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A consistent-hash ring mapping [`TaskId`]s to shard indices.
///
/// Each shard contributes `virtual_nodes` points; a task is owned by the
/// first point clockwise of its hash. Routing is deterministic, so the
/// departure of a task always reaches the shard that admitted it, and
/// adding a shard (a future elastic-scaling path) only remaps `1/n` of
/// the id space.
#[derive(Debug, Clone)]
pub struct Router {
    /// `(ring position, shard)` sorted by position.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Router {
    /// Builds a ring over `shards` shards with `virtual_nodes` points
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(shards: usize, virtual_nodes: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(virtual_nodes > 0, "at least one virtual node");
        let mut points = Vec::with_capacity(shards * virtual_nodes);
        for shard in 0..shards {
            for vnode in 0..virtual_nodes {
                let mut key = [0u8; 16];
                key[..8].copy_from_slice(&(shard as u64).to_le_bytes());
                key[8..].copy_from_slice(&(vnode as u64).to_le_bytes());
                points.push((fnv1a(&key), shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        Self { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `task`.
    pub fn route(&self, task: TaskId) -> usize {
        let h = fnv1a(&u64::from(task.0).to_le_bytes());
        // First ring point at or after the hash, wrapping at the top.
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }
}

/// Splits the edge budgets evenly across `shards` partitions.
///
/// The capacity-like budgets (RBs, inference compute, memory) divide by
/// the shard count; `training_seconds` is the objective's training-cost
/// *normaliser*, not a capacity, and is kept whole so each shard scores
/// training cost on the same scale as a single controller would.
///
/// The per-shard shares are computed by running remainder — every shard
/// but the last gets `total / n`, and the last gets whatever is left —
/// so the partitions sum to the total *exactly* (bitwise, not just to
/// rounding error). Elastic resharding repartitions from the original
/// total on every [`crate::Service::scale_to`], so without exactness a
/// long grow/shrink sequence would drift the fleet's aggregate capacity.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn partition_budgets(total: Budgets, shards: usize) -> Vec<Budgets> {
    assert!(shards > 0, "at least one shard");
    let n = shards as f64;
    let share = Budgets {
        rbs: total.rbs / n,
        compute_seconds: total.compute_seconds / n,
        training_seconds: total.training_seconds,
        memory_bytes: total.memory_bytes / n,
    };
    // Accumulate the first n-1 shares in partition order, then give the
    // last shard `total - acc`: summing the partitions back in the same
    // order reproduces `acc + (total - acc)`, cancelling the rounding
    // error of the division.
    let mut acc = Budgets { rbs: 0.0, compute_seconds: 0.0, training_seconds: 0.0, memory_bytes: 0.0 };
    let mut parts = Vec::with_capacity(shards);
    for _ in 0..shards - 1 {
        parts.push(share);
        acc.rbs += share.rbs;
        acc.compute_seconds += share.compute_seconds;
        acc.memory_bytes += share.memory_bytes;
    }
    parts.push(Budgets {
        rbs: total.rbs - acc.rbs,
        compute_seconds: total.compute_seconds - acc.compute_seconds,
        training_seconds: total.training_seconds,
        memory_bytes: total.memory_bytes - acc.memory_bytes,
    });
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = Router::new(4, 64);
        for i in 0..1000 {
            let s = r.route(TaskId(i));
            assert!(s < 4);
            assert_eq!(s, r.route(TaskId(i)));
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let r = Router::new(1, 8);
        for i in 0..100 {
            assert_eq!(r.route(TaskId(i)), 0);
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let r = Router::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[r.route(TaskId(i))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 1000, "shard {s} starved: {c}/10000");
        }
    }

    #[test]
    fn adding_a_shard_moves_a_minority_of_keys() {
        let before = Router::new(4, 64);
        let after = Router::new(5, 64);
        let moved = (0..10_000).filter(|&i| before.route(TaskId(i)) != after.route(TaskId(i))).count();
        // Ideal is 1/5 = 2000; allow generous slack for hash variance.
        assert!(moved < 4500, "consistent hashing should bound remapping, moved {moved}");
    }

    #[test]
    fn budgets_partition_conserves_capacity() {
        let total = Budgets { rbs: 50.0, compute_seconds: 2.5, training_seconds: 1000.0, memory_bytes: 8e9 };
        let parts = partition_budgets(total, 4);
        assert_eq!(parts.len(), 4);
        let rbs: f64 = parts.iter().map(|b| b.rbs).sum();
        let compute: f64 = parts.iter().map(|b| b.compute_seconds).sum();
        let memory: f64 = parts.iter().map(|b| b.memory_bytes).sum();
        assert!((rbs - total.rbs).abs() < 1e-9);
        assert!((compute - total.compute_seconds).abs() < 1e-12);
        assert!((memory - total.memory_bytes).abs() < 1e-3);
        for p in &parts {
            assert!((p.training_seconds - total.training_seconds).abs() < 1e-12, "normaliser kept whole");
        }
    }

    #[test]
    fn budgets_partition_sums_exactly_for_awkward_shard_counts() {
        // 1/3, 1/7 etc. are not representable in binary floating point;
        // the running-remainder scheme must still make the partitions sum
        // *bitwise exactly* to the total.
        let total = Budgets { rbs: 50.0, compute_seconds: 2.5, training_seconds: 1000.0, memory_bytes: 8e9 };
        for shards in 1..=23 {
            let parts = partition_budgets(total, shards);
            assert_eq!(parts.len(), shards);
            let mut sum =
                Budgets { rbs: 0.0, compute_seconds: 0.0, training_seconds: 0.0, memory_bytes: 0.0 };
            // Sum in partition order — the same order the remainder was
            // peeled off — so exactness is deterministic.
            for p in &parts {
                sum.rbs += p.rbs;
                sum.compute_seconds += p.compute_seconds;
                sum.memory_bytes += p.memory_bytes;
            }
            assert_eq!(sum.rbs, total.rbs, "{shards} shards: rbs drifted");
            assert_eq!(sum.compute_seconds, total.compute_seconds, "{shards} shards: compute drifted");
            assert_eq!(sum.memory_bytes, total.memory_bytes, "{shards} shards: memory drifted");
        }
    }

    #[test]
    fn repeated_repartition_cycles_do_not_drift_capacity() {
        // The elastic-resharding regression: every scale_to repartitions
        // from the *original* total, so 100 grow/shrink cycles must leave
        // the summed fleet capacity identical to the starting total.
        let total = Budgets { rbs: 50.0, compute_seconds: 2.5, training_seconds: 1000.0, memory_bytes: 8e9 };
        let mut shards = 4usize;
        for cycle in 0..100 {
            shards = match cycle % 4 {
                0 => shards * 2,
                1 => (shards / 3).max(1),
                2 => shards + 3,
                _ => (shards.saturating_sub(2)).max(1),
            };
            let parts = partition_budgets(total, shards);
            let rbs: f64 = parts.iter().map(|b| b.rbs).sum();
            let compute: f64 = parts.iter().map(|b| b.compute_seconds).sum();
            let memory: f64 = parts.iter().map(|b| b.memory_bytes).sum();
            assert_eq!(rbs, total.rbs, "cycle {cycle} ({shards} shards): rbs drifted");
            assert_eq!(compute, total.compute_seconds, "cycle {cycle} ({shards} shards): compute drifted");
            assert_eq!(memory, total.memory_bytes, "cycle {cycle} ({shards} shards): memory drifted");
            for p in &parts {
                assert_eq!(p.training_seconds, total.training_seconds, "normaliser kept whole");
            }
        }
    }
}

//! Consistent-hash routing of tasks to shards, and partitioning of the
//! edge budgets across them.

use offloadnn_core::instance::Budgets;
use offloadnn_core::task::TaskId;

/// 64-bit FNV-1a — small, dependency-free, well-mixed enough for ring
/// placement.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A consistent-hash ring mapping [`TaskId`]s to shard indices.
///
/// Each shard contributes `virtual_nodes` points; a task is owned by the
/// first point clockwise of its hash. Routing is deterministic, so the
/// departure of a task always reaches the shard that admitted it, and
/// adding a shard (a future elastic-scaling path) only remaps `1/n` of
/// the id space.
#[derive(Debug, Clone)]
pub struct Router {
    /// `(ring position, shard)` sorted by position.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Router {
    /// Builds a ring over `shards` shards with `virtual_nodes` points
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(shards: usize, virtual_nodes: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(virtual_nodes > 0, "at least one virtual node");
        let mut points = Vec::with_capacity(shards * virtual_nodes);
        for shard in 0..shards {
            for vnode in 0..virtual_nodes {
                let mut key = [0u8; 16];
                key[..8].copy_from_slice(&(shard as u64).to_le_bytes());
                key[8..].copy_from_slice(&(vnode as u64).to_le_bytes());
                points.push((fnv1a(&key), shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        Self { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `task`.
    pub fn route(&self, task: TaskId) -> usize {
        let h = fnv1a(&u64::from(task.0).to_le_bytes());
        // First ring point at or after the hash, wrapping at the top.
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }
}

/// Splits the edge budgets evenly across `shards` partitions.
///
/// The capacity-like budgets (RBs, inference compute, memory) divide by
/// the shard count; `training_seconds` is the objective's training-cost
/// *normaliser*, not a capacity, and is kept whole so each shard scores
/// training cost on the same scale as a single controller would.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn partition_budgets(total: Budgets, shards: usize) -> Vec<Budgets> {
    assert!(shards > 0, "at least one shard");
    let n = shards as f64;
    vec![
        Budgets {
            rbs: total.rbs / n,
            compute_seconds: total.compute_seconds / n,
            training_seconds: total.training_seconds,
            memory_bytes: total.memory_bytes / n,
        };
        shards
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = Router::new(4, 64);
        for i in 0..1000 {
            let s = r.route(TaskId(i));
            assert!(s < 4);
            assert_eq!(s, r.route(TaskId(i)));
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let r = Router::new(1, 8);
        for i in 0..100 {
            assert_eq!(r.route(TaskId(i)), 0);
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let r = Router::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[r.route(TaskId(i))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 1000, "shard {s} starved: {c}/10000");
        }
    }

    #[test]
    fn adding_a_shard_moves_a_minority_of_keys() {
        let before = Router::new(4, 64);
        let after = Router::new(5, 64);
        let moved = (0..10_000).filter(|&i| before.route(TaskId(i)) != after.route(TaskId(i))).count();
        // Ideal is 1/5 = 2000; allow generous slack for hash variance.
        assert!(moved < 4500, "consistent hashing should bound remapping, moved {moved}");
    }

    #[test]
    fn budgets_partition_conserves_capacity() {
        let total = Budgets { rbs: 50.0, compute_seconds: 2.5, training_seconds: 1000.0, memory_bytes: 8e9 };
        let parts = partition_budgets(total, 4);
        assert_eq!(parts.len(), 4);
        let rbs: f64 = parts.iter().map(|b| b.rbs).sum();
        let compute: f64 = parts.iter().map(|b| b.compute_seconds).sum();
        let memory: f64 = parts.iter().map(|b| b.memory_bytes).sum();
        assert!((rbs - total.rbs).abs() < 1e-9);
        assert!((compute - total.compute_seconds).abs() < 1e-12);
        assert!((memory - total.memory_bytes).abs() < 1e-3);
        for p in &parts {
            assert!((p.training_seconds - total.training_seconds).abs() < 1e-12, "normaliser kept whole");
        }
    }
}

//! The unified admission API: one trait for every tier.
//!
//! The codebase grew four near-identical but incompatible submit
//! surfaces — `Controller::submit` (library), [`crate::Service::submit`]
//! / `submit_with_deadline` (in-process runtime), `net::Client::submit`
//! (wire) and `Gateway::submit` (cluster) — and each shipped its own
//! pending-verdict shape, so every loadgen and harness driver was
//! welded to one tier. [`Admitter`] is the redesign: a single
//! object-safe trait (`submit` / `depart` / `metrics` / `begin_drain`)
//! with a single type-erased [`PendingVerdict`], implemented by
//! `Service`, `net::Client`, `Gateway` and the federated gateway, so
//! one driver body exercises every tier behind `&dyn Admitter`.
//!
//! ## Verdict resolution
//!
//! Each tier resolves a pending verdict differently — an in-process
//! ticket can only be lost to a chaos-killed worker, a wire verdict can
//! die with its connection or be refused by a draining server. The
//! [`VerdictError`] enum preserves those distinctions (drivers keep
//! separate `lost` / `refused` / `transport` tallies and their
//! cross-tier conservation checks), while `Ok(Outcome)` is identical
//! everywhere.

use crate::error::SubmitError;
use crate::metrics::MetricsSnapshot;
use crate::service::{Outcome, Service, Ticket};
use offloadnn_core::instance::PathOption;
use offloadnn_core::task::{Task, TaskId};
use std::fmt;
use std::time::Duration;

/// Why a [`PendingVerdict`] resolved without an [`Outcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerdictError {
    /// The backend lost the request without resolving it (e.g. a
    /// chaos-killed shard worker). Conservation treats it as a leak of
    /// the backend under test, never of the driver.
    Lost,
    /// The endpoint answered with a typed refusal after accepting the
    /// frame (e.g. a drain fence raced the submit on the far side).
    Refused(String),
    /// The transport died before the verdict arrived; whether the
    /// backend resolved it is unknowable from here.
    Transport(String),
    /// The caller-side wait bound elapsed with the request still in
    /// flight.
    TimedOut,
}

impl fmt::Display for VerdictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerdictError::Lost => f.write_str("backend lost the request without a verdict"),
            VerdictError::Refused(msg) => write!(f, "refused by the endpoint: {msg}"),
            VerdictError::Transport(msg) => write!(f, "transport died before the verdict: {msg}"),
            VerdictError::TimedOut => f.write_str("no verdict within the wait bound"),
        }
    }
}

impl std::error::Error for VerdictError {}

/// The tier-specific half of a [`PendingVerdict`]. Implemented by each
/// tier's native pending handle (`Ticket`, `net::PendingVerdict`,
/// `GwPending`); drivers never see this trait, only the facade.
pub trait VerdictHandle: Send {
    /// Non-blocking check: `None` while the verdict is in flight. Once
    /// `Some(...)` has been returned the verdict is consumed; further
    /// polls may report the handle as dead.
    fn poll(&self) -> Option<Result<Outcome, VerdictError>>;

    /// Blocks until the verdict arrives or the tier gives up.
    fn wait(self: Box<Self>) -> Result<Outcome, VerdictError>;

    /// Blocks at most `timeout`; [`VerdictError::TimedOut`] strictly
    /// after the bound elapsed with the request still unresolved.
    fn wait_timeout(self: Box<Self>, timeout: Duration) -> Result<Outcome, VerdictError>;
}

/// A type-erased handle to one in-flight admission, redeemable for its
/// verdict regardless of which tier issued it.
pub struct PendingVerdict {
    task: TaskId,
    inner: Box<dyn VerdictHandle>,
}

impl fmt::Debug for PendingVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingVerdict").field("task", &self.task).finish_non_exhaustive()
    }
}

impl PendingVerdict {
    /// Wraps a tier's native pending handle. Used by [`Admitter`]
    /// implementations, not by drivers.
    pub fn new(task: TaskId, inner: Box<dyn VerdictHandle>) -> Self {
        Self { task, inner }
    }

    /// Id of the submitted task.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Non-blocking check: `None` while the verdict is in flight.
    pub fn poll(&self) -> Option<Result<Outcome, VerdictError>> {
        self.inner.poll()
    }

    /// Blocks until the verdict arrives or the tier gives up.
    ///
    /// # Errors
    ///
    /// A [`VerdictError`] describing how the verdict was lost.
    pub fn wait(self) -> Result<Outcome, VerdictError> {
        self.inner.wait()
    }

    /// Blocks at most `timeout` for the verdict.
    ///
    /// # Errors
    ///
    /// As [`PendingVerdict::wait`], plus [`VerdictError::TimedOut`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<Outcome, VerdictError> {
        self.inner.wait_timeout(timeout)
    }
}

/// The unified admission surface: what every tier — in-process service,
/// wire client, cluster gateway, federated gateway — offers a driver.
///
/// `deadline` is the caller's admission budget (`None` = the tier's
/// policy default); every implementation applies the *tighter* of it
/// and its own policy, so a caller can shrink its admission window but
/// never extend it. Object-safe by construction: drivers hold
/// `&dyn Admitter` / `Box<dyn Admitter>` and exercise every tier with
/// one loop body.
pub trait Admitter: Send + Sync {
    /// Submits an admission request.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] for requests refused at ingress — draining, no
    /// candidate options, or (wire tiers) an unreachable endpoint.
    fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        deadline: Option<Duration>,
    ) -> Result<PendingVerdict, SubmitError>;

    /// Releases the capacity of an admitted task (fire-and-forget; wire
    /// tiers swallow transport errors, exactly as a crashed client
    /// would).
    fn depart(&self, task: TaskId);

    /// Point-in-time metrics, `None` when the tier cannot produce them
    /// right now (e.g. the wire endpoint is unreachable).
    fn metrics(&self) -> Option<MetricsSnapshot>;

    /// Fences the ingress: subsequent submits fail with
    /// [`SubmitError::Draining`] while in-flight requests still resolve.
    fn begin_drain(&self);

    /// Short name of the tier, echoed by the loadgen headers
    /// (`service` / `net` / `gateway`).
    fn tier(&self) -> &'static str;
}

// Delegating impls so a borrowed or boxed tier is itself an `Admitter`
// — a driver can hold `Box<dyn Admitter + '_>` over a tier whose owner
// keeps the concrete handle for the management plane (drain, reports).
impl<A: Admitter + ?Sized> Admitter for &A {
    fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        deadline: Option<Duration>,
    ) -> Result<PendingVerdict, SubmitError> {
        (**self).submit(task, options, deadline)
    }

    fn depart(&self, task: TaskId) {
        (**self).depart(task);
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        (**self).metrics()
    }

    fn begin_drain(&self) {
        (**self).begin_drain();
    }

    fn tier(&self) -> &'static str {
        (**self).tier()
    }
}

impl<A: Admitter + ?Sized> Admitter for Box<A> {
    fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        deadline: Option<Duration>,
    ) -> Result<PendingVerdict, SubmitError> {
        (**self).submit(task, options, deadline)
    }

    fn depart(&self, task: TaskId) {
        (**self).depart(task);
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        (**self).metrics()
    }

    fn begin_drain(&self) {
        (**self).begin_drain();
    }

    fn tier(&self) -> &'static str {
        (**self).tier()
    }
}

impl VerdictHandle for Ticket {
    fn poll(&self) -> Option<Result<Outcome, VerdictError>> {
        Ticket::try_wait(self).map(Ok)
    }

    fn wait(self: Box<Self>) -> Result<Outcome, VerdictError> {
        Ticket::wait(&self).ok_or(VerdictError::Lost)
    }

    fn wait_timeout(self: Box<Self>, timeout: Duration) -> Result<Outcome, VerdictError> {
        // A `None` here is almost always the bound elapsing; a lost
        // ticket (chaos-killed worker) is indistinguishable through the
        // channel and reported as TimedOut too — drivers count both as
        // non-verdicts.
        Ticket::wait_timeout(&self, timeout).ok_or(VerdictError::TimedOut)
    }
}

impl Admitter for Service {
    fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        deadline: Option<Duration>,
    ) -> Result<PendingVerdict, SubmitError> {
        let task_id = task.id;
        let ticket = match deadline {
            Some(budget) => self.submit_with_deadline(task, options, budget)?,
            None => Service::submit(self, task, options)?,
        };
        Ok(PendingVerdict::new(task_id, Box::new(ticket)))
    }

    fn depart(&self, task: TaskId) {
        Service::depart(self, task);
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(Service::metrics(self))
    }

    fn begin_drain(&self) {
        Service::begin_drain(self);
    }

    fn tier(&self) -> &'static str {
        "service"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use offloadnn_core::scenario::small_scenario;

    #[test]
    fn service_admits_through_the_trait_object() {
        let scenario = small_scenario(4);
        let service = Service::start(ServiceConfig::default(), &scenario.instance).unwrap();
        let admitter: &dyn Admitter = &service;
        assert_eq!(admitter.tier(), "service");
        let task = scenario.instance.tasks[0].clone();
        let options = scenario.instance.options[0].clone();
        let pending = admitter.submit(task, options, Some(Duration::from_secs(2))).unwrap();
        let outcome = pending.wait().expect("in-process verdicts are never lost without chaos");
        if matches!(outcome, Outcome::Admitted { .. }) {
            admitter.depart(scenario.instance.tasks[0].id);
        }
        let m = admitter.metrics().expect("service metrics are always available");
        assert_eq!(m.submitted, 1);
        admitter.begin_drain();
        let err = admitter
            .submit(scenario.instance.tasks[1].clone(), scenario.instance.options[1].clone(), None)
            .unwrap_err();
        assert_eq!(err, SubmitError::Draining);
        let report = service.drain();
        assert!(report.metrics.is_conserved());
    }
}

//! The service facade: starts the shard fleet, routes submissions and
//! departures, exposes metrics and performs graceful drain.

use crate::config::ServiceConfig;
use crate::error::{ServeError, SubmitError};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::router::{partition_budgets, Router};
use crate::shard::{ShardReport, ShardWorker};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use offloadnn_core::controller::Controller;
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::instance::{DotInstance, PathOption};
use offloadnn_core::task::{Task, TaskId};
use offloadnn_telemetry::{event, span, Severity};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The verdict a request ends with. Every submitted request receives
/// exactly one of these; the service never drops a request silently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// A slice was granted.
    Admitted {
        /// Granted admission ratio in `(0, 1]`.
        admission: f64,
        /// Granted radio resource blocks (real-valued).
        rbs: f64,
        /// Shard that admitted the task (its departure must go back
        /// there; [`Service::depart`] routes this automatically).
        shard: usize,
    },
    /// The solver declined the request (infeasible or not worth the
    /// residual capacity).
    Rejected {
        /// Shard that decided.
        shard: usize,
    },
    /// Dropped by backpressure (full ingress queue) or priority-ordered
    /// overload shedding before reaching the solver.
    Shed {
        /// Shard whose queue shed the request.
        shard: usize,
    },
    /// Waited past its admission deadline before a solver round reached
    /// it.
    Expired {
        /// Shard on which the request expired.
        shard: usize,
    },
}

impl Outcome {
    /// Whether the request was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Outcome::Admitted { .. })
    }
}

/// One queued admission request (internal representation).
pub(crate) struct ServiceRequest {
    pub task: Task,
    pub options: Vec<PathOption>,
    pub enqueued_at: Instant,
    pub deadline: Instant,
    pub responder: Sender<Outcome>,
}

/// Messages on a shard's ingress queue.
pub(crate) enum ShardMsg {
    /// An admission request.
    Request(ServiceRequest),
    /// A departure notice: release the task's capacity.
    Depart(TaskId),
}

/// Handle to one submitted request; redeem it for the verdict.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Outcome>,
    /// Id of the submitted task.
    pub task: TaskId,
    /// Shard the request was routed to.
    pub shard: usize,
}

impl Ticket {
    /// Blocks until the verdict arrives. `None` only if the worker died
    /// without resolving (a bug — workers resolve everything, even while
    /// draining).
    pub fn wait(&self) -> Option<Outcome> {
        self.rx.recv().ok()
    }

    /// Returns the verdict if already available.
    pub fn try_wait(&self) -> Option<Outcome> {
        self.rx.try_recv().ok()
    }

    /// Blocks for at most `timeout` for the verdict.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// Final report of [`Service::drain`].
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Metrics at drain completion (quiescent, so conservation holds).
    pub metrics: MetricsSnapshot,
    /// Per-shard final state.
    pub shards: Vec<ShardReport>,
}

impl DrainReport {
    /// Whether every shard's peak usage stayed within its budget
    /// partition.
    pub fn within_budgets(&self) -> bool {
        self.shards.iter().all(ShardReport::within_budgets)
    }
}

/// A running sharded admission-control service over the OffloaDNN
/// controller. See the [crate docs](crate) for the architecture.
///
/// `Service` is `Sync`: `submit` / `depart` / `metrics` may be called
/// from any number of threads concurrently.
#[derive(Debug)]
pub struct Service {
    senders: Vec<Sender<ShardMsg>>,
    handles: Vec<JoinHandle<ShardReport>>,
    router: Router,
    metrics: Arc<ServiceMetrics>,
    config: ServiceConfig,
    draining: Arc<AtomicBool>,
}

impl Service {
    /// Starts the shard fleet. `template` supplies the edge state every
    /// shard controller needs — budgets (partitioned across shards), the
    /// rate model, `alpha` and the per-block cost tables; its task list
    /// is ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid
    /// configuration.
    pub fn start(config: ServiceConfig, template: &DotInstance) -> Result<Self, ServeError> {
        config.validate()?;
        let router = Router::new(config.shards, config.virtual_nodes);
        let metrics = Arc::new(ServiceMetrics::new());
        let draining = Arc::new(AtomicBool::new(false));
        let partitions = partition_budgets(template.budgets, config.shards);

        // Shard controllers share the block cost tables and rate model but
        // own disjoint budget partitions; the template's request content
        // is irrelevant.
        let mut shard_template = template.clone();
        shard_template.tasks.clear();
        shard_template.options.clear();

        let mut senders = Vec::with_capacity(config.shards);
        let mut handles = Vec::with_capacity(config.shards);
        for (shard, budgets) in partitions.into_iter().enumerate() {
            let (tx, rx) = channel::bounded(config.queue_capacity);
            shard_template.budgets = budgets;
            let worker = ShardWorker {
                shard,
                rx,
                controller: Controller::new(&shard_template, OffloadnnSolver::new()),
                budgets,
                config,
                metrics: Arc::clone(&metrics),
            };
            let handle = std::thread::Builder::new()
                .name(format!("serve-shard-{shard}"))
                .spawn(move || worker.run())
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        event!(
            Severity::Info,
            "serve.service",
            "fleet started: {} shard(s), queue capacity {}, batch {}x{:?}",
            config.shards,
            config.queue_capacity,
            config.batch_max,
            config.batch_window
        );
        Ok(Self { senders, handles, router, metrics, config, draining })
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The router (e.g. to predict a task's shard).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Submits an admission request, returning a [`Ticket`] for the
    /// verdict. Never blocks: if the target shard's queue is full the
    /// request is shed immediately and the ticket resolves to
    /// [`Outcome::Shed`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] after [`Service::drain`] has begun (the
    /// request is not counted), [`SubmitError::NoOptions`] for a request
    /// with no candidate paths (nothing to solve over).
    pub fn submit(&self, task: Task, options: Vec<PathOption>) -> Result<Ticket, SubmitError> {
        self.submit_with_deadline(task, options, self.config.admission_deadline)
    }

    /// Like [`Service::submit`], but with an explicit per-request
    /// admission-deadline budget (e.g. a client-side deadline propagated
    /// over the network). The effective deadline is the *tighter* of
    /// `deadline_budget` and the service-wide
    /// [`ServiceConfig::admission_deadline`]: a caller can shrink its
    /// admission window but never extend it past the service policy.
    ///
    /// # Errors
    ///
    /// Same as [`Service::submit`].
    pub fn submit_with_deadline(
        &self,
        task: Task,
        options: Vec<PathOption>,
        deadline_budget: Duration,
    ) -> Result<Ticket, SubmitError> {
        let _ingress = span!("serve.ingress");
        if self.draining.load(Ordering::Acquire) {
            return Err(SubmitError::Draining);
        }
        if options.is_empty() {
            return Err(SubmitError::NoOptions);
        }
        let shard = self.router.route(task.id);
        let id = task.id;
        self.metrics.submitted.inc();
        let (responder, rx) = channel::bounded(1);
        let now = Instant::now();
        let request = ServiceRequest {
            task,
            options,
            enqueued_at: now,
            deadline: now + deadline_budget.min(self.config.admission_deadline),
            responder,
        };
        match self.senders[shard].try_send(ShardMsg::Request(request)) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) | Err(TrySendError::Disconnected(msg)) => {
                // Backpressure (or a drain racing this submit): resolve as
                // shed right here so conservation holds.
                if let ShardMsg::Request(req) = msg {
                    self.metrics.shed.inc();
                    self.metrics.latency.record(Duration::ZERO);
                    let _ = req.responder.try_send(Outcome::Shed { shard });
                }
            }
        }
        Ok(Ticket { rx, task: id, shard })
    }

    /// Notifies the service that an admitted task has departed; its
    /// shard releases the capacity. Routed by the same consistent hash as
    /// the submission, so it reaches the controller that holds the task.
    /// Blocks only while that shard's queue is full (departures are never
    /// shed — dropping one would leak capacity).
    pub fn depart(&self, task: TaskId) {
        let shard = self.router.route(task);
        let _ = self.senders[shard].send(ShardMsg::Depart(task));
    }

    /// Point-in-time metrics; callable from any thread while the service
    /// runs.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The per-service telemetry registry holding this fleet's counters,
    /// gauges and histograms — snapshot it for the shared JSONL/table
    /// exporters ([`offloadnn_telemetry::RegistrySnapshot`]).
    pub fn telemetry(&self) -> &offloadnn_telemetry::Registry {
        self.metrics.registry()
    }

    /// Stops the ingress without tearing the fleet down: every subsequent
    /// [`Service::submit`] fails with [`SubmitError::Draining`] while
    /// already-queued requests keep resolving to verdicts. This is the
    /// hook a frontend (e.g. a network server) uses to fence off new work,
    /// flush in-flight responses to its own callers, and only then call
    /// [`Service::drain`] for the final join + report.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Whether [`Service::begin_drain`] (or [`Service::drain`]) has been
    /// called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Gracefully drains: stops accepting new requests, lets every queued
    /// request reach a verdict (admission, rejection or expiry), joins
    /// the workers and returns the final report. Conservation
    /// (`submitted = admitted + rejected + shed + expired`) holds on the
    /// returned metrics.
    pub fn drain(mut self) -> DrainReport {
        self.draining.store(true, Ordering::Release);
        // Dropping the senders disconnects the queues; each worker keeps
        // resolving until its queue is empty, then exits.
        self.senders.clear();
        let mut shards: Vec<ShardReport> = Vec::with_capacity(self.handles.len());
        for handle in self.handles.drain(..) {
            // One "serve.drain" sample per shard: drain start to that
            // worker's exit (joins overlap, so samples are cumulative).
            let drain_span = span!("serve.drain");
            match handle.join() {
                Ok(report) => shards.push(report),
                Err(panic) => std::panic::resume_unwind(panic),
            }
            drain_span.finish();
        }
        shards.sort_by_key(|r| r.shard);
        let metrics = self.metrics.snapshot();
        event!(
            Severity::Info,
            "serve.service",
            "drained: {} submitted, {} admitted, {} rejected, {} shed, {} expired",
            metrics.submitted,
            metrics.admitted,
            metrics.rejected,
            metrics.shed,
            metrics.expired
        );
        DrainReport { metrics, shards }
    }
}

impl Drop for Service {
    /// Dropping without [`Service::drain`] still shuts the fleet down
    /// cleanly: the senders disconnect and each worker exits after
    /// resolving its backlog. The workers are detached, not joined.
    fn drop(&mut self) {
        self.draining.store(true, Ordering::Release);
        self.senders.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_core::scenario::small_scenario;

    fn unique_task(template: &DotInstance, proto: usize, id: u32) -> (Task, Vec<PathOption>) {
        let mut task = template.tasks[proto].clone();
        task.id = TaskId(id);
        (task, template.options[proto].clone())
    }

    #[test]
    fn single_submit_admits_and_conserves() {
        let s = small_scenario(5);
        let cfg = ServiceConfig { shards: 2, ..ServiceConfig::default() };
        let service = Service::start(cfg, &s.instance).unwrap();
        let (task, options) = unique_task(&s.instance, 0, 1000);
        let ticket = service.submit(task, options).unwrap();
        let outcome = ticket.wait().expect("worker resolves");
        assert!(outcome.is_admitted(), "plenty of capacity: {outcome:?}");
        let report = service.drain();
        assert!(report.metrics.is_conserved());
        assert_eq!(report.metrics.submitted, 1);
        assert_eq!(report.metrics.admitted, 1);
        assert!(report.within_budgets());
    }

    #[test]
    fn submit_after_drain_fails() {
        let s = small_scenario(3);
        let service = Service::start(ServiceConfig::default(), &s.instance).unwrap();
        let (task, options) = unique_task(&s.instance, 0, 1);
        let report = service.drain();
        assert!(report.metrics.is_conserved());
        // Can't use the drained service (moved), so check the error path
        // on a fresh service mid-drain instead.
        let service = Service::start(ServiceConfig::default(), &s.instance).unwrap();
        service.draining.store(true, Ordering::Release);
        assert_eq!(service.submit(task, options).unwrap_err(), SubmitError::Draining);
        assert_eq!(service.metrics().submitted, 0, "rejected submits are not counted");
    }

    #[test]
    fn no_options_is_an_error() {
        let s = small_scenario(3);
        let service = Service::start(ServiceConfig::default(), &s.instance).unwrap();
        let (task, _) = unique_task(&s.instance, 0, 1);
        assert_eq!(service.submit(task, Vec::new()).unwrap_err(), SubmitError::NoOptions);
    }

    #[test]
    fn full_queue_sheds_immediately() {
        let s = small_scenario(5);
        // One shard, a 2-slot queue and single-request rounds: while the
        // worker is inside a solver round it cannot receive, so a tight
        // submission burst must overflow the queue (a solve takes orders
        // of magnitude longer than a submit).
        let cfg = ServiceConfig {
            shards: 1,
            queue_capacity: 2,
            batch_max: 1,
            batch_window: Duration::from_micros(100),
            ..ServiceConfig::default()
        };
        let service = Service::start(cfg, &s.instance).unwrap();
        let mut tickets: Vec<Ticket> = Vec::new();
        // Submit in bursts until a shed is observed (the first burst
        // all but guarantees it; the retry bound keeps the test sound on
        // any scheduler).
        for burst in 0..50u32 {
            for i in 0..200u32 {
                let id = 10_000 + burst * 200 + i;
                let (task, options) = unique_task(&s.instance, (id % 5) as usize, id);
                tickets.push(service.submit(task, options).unwrap());
            }
            if service.metrics().shed > 0 {
                break;
            }
        }
        let outcomes: Vec<Outcome> = tickets.iter().map(|t| t.wait().unwrap()).collect();
        let shed = outcomes.iter().filter(|o| matches!(o, Outcome::Shed { .. })).count();
        assert!(shed > 0, "overflowing a 2-slot queue must shed");
        let report = service.drain();
        assert!(report.metrics.is_conserved());
        assert_eq!(report.metrics.submitted as usize, tickets.len());
        assert_eq!(report.metrics.shed as usize, shed);
    }

    #[test]
    fn departure_releases_capacity_for_newcomers() {
        let s = small_scenario(5);
        // Single shard with the full budget: admit a batch, depart it,
        // and verify the controller state returns to empty.
        let cfg = ServiceConfig { shards: 1, ..ServiceConfig::default() };
        let service = Service::start(cfg, &s.instance).unwrap();
        let mut admitted_ids = Vec::new();
        for i in 0..5u32 {
            let (task, options) = unique_task(&s.instance, i as usize, 100 + i);
            let ticket = service.submit(task, options).unwrap();
            if ticket.wait().unwrap().is_admitted() {
                admitted_ids.push(ticket.task);
            }
        }
        assert!(!admitted_ids.is_empty());
        for id in &admitted_ids {
            service.depart(*id);
        }
        let report = service.drain();
        assert_eq!(report.metrics.departed as usize, admitted_ids.len());
        assert_eq!(report.shards[0].snapshot.active_tasks, 0, "all capacity released");
        assert!(report.metrics.is_conserved());
    }

    #[test]
    fn short_deadline_expires_queued_requests() {
        let s = small_scenario(5);
        let cfg = ServiceConfig {
            shards: 1,
            // Deadline far shorter than the batch window: requests queued
            // behind the first round's window will expire.
            admission_deadline: Duration::from_micros(1),
            batch_window: Duration::from_millis(20),
            batch_max: 4,
            ..ServiceConfig::default()
        };
        let service = Service::start(cfg, &s.instance).unwrap();
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                let (task, options) = unique_task(&s.instance, (i % 5) as usize, 200 + i);
                service.submit(task, options).unwrap()
            })
            .collect();
        let expired = tickets.iter().filter(|t| matches!(t.wait().unwrap(), Outcome::Expired { .. })).count();
        assert!(expired > 0, "1 µs deadline must expire behind a 20 ms window");
        let report = service.drain();
        assert!(report.metrics.is_conserved());
        assert_eq!(report.metrics.expired as usize, expired);
    }

    #[test]
    fn departs_route_to_the_admitting_shard() {
        let s = small_scenario(5);
        let cfg = ServiceConfig { shards: 4, ..ServiceConfig::default() };
        let service = Service::start(cfg, &s.instance).unwrap();
        let (task, options) = unique_task(&s.instance, 0, 77);
        let ticket = service.submit(task, options).unwrap();
        let outcome = ticket.wait().unwrap();
        if let Outcome::Admitted { shard, .. } = outcome {
            assert_eq!(shard, service.router().route(TaskId(77)));
        } else {
            panic!("expected admission, got {outcome:?}");
        }
    }

    #[test]
    fn drop_without_drain_shuts_down_cleanly() {
        let s = small_scenario(3);
        let service = Service::start(ServiceConfig::default(), &s.instance).unwrap();
        let (task, options) = unique_task(&s.instance, 0, 9);
        let ticket = service.submit(task, options).unwrap();
        drop(service);
        // The worker resolves the in-flight request before exiting.
        assert!(ticket.wait().is_some());
    }
}

//! The service facade: starts the shard fleet, routes submissions and
//! departures, reshapes the fleet at runtime ([`Service::scale_to`]),
//! exposes metrics and performs graceful drain.

use crate::config::{ChaosConfig, ServiceConfig};
use crate::error::{ServeError, SubmitError};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::router::{partition_budgets, Router};
use crate::shard::{ShardExit, ShardReport, ShardWorker};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use offloadnn_core::controller::{ActiveTask, Controller};
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::instance::{Budgets, DotInstance, PathOption};
use offloadnn_core::task::{Task, TaskId};
use offloadnn_plancache::{CachedPlan, PlanCache, PlanCacheStats};
use offloadnn_telemetry::{event, span, Severity};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The verdict a request ends with. Every submitted request receives
/// exactly one of these; the service never drops a request silently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// A slice was granted.
    Admitted {
        /// Granted admission ratio in `(0, 1]`.
        admission: f64,
        /// Granted radio resource blocks (real-valued).
        rbs: f64,
        /// Shard that admitted the task (its departure must go back
        /// there; [`Service::depart`] routes this automatically).
        shard: usize,
    },
    /// The solver declined the request (infeasible or not worth the
    /// residual capacity).
    Rejected {
        /// Shard that decided.
        shard: usize,
    },
    /// Dropped by backpressure (full ingress queue) or priority-ordered
    /// overload shedding before reaching the solver.
    Shed {
        /// Shard whose queue shed the request.
        shard: usize,
    },
    /// Waited past its admission deadline before a solver round reached
    /// it.
    Expired {
        /// Shard on which the request expired.
        shard: usize,
    },
}

impl Outcome {
    /// Whether the request was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Outcome::Admitted { .. })
    }
}

/// One queued admission request (internal representation).
pub(crate) struct ServiceRequest {
    pub task: Task,
    pub options: Vec<PathOption>,
    pub enqueued_at: Instant,
    pub deadline: Instant,
    pub responder: Sender<Outcome>,
}

/// A reshard order delivered to a surviving shard: adopt the new budget
/// partition, extract every active task the new ring maps elsewhere and
/// hand the extracted tasks back on `reply`.
pub(crate) struct ReshardCmd {
    pub router: Arc<Router>,
    pub budgets: Budgets,
    pub reply: Sender<Vec<ActiveTask>>,
}

/// Messages on a shard's ingress queue.
pub(crate) enum ShardMsg {
    /// An admission request.
    Request(ServiceRequest),
    /// A departure notice: release the task's capacity.
    Depart(TaskId),
    /// A reshard order (see [`ReshardCmd`]).
    Reshard(ReshardCmd),
    /// In-flight tasks migrating in from another shard's keyspace.
    Adopt(Vec<ActiveTask>),
}

/// Handle to one submitted request; redeem it for the verdict.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Outcome>,
    /// Id of the submitted task.
    pub task: TaskId,
    /// Shard the request was routed to.
    pub shard: usize,
}

impl Ticket {
    /// Blocks until the verdict arrives. `None` only if the worker died
    /// without resolving — which cannot happen outside chaos injection
    /// ([`crate::config::ChaosConfig`]): workers resolve everything,
    /// even while draining.
    pub fn wait(&self) -> Option<Outcome> {
        self.rx.recv().ok()
    }

    /// Returns the verdict if already available.
    pub fn try_wait(&self) -> Option<Outcome> {
        self.rx.try_recv().ok()
    }

    /// Blocks for at most `timeout` for the verdict.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// Final report of [`Service::drain`].
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Metrics at drain completion (quiescent, so conservation holds —
    /// unless chaos injection killed a shard, see
    /// [`DrainReport::lost_shards`]).
    pub metrics: MetricsSnapshot,
    /// Per-shard final state of the fleet that was live at drain time.
    pub shards: Vec<ShardReport>,
    /// Final reports of shards retired by earlier [`Service::scale_to`]
    /// calls (their peaks/rounds are not represented in `shards`).
    pub retired: Vec<ShardReport>,
    /// Shards whose worker thread panicked (chaos injection) and
    /// therefore produced no report. Zero in any healthy run.
    pub lost_shards: usize,
    /// Final plan-cache statistics, when the service ran with
    /// [`crate::config::ServiceConfig::plan_cache`] enabled.
    pub plan_cache: Option<PlanCacheStats>,
}

impl DrainReport {
    /// Whether every shard's peak usage stayed within its budget
    /// partition. Note that a reshard hands migrated tasks to shards
    /// that admitted none of them, so a fleet that resharded under load
    /// may transiently exceed a partition; this check is meaningful for
    /// fixed-topology runs.
    pub fn within_budgets(&self) -> bool {
        self.shards.iter().chain(self.retired.iter()).all(ShardReport::within_budgets)
    }
}

/// Result of one [`Service::scale_to`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReshardReport {
    /// Shard count before the reshard.
    pub from_shards: usize,
    /// Shard count after the reshard.
    pub to_shards: usize,
    /// In-flight (admitted, not yet departed) tasks that moved to a new
    /// owner shard.
    pub migrated: u64,
    /// Ring generation after the reshard (starts at 0, +1 per reshard).
    pub generation: u64,
}

/// The routing state swapped atomically by a reshard: the ring and the
/// per-shard ingress senders it indexes into always change together.
#[derive(Debug)]
struct RoutingState {
    router: Arc<Router>,
    senders: Vec<Sender<ShardMsg>>,
}

/// A running sharded admission-control service over the OffloaDNN
/// controller. See the [crate docs](crate) for the architecture.
///
/// `Service` is `Sync`: `submit` / `depart` / `metrics` / `scale_to`
/// may be called from any number of threads concurrently.
#[derive(Debug)]
pub struct Service {
    /// Ring + senders behind one lock so a submit routes and enqueues
    /// against a single consistent generation (see `scale_to` for the
    /// ordering argument).
    routing: RwLock<RoutingState>,
    /// Worker join handles; index == shard. Grow pushes, shrink
    /// truncates, self-heal replaces in place.
    handles: Mutex<Vec<JoinHandle<ShardExit>>>,
    /// Final reports of shards retired by scale-downs.
    retired: Mutex<Vec<ShardReport>>,
    /// Serialises reshards (and fences drain against them).
    reshard_lock: Mutex<()>,
    metrics: Arc<ServiceMetrics>,
    config: ServiceConfig,
    /// Cleared instance template (cost tables, rate model, `alpha`) used
    /// to build controllers for shards spawned after start.
    template: DotInstance,
    /// The undivided edge budgets; every reshard repartitions from this
    /// original total so capacity cannot drift across generations.
    total_budgets: Budgets,
    /// Service-wide plan cache shared by every shard worker (`None` when
    /// disabled). Lives on the service so reshards, repartitions and
    /// heals can invalidate it.
    plan_cache: Option<Arc<PlanCache<CachedPlan>>>,
    draining: AtomicBool,
    /// Hooks fired exactly once, when the drain fence first goes up
    /// (whether via [`Service::begin_drain`], [`Service::drain`] or
    /// drop). A network frontend registers its gateway leave-notice
    /// here so the cluster learns of the departure before the fleet
    /// tears down.
    drain_hooks: DrainHooks,
}

/// The pending drain hooks. A newtype only so the closures stay out of
/// the service's `Debug` output.
#[derive(Default)]
struct DrainHooks(Mutex<Vec<Box<dyn FnOnce() + Send>>>);

impl std::fmt::Debug for DrainHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.0.lock().map(|h| h.len()).unwrap_or(0);
        write!(f, "DrainHooks({n} pending)")
    }
}

impl Service {
    /// Starts the shard fleet. `template` supplies the edge state every
    /// shard controller needs — budgets (partitioned across shards), the
    /// rate model, `alpha` and the per-block cost tables; its task list
    /// is ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid
    /// configuration.
    pub fn start(config: ServiceConfig, template: &DotInstance) -> Result<Self, ServeError> {
        config.validate()?;
        let router = Arc::new(Router::new(config.shards, config.virtual_nodes));
        let metrics = Arc::new(ServiceMetrics::new());
        let plan_cache =
            config.plan_cache.map(|pc| Arc::new(PlanCache::with_registry(pc, metrics.registry())));
        let partitions = partition_budgets(template.budgets, config.shards);

        // Shard controllers share the block cost tables and rate model but
        // own disjoint budget partitions; the template's request content
        // is irrelevant.
        let mut shard_template = template.clone();
        shard_template.tasks.clear();
        shard_template.options.clear();

        let mut senders = Vec::with_capacity(config.shards);
        let mut handles = Vec::with_capacity(config.shards);
        for (shard, budgets) in partitions.into_iter().enumerate() {
            let (tx, rx) = channel::bounded(config.queue_capacity);
            handles.push(spawn_worker(shard, budgets, rx, &shard_template, config, &metrics, &plan_cache));
            senders.push(tx);
        }
        event!(
            Severity::Info,
            "serve.service",
            "fleet started: {} shard(s), queue capacity {}, batch {}x{:?}",
            config.shards,
            config.queue_capacity,
            config.batch_max,
            config.batch_window
        );
        Ok(Self {
            routing: RwLock::new(RoutingState { router, senders }),
            handles: Mutex::new(handles),
            retired: Mutex::new(Vec::new()),
            reshard_lock: Mutex::new(()),
            metrics,
            config,
            template: shard_template,
            total_budgets: template.budgets,
            plan_cache,
            draining: AtomicBool::new(false),
            drain_hooks: DrainHooks::default(),
        })
    }

    /// The configuration the service was started with. `shards` reflects
    /// the *initial* fleet size; [`Service::shards`] gives the current
    /// one.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The current router (e.g. to predict a task's shard). A reshard
    /// replaces the router, so the returned ring describes the
    /// generation live at call time.
    pub fn router(&self) -> Arc<Router> {
        Arc::clone(&self.routing.read().expect("routing lock").router)
    }

    /// Current number of worker shards.
    pub fn shards(&self) -> usize {
        self.routing.read().expect("routing lock").senders.len()
    }

    /// Current ring generation (0 at start, +1 per completed reshard).
    pub fn generation(&self) -> u64 {
        self.metrics.generation.get()
    }

    /// Submits an admission request, returning a [`Ticket`] for the
    /// verdict. Never blocks: if the target shard's queue is full the
    /// request is shed immediately and the ticket resolves to
    /// [`Outcome::Shed`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] after [`Service::drain`] has begun (the
    /// request is not counted), [`SubmitError::NoOptions`] for a request
    /// with no candidate paths (nothing to solve over).
    pub fn submit(&self, task: Task, options: Vec<PathOption>) -> Result<Ticket, SubmitError> {
        self.submit_with_deadline(task, options, self.config.admission_deadline)
    }

    /// Like [`Service::submit`], but with an explicit per-request
    /// admission-deadline budget (e.g. a client-side deadline propagated
    /// over the network). The effective deadline is the *tighter* of
    /// `deadline_budget` and the service-wide
    /// [`ServiceConfig::admission_deadline`]: a caller can shrink its
    /// admission window but never extend it past the service policy.
    ///
    /// **Deprecated spelling** — prefer the unified admission trait:
    /// [`crate::admit::Admitter::submit`] with `Some(deadline_budget)`
    /// expresses the same request on every tier (service, wire client,
    /// gateway) instead of this service-only method. Kept (not removed)
    /// because the [`Admitter`](crate::admit::Admitter) implementation
    /// and the network backend route through it.
    ///
    /// # Errors
    ///
    /// Same as [`Service::submit`].
    pub fn submit_with_deadline(
        &self,
        task: Task,
        options: Vec<PathOption>,
        deadline_budget: Duration,
    ) -> Result<Ticket, SubmitError> {
        let _ingress = span!("serve.ingress");
        if self.draining.load(Ordering::Acquire) {
            return Err(SubmitError::Draining);
        }
        if options.is_empty() {
            return Err(SubmitError::NoOptions);
        }
        // Route and enqueue under one read guard: a concurrent reshard
        // swaps the router and senders only after this enqueue, so the
        // message FIFO-precedes the shard's `Reshard` order and resolves
        // before (or during) the handoff — never against a stale ring.
        let routing = self.routing.read().expect("routing lock");
        let shard = routing.router.route(task.id);
        let id = task.id;
        self.metrics.submitted.inc();
        let (responder, rx) = channel::bounded(1);
        let now = Instant::now();
        let request = ServiceRequest {
            task,
            options,
            enqueued_at: now,
            deadline: now + deadline_budget.min(self.config.admission_deadline),
            responder,
        };
        match routing.senders[shard].try_send(ShardMsg::Request(request)) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) | Err(TrySendError::Disconnected(msg)) => {
                // Backpressure (or a dead/draining shard racing this
                // submit): resolve as shed right here so conservation
                // holds.
                if let ShardMsg::Request(req) = msg {
                    self.metrics.shed.inc();
                    self.metrics.latency.record(Duration::ZERO);
                    let _ = req.responder.try_send(Outcome::Shed { shard });
                }
            }
        }
        Ok(Ticket { rx, task: id, shard })
    }

    /// Notifies the service that an admitted task has departed; its
    /// shard releases the capacity. Routed by the same consistent hash as
    /// the submission — on the *current* ring, so after a reshard the
    /// notice reaches the task's new owner (which buffers it if the
    /// migration is still in flight). Blocks only while that shard's
    /// queue is full (departures are never shed — dropping one would leak
    /// capacity).
    pub fn depart(&self, task: TaskId) {
        let routing = self.routing.read().expect("routing lock");
        let shard = routing.router.route(task);
        let _ = routing.senders[shard].send(ShardMsg::Depart(task));
    }

    /// Reshapes the fleet to `new_shards` worker shards at runtime,
    /// without stopping ingress and without losing a verdict or a unit
    /// of capacity:
    ///
    /// 1. the next ring generation and budget partitions are built;
    /// 2. new shards (on a grow) are spawned idle;
    /// 3. the routing state — ring *and* senders — is swapped under the
    ///    write lock, so every message enqueued before the swap
    ///    FIFO-precedes the reshard order on its shard's queue;
    /// 4. surviving shards adopt their new budget partition and hand
    ///    over every in-flight task the new ring maps elsewhere; retired
    ///    shards drain their pre-swap backlog to verdicts and exit;
    /// 5. migrated tasks are delivered to their new owners, which also
    ///    reconcile departures that arrived ahead of the migration.
    ///
    /// A shard found dead (chaos injection) is respawned with a fresh
    /// controller instead of failing the reshard.
    ///
    /// Concurrent `scale_to` calls serialise; `submit`/`depart` never
    /// block on a reshard beyond the routing-swap window.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] if `new_shards` is zero,
    /// [`ServeError::Draining`] once a drain has begun.
    pub fn scale_to(&self, new_shards: usize) -> Result<ReshardReport, ServeError> {
        if new_shards == 0 {
            return Err(ServeError::InvalidConfig("shards must be >= 1"));
        }
        let _reshard_guard = self.reshard_lock.lock().expect("reshard lock");
        if self.draining.load(Ordering::Acquire) {
            return Err(ServeError::Draining);
        }
        let old_shards = self.shards();
        if new_shards == old_shards {
            return Ok(ReshardReport {
                from_shards: old_shards,
                to_shards: new_shards,
                migrated: 0,
                generation: self.metrics.generation.get(),
            });
        }
        let reshard_span = span!("serve.reshard");
        let new_router = Arc::new(Router::new(new_shards, self.config.virtual_nodes));
        let partitions = partition_budgets(self.total_budgets, new_shards);
        let mut handles = self.handles.lock().expect("handles lock");

        // Spawn the newcomers idle: they must exist before the swap so a
        // post-swap submit routed to them finds a live queue.
        let mut new_senders = Vec::new();
        for (shard, &budgets) in partitions.iter().enumerate().skip(old_shards) {
            let (tx, rx) = channel::bounded(self.config.queue_capacity);
            handles.push(spawn_worker(
                shard,
                budgets,
                rx,
                &self.template,
                self.config,
                &self.metrics,
                &self.plan_cache,
            ));
            new_senders.push(tx);
        }

        // Atomic handover: after this block every submit/depart routes on
        // the new ring into the new sender set. Retired senders drop here,
        // so each retiree sees its pre-swap backlog, then disconnect.
        {
            let mut routing = self.routing.write().expect("routing lock");
            routing.router = Arc::clone(&new_router);
            if new_shards > old_shards {
                routing.senders.extend(new_senders);
            } else {
                routing.senders.truncate(new_shards);
            }
        }
        let retiring_handles: Vec<JoinHandle<ShardExit>> =
            if new_shards < old_shards { handles.split_off(new_shards) } else { Vec::new() };

        // Order every survivor to repartition and evacuate remapped keys.
        let survivors = old_shards.min(new_shards);
        let mut moved: Vec<ActiveTask> = Vec::new();
        let mut replies: Vec<(usize, Receiver<Vec<ActiveTask>>)> = Vec::with_capacity(survivors);
        for (shard, &budgets) in partitions.iter().enumerate().take(survivors) {
            let (reply, reply_rx) = channel::bounded(1);
            let cmd = ReshardCmd { router: Arc::clone(&new_router), budgets, reply };
            let sender = self.routing.read().expect("routing lock").senders[shard].clone();
            if sender.send(ShardMsg::Reshard(cmd)).is_err() {
                // Disconnected queue: the worker is dead (chaos). Respawn
                // it with a fresh controller; its in-flight tasks are
                // gone with the panic.
                self.heal_shard(shard, budgets, &mut handles, &mut moved);
            } else {
                replies.push((shard, reply_rx));
            }
        }

        // Collect the evacuated tasks. A worker dying between the order
        // and its reply is also healed here.
        for (shard, reply_rx) in replies {
            match reply_rx.recv() {
                Ok(tasks) => moved.extend(tasks),
                Err(_) => self.heal_shard(shard, partitions[shard], &mut handles, &mut moved),
            }
        }

        // Retired shards drain to exit; their still-active tasks join the
        // migration set.
        let mut retired = self.retired.lock().expect("retired lock");
        let mut lost = 0usize;
        for handle in retiring_handles {
            match handle.join() {
                Ok(exit) => {
                    retired.push(exit.report);
                    moved.extend(exit.active);
                }
                Err(_) => lost += 1,
            }
        }
        drop(retired);
        if lost > 0 {
            event!(
                Severity::Warn,
                "serve.service",
                "reshard: {lost} retiring shard(s) had panicked; their in-flight tasks are lost"
            );
        }

        // Deliver each migrated task to its new owner. The Adopt is
        // enqueued on the same channel later departures use, so FIFO
        // guarantees the owner holds the task before a post-reshard
        // departure reaches it (and pre-Adopt departures are buffered by
        // the owner's orphan set).
        let migrated = moved.len() as u64;
        let mut by_owner: Vec<Vec<ActiveTask>> = (0..new_shards).map(|_| Vec::new()).collect();
        for task in moved {
            by_owner[new_router.route(task.task.id)].push(task);
        }
        {
            let routing = self.routing.read().expect("routing lock");
            for (shard, tasks) in by_owner.into_iter().enumerate() {
                if !tasks.is_empty() {
                    let _ = routing.senders[shard].send(ShardMsg::Adopt(tasks));
                }
            }
        }
        drop(handles);

        let generation = self.metrics.generation.get() + 1;
        self.metrics.generation.set(generation);
        self.metrics.reshards.inc();
        self.metrics.migrated.add(migrated);
        // Plans minted under the old ring and budget partition are stale:
        // the generation in the key already fences new lookups, and the
        // epoch bump drops the resident entries themselves.
        if let Some(cache) = &self.plan_cache {
            cache.bump_epoch();
        }
        reshard_span.finish();
        event!(
            Severity::Info,
            "serve.service",
            "resharded {old_shards} -> {new_shards} shard(s): {migrated} task(s) migrated, generation {generation}"
        );
        Ok(ReshardReport { from_shards: old_shards, to_shards: new_shards, migrated, generation })
    }

    /// Replaces a dead shard with a fresh worker (fresh controller, same
    /// budget partition). If the old worker somehow exited cleanly its
    /// report is kept and its tasks are salvaged into `moved`.
    fn heal_shard(
        &self,
        shard: usize,
        budgets: Budgets,
        handles: &mut [JoinHandle<ShardExit>],
        moved: &mut Vec<ActiveTask>,
    ) {
        event!(Severity::Warn, "serve.service", "shard {shard} is dead; respawning with a fresh controller");
        let (tx, rx) = channel::bounded(self.config.queue_capacity);
        // The replacement runs with chaos injection cleared: the fault
        // already fired, and a heal that re-arms the same trigger (the
        // fresh worker restarts its round counter) would never converge.
        let mut config = self.config;
        config.chaos = ChaosConfig::default();
        let fresh = spawn_worker(shard, budgets, rx, &self.template, config, &self.metrics, &self.plan_cache);
        let old = std::mem::replace(&mut handles[shard], fresh);
        self.routing.write().expect("routing lock").senders[shard] = tx;
        // The panic took the dead worker's ledger with it; plans minted
        // against that ledger must not seed the fresh controller. A heal
        // does not change the ring generation, so this needs the epoch.
        if let Some(cache) = &self.plan_cache {
            cache.bump_epoch();
        }
        match old.join() {
            Ok(exit) => {
                self.retired.lock().expect("retired lock").push(exit.report);
                moved.extend(exit.active);
            }
            Err(_) => {
                event!(
                    Severity::Warn,
                    "serve.service",
                    "shard {shard} worker had panicked; its in-flight tasks are lost"
                );
            }
        }
    }

    /// Point-in-time metrics; callable from any thread while the service
    /// runs.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Point-in-time plan-cache statistics, or `None` when the service
    /// runs without a plan cache.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.plan_cache.as_ref().map(|c| c.stats())
    }

    /// The per-service telemetry registry holding this fleet's counters,
    /// gauges and histograms — snapshot it for the shared JSONL/table
    /// exporters ([`offloadnn_telemetry::RegistrySnapshot`]).
    pub fn telemetry(&self) -> &offloadnn_telemetry::Registry {
        self.metrics.registry()
    }

    /// Stops the ingress without tearing the fleet down: every subsequent
    /// [`Service::submit`] fails with [`SubmitError::Draining`] while
    /// already-queued requests keep resolving to verdicts. This is the
    /// hook a frontend (e.g. a network server) uses to fence off new work,
    /// flush in-flight responses to its own callers, and only then call
    /// [`Service::drain`] for the final join + report. It also fences
    /// resharding: a [`Service::scale_to`] issued afterwards fails with
    /// [`ServeError::Draining`].
    pub fn begin_drain(&self) {
        self.fence();
    }

    /// Raises the drain fence and, on the first raising only, runs every
    /// registered drain hook. `swap` (not `store`) makes the first-time
    /// decision atomic, so concurrent fencers fire the hooks once.
    fn fence(&self) {
        if !self.draining.swap(true, Ordering::AcqRel) {
            let hooks = std::mem::take(&mut *self.drain_hooks.0.lock().expect("drain hooks lock"));
            for hook in hooks {
                hook();
            }
        }
    }

    /// Registers a hook to run when the drain fence first goes up (any
    /// of [`Service::begin_drain`], [`Service::drain`] or drop). If the
    /// drain has already begun the hook runs immediately, on the caller.
    pub fn on_drain(&self, hook: Box<dyn FnOnce() + Send>) {
        if self.is_draining() {
            hook();
            return;
        }
        self.drain_hooks.0.lock().expect("drain hooks lock").push(hook);
        // The fence may have gone up between the check and the push; the
        // fencer may already have swept the hooks, so re-check and sweep
        // again rather than strand the hook unrun.
        if self.is_draining() {
            let hooks = std::mem::take(&mut *self.drain_hooks.0.lock().expect("drain hooks lock"));
            for hook in hooks {
                hook();
            }
        }
    }

    /// Whether [`Service::begin_drain`] (or [`Service::drain`]) has been
    /// called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Gracefully drains: stops accepting new requests, waits out any
    /// in-flight reshard, lets every queued request reach a verdict
    /// (admission, rejection or expiry), joins the workers and returns
    /// the final report. Conservation (`submitted = admitted + rejected +
    /// shed + expired`) holds on the returned metrics unless chaos
    /// injection killed a worker mid-flight
    /// ([`DrainReport::lost_shards`]).
    pub fn drain(self) -> DrainReport {
        self.fence();
        // Serialise against scale_to: once the lock is held, the handle
        // set is stable and any later scale_to fails with Draining.
        let reshard_guard = self.reshard_lock.lock().expect("reshard lock");
        // Dropping the senders disconnects the queues; each worker keeps
        // resolving until its queue is empty, then exits.
        self.routing.write().expect("routing lock").senders.clear();
        let handles = std::mem::take(&mut *self.handles.lock().expect("handles lock"));
        let mut shards: Vec<ShardReport> = Vec::with_capacity(handles.len());
        let mut lost_shards = 0usize;
        for handle in handles {
            // One "serve.drain" sample per shard: drain start to that
            // worker's exit (joins overlap, so samples are cumulative).
            let drain_span = span!("serve.drain");
            match handle.join() {
                Ok(exit) => shards.push(exit.report),
                Err(_) => lost_shards += 1,
            }
            drain_span.finish();
        }
        drop(reshard_guard);
        if lost_shards > 0 {
            event!(
                Severity::Warn,
                "serve.service",
                "drain: {lost_shards} worker(s) had panicked and produced no report"
            );
        }
        shards.sort_by_key(|r| r.shard);
        let retired = std::mem::take(&mut *self.retired.lock().expect("retired lock"));
        let metrics = self.metrics.snapshot();
        event!(
            Severity::Info,
            "serve.service",
            "drained: {} submitted, {} admitted, {} rejected, {} shed, {} expired",
            metrics.submitted,
            metrics.admitted,
            metrics.rejected,
            metrics.shed,
            metrics.expired
        );
        let plan_cache = self.plan_cache.as_ref().map(|c| c.stats());
        DrainReport { metrics, shards, retired, lost_shards, plan_cache }
    }
}

impl Drop for Service {
    /// Dropping without [`Service::drain`] still shuts the fleet down
    /// cleanly: the senders disconnect and each worker exits after
    /// resolving its backlog. The workers are detached, not joined.
    fn drop(&mut self) {
        self.fence();
        if let Ok(mut routing) = self.routing.write() {
            routing.senders.clear();
        }
    }
}

/// Spawns one shard worker thread over a fresh controller scoped to
/// `budgets`.
fn spawn_worker(
    shard: usize,
    budgets: Budgets,
    rx: Receiver<ShardMsg>,
    template: &DotInstance,
    config: ServiceConfig,
    metrics: &Arc<ServiceMetrics>,
    plan_cache: &Option<Arc<PlanCache<CachedPlan>>>,
) -> JoinHandle<ShardExit> {
    let mut shard_template = template.clone();
    shard_template.budgets = budgets;
    let worker = ShardWorker {
        shard,
        rx,
        controller: Controller::new(&shard_template, OffloadnnSolver::new()),
        budgets,
        config,
        metrics: Arc::clone(metrics),
        plan_cache: plan_cache.clone(),
        ledger: 0,
        orphans: HashSet::new(),
        pending_reshards: Vec::new(),
    };
    std::thread::Builder::new()
        .name(format!("serve-shard-{shard}"))
        .spawn(move || worker.run())
        .expect("spawn shard worker")
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_core::scenario::small_scenario;

    fn unique_task(template: &DotInstance, proto: usize, id: u32) -> (Task, Vec<PathOption>) {
        let mut task = template.tasks[proto].clone();
        task.id = TaskId(id);
        (task, template.options[proto].clone())
    }

    #[test]
    fn single_submit_admits_and_conserves() {
        let s = small_scenario(5);
        let cfg = ServiceConfig { shards: 2, ..ServiceConfig::default() };
        let service = Service::start(cfg, &s.instance).unwrap();
        let (task, options) = unique_task(&s.instance, 0, 1000);
        let ticket = service.submit(task, options).unwrap();
        let outcome = ticket.wait().expect("worker resolves");
        assert!(outcome.is_admitted(), "plenty of capacity: {outcome:?}");
        let report = service.drain();
        assert!(report.metrics.is_conserved());
        assert_eq!(report.metrics.submitted, 1);
        assert_eq!(report.metrics.admitted, 1);
        assert_eq!(report.lost_shards, 0);
        assert!(report.within_budgets());
    }

    #[test]
    fn submit_after_drain_fails() {
        let s = small_scenario(3);
        let service = Service::start(ServiceConfig::default(), &s.instance).unwrap();
        let (task, options) = unique_task(&s.instance, 0, 1);
        let report = service.drain();
        assert!(report.metrics.is_conserved());
        // Can't use the drained service (moved), so check the error path
        // on a fresh service mid-drain instead.
        let service = Service::start(ServiceConfig::default(), &s.instance).unwrap();
        service.begin_drain();
        assert_eq!(service.submit(task, options).unwrap_err(), SubmitError::Draining);
        assert_eq!(service.metrics().submitted, 0, "rejected submits are not counted");
    }

    #[test]
    fn drain_hooks_fire_exactly_once_on_the_first_fence() {
        use std::sync::atomic::AtomicU32;
        let s = small_scenario(3);
        let service = Service::start(ServiceConfig::default(), &s.instance).unwrap();
        let fired = Arc::new(AtomicU32::new(0));
        for _ in 0..2 {
            let fired = Arc::clone(&fired);
            service.on_drain(Box::new(move || {
                fired.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert_eq!(fired.load(Ordering::SeqCst), 0, "hooks must wait for the fence");
        service.begin_drain();
        assert_eq!(fired.load(Ordering::SeqCst), 2, "both hooks fire when the fence goes up");
        service.begin_drain();
        let report = service.drain();
        assert!(report.metrics.is_conserved());
        assert_eq!(fired.load(Ordering::SeqCst), 2, "later fences must not re-fire");
    }

    #[test]
    fn drain_hook_registered_after_the_fence_runs_immediately() {
        use std::sync::atomic::AtomicU32;
        let s = small_scenario(3);
        let service = Service::start(ServiceConfig::default(), &s.instance).unwrap();
        service.begin_drain();
        let fired = Arc::new(AtomicU32::new(0));
        let fired2 = Arc::clone(&fired);
        service.on_drain(Box::new(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "late hooks run on the caller");
    }

    #[test]
    fn no_options_is_an_error() {
        let s = small_scenario(3);
        let service = Service::start(ServiceConfig::default(), &s.instance).unwrap();
        let (task, _) = unique_task(&s.instance, 0, 1);
        assert_eq!(service.submit(task, Vec::new()).unwrap_err(), SubmitError::NoOptions);
    }

    #[test]
    fn full_queue_sheds_immediately() {
        let s = small_scenario(5);
        // One shard, a 2-slot queue and single-request rounds: while the
        // worker is inside a solver round it cannot receive, so a tight
        // submission burst must overflow the queue (a solve takes orders
        // of magnitude longer than a submit).
        let cfg = ServiceConfig {
            shards: 1,
            queue_capacity: 2,
            batch_max: 1,
            batch_window: Duration::from_micros(100),
            ..ServiceConfig::default()
        };
        let service = Service::start(cfg, &s.instance).unwrap();
        let mut tickets: Vec<Ticket> = Vec::new();
        // Submit in bursts until a shed is observed (the first burst
        // all but guarantees it; the retry bound keeps the test sound on
        // any scheduler).
        for burst in 0..50u32 {
            for i in 0..200u32 {
                let id = 10_000 + burst * 200 + i;
                let (task, options) = unique_task(&s.instance, (id % 5) as usize, id);
                tickets.push(service.submit(task, options).unwrap());
            }
            if service.metrics().shed > 0 {
                break;
            }
        }
        let outcomes: Vec<Outcome> = tickets.iter().map(|t| t.wait().unwrap()).collect();
        let shed = outcomes.iter().filter(|o| matches!(o, Outcome::Shed { .. })).count();
        assert!(shed > 0, "overflowing a 2-slot queue must shed");
        let report = service.drain();
        assert!(report.metrics.is_conserved());
        assert_eq!(report.metrics.submitted as usize, tickets.len());
        assert_eq!(report.metrics.shed as usize, shed);
    }

    #[test]
    fn departure_releases_capacity_for_newcomers() {
        let s = small_scenario(5);
        // Single shard with the full budget: admit a batch, depart it,
        // and verify the controller state returns to empty.
        let cfg = ServiceConfig { shards: 1, ..ServiceConfig::default() };
        let service = Service::start(cfg, &s.instance).unwrap();
        let mut admitted_ids = Vec::new();
        for i in 0..5u32 {
            let (task, options) = unique_task(&s.instance, i as usize, 100 + i);
            let ticket = service.submit(task, options).unwrap();
            if ticket.wait().unwrap().is_admitted() {
                admitted_ids.push(ticket.task);
            }
        }
        assert!(!admitted_ids.is_empty());
        for id in &admitted_ids {
            service.depart(*id);
        }
        let report = service.drain();
        assert_eq!(report.metrics.departed as usize, admitted_ids.len());
        assert_eq!(report.shards[0].snapshot.active_tasks, 0, "all capacity released");
        assert!(report.metrics.is_conserved());
    }

    #[test]
    fn short_deadline_expires_queued_requests() {
        let s = small_scenario(5);
        let cfg = ServiceConfig {
            shards: 1,
            // Deadline far shorter than the batch window: requests queued
            // behind the first round's window will expire.
            admission_deadline: Duration::from_micros(1),
            batch_window: Duration::from_millis(20),
            batch_max: 4,
            ..ServiceConfig::default()
        };
        let service = Service::start(cfg, &s.instance).unwrap();
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                let (task, options) = unique_task(&s.instance, (i % 5) as usize, 200 + i);
                service.submit(task, options).unwrap()
            })
            .collect();
        let expired = tickets.iter().filter(|t| matches!(t.wait().unwrap(), Outcome::Expired { .. })).count();
        assert!(expired > 0, "1 µs deadline must expire behind a 20 ms window");
        let report = service.drain();
        assert!(report.metrics.is_conserved());
        assert_eq!(report.metrics.expired as usize, expired);
    }

    #[test]
    fn departs_route_to_the_admitting_shard() {
        let s = small_scenario(5);
        let cfg = ServiceConfig { shards: 4, ..ServiceConfig::default() };
        let service = Service::start(cfg, &s.instance).unwrap();
        let (task, options) = unique_task(&s.instance, 0, 77);
        let ticket = service.submit(task, options).unwrap();
        let outcome = ticket.wait().unwrap();
        if let Outcome::Admitted { shard, .. } = outcome {
            assert_eq!(shard, service.router().route(TaskId(77)));
        } else {
            panic!("expected admission, got {outcome:?}");
        }
    }

    #[test]
    fn drop_without_drain_shuts_down_cleanly() {
        let s = small_scenario(3);
        let service = Service::start(ServiceConfig::default(), &s.instance).unwrap();
        let (task, options) = unique_task(&s.instance, 0, 9);
        let ticket = service.submit(task, options).unwrap();
        drop(service);
        // The worker resolves the in-flight request before exiting.
        assert!(ticket.wait().is_some());
    }

    #[test]
    fn scale_to_zero_is_invalid_and_same_count_is_a_noop() {
        let s = small_scenario(3);
        let service =
            Service::start(ServiceConfig { shards: 2, ..ServiceConfig::default() }, &s.instance).unwrap();
        assert!(matches!(service.scale_to(0), Err(ServeError::InvalidConfig(_))));
        let report = service.scale_to(2).unwrap();
        assert_eq!(report.from_shards, 2);
        assert_eq!(report.to_shards, 2);
        assert_eq!(report.migrated, 0);
        assert_eq!(report.generation, 0, "a no-op does not advance the generation");
        assert_eq!(service.metrics().reshards, 0);
    }

    #[test]
    fn scale_after_begin_drain_is_refused() {
        let s = small_scenario(3);
        let service =
            Service::start(ServiceConfig { shards: 2, ..ServiceConfig::default() }, &s.instance).unwrap();
        service.begin_drain();
        assert_eq!(service.scale_to(4).unwrap_err(), ServeError::Draining);
    }

    #[test]
    fn scale_up_keeps_serving_and_conserves() {
        let s = small_scenario(5);
        let cfg = ServiceConfig { shards: 2, ..ServiceConfig::default() };
        let service = Service::start(cfg, &s.instance).unwrap();
        let mut admitted = Vec::new();
        for id in 0..20u32 {
            let (task, options) = unique_task(&s.instance, (id % 5) as usize, 3000 + id);
            let ticket = service.submit(task, options).unwrap();
            if ticket.wait().unwrap().is_admitted() {
                admitted.push(ticket.task);
            }
        }
        let report = service.scale_to(5).unwrap();
        assert_eq!(report.from_shards, 2);
        assert_eq!(report.to_shards, 5);
        assert_eq!(report.generation, 1);
        assert_eq!(service.shards(), 5);
        // The fleet keeps serving on the new ring.
        for id in 0..20u32 {
            let (task, options) = unique_task(&s.instance, (id % 5) as usize, 4000 + id);
            let ticket = service.submit(task, options).unwrap();
            if ticket.wait().unwrap().is_admitted() {
                admitted.push(ticket.task);
            }
        }
        for id in &admitted {
            service.depart(*id);
        }
        let drained = service.drain();
        assert!(drained.metrics.is_conserved());
        assert_eq!(drained.metrics.departed as usize, admitted.len());
        assert_eq!(drained.metrics.reshards, 1);
        assert_eq!(drained.metrics.generation, 1);
        assert_eq!(drained.lost_shards, 0);
        let active: usize = drained.shards.iter().map(|r| r.snapshot.active_tasks).sum();
        assert_eq!(active, 0, "every admitted task departed cleanly across the reshard");
    }

    #[test]
    fn scale_down_migrates_in_flight_tasks_to_survivors() {
        let s = small_scenario(5);
        let cfg = ServiceConfig { shards: 4, ..ServiceConfig::default() };
        let service = Service::start(cfg, &s.instance).unwrap();
        let mut admitted = Vec::new();
        for id in 0..16u32 {
            let (task, options) = unique_task(&s.instance, (id % 5) as usize, 5000 + id);
            let ticket = service.submit(task, options).unwrap();
            if ticket.wait().unwrap().is_admitted() {
                admitted.push(ticket.task);
            }
        }
        assert!(!admitted.is_empty());
        let report = service.scale_to(1).unwrap();
        assert_eq!(report.to_shards, 1);
        assert_eq!(service.shards(), 1);
        // Every departure now routes to the lone survivor, which must
        // hold (or have buffered a departure for) every migrated task.
        for id in &admitted {
            service.depart(*id);
        }
        let drained = service.drain();
        assert!(drained.metrics.is_conserved());
        assert_eq!(drained.metrics.departed as usize, admitted.len());
        assert_eq!(drained.shards.len(), 1);
        assert_eq!(drained.shards[0].snapshot.active_tasks, 0, "all migrated capacity released");
        assert_eq!(drained.retired.len(), 3, "three shards retired with reports");
        assert_eq!(drained.lost_shards, 0);
    }
}

//! The per-shard worker: batch assembly, expiry, priority shedding,
//! solver rounds, departure handling and reshard handoffs around one
//! `Controller`.

use crate::config::ServiceConfig;
use crate::metrics::ServiceMetrics;
use crate::service::{Outcome, ReshardCmd, ServiceRequest, ShardMsg};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use offloadnn_core::controller::{ActiveTask, AdmissionRequest, Controller, ControllerSnapshot};
use offloadnn_core::instance::Budgets;
use offloadnn_core::task::TaskId;
use offloadnn_plancache::{
    budget_bucket, shape_fingerprint, CachedPlan, FlightAttempt, FlightLeader, PlanCache, PlanKey,
};
use offloadnn_telemetry::{event, span, Severity};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Upper bound on buffered orphan departures (departure notices that
/// arrived before the migration handing us the task). Reconciliation
/// removes entries, so in a healthy fleet the set stays tiny; the cap
/// only bounds memory against a caller departing ids that never existed.
const ORPHAN_CAP: usize = 65_536;

/// Final state a shard worker returns when it exits (after
/// [`crate::service::Service::drain`] or when the service is dropped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// The budget partition this shard was given (the latest one, if the
    /// fleet resharded).
    pub budgets: Budgets,
    /// Controller state at exit.
    pub snapshot: ControllerSnapshot,
    /// Highest admission-weighted RB usage observed after any round
    /// since the last reshard (peaks reset when the partition changes).
    pub peak_rbs: f64,
    /// Highest compute usage observed after any round (GPU-s/s).
    pub peak_compute: f64,
    /// Highest block-memory usage observed after any round (bytes).
    pub peak_memory: f64,
    /// Solver rounds this shard executed.
    pub rounds: u64,
}

impl ShardReport {
    /// Whether the shard's resource usage stayed within its budget
    /// partition at every observed point (small relative tolerance for
    /// floating-point accumulation).
    pub fn within_budgets(&self) -> bool {
        const EPS: f64 = 1e-6;
        self.peak_rbs <= self.budgets.rbs * (1.0 + EPS)
            && self.peak_compute <= self.budgets.compute_seconds * (1.0 + EPS)
            && self.peak_memory <= self.budgets.memory_bytes * (1.0 + EPS)
    }
}

/// What the cache pass hands back to the round: the requests that
/// still need a solver round plus, aligned by index, the key to
/// publish each solved plan under and the single-flight leadership
/// token if this request owns the solve for its key.
type CachePass<'c> = (Vec<ServiceRequest>, Vec<Option<PlanKey>>, Vec<Option<FlightLeader<'c, CachedPlan>>>);

/// What a worker thread yields on exit: its report plus whatever tasks
/// were still active, so a scale-down can migrate them to the surviving
/// shards instead of leaking their capacity.
pub(crate) struct ShardExit {
    pub report: ShardReport,
    pub active: Vec<ActiveTask>,
}

/// One shard's worker state; consumed by [`ShardWorker::run`] on its own
/// thread.
pub(crate) struct ShardWorker {
    pub shard: usize,
    pub rx: Receiver<ShardMsg>,
    pub controller: Controller,
    pub budgets: Budgets,
    pub config: ServiceConfig,
    pub metrics: Arc<ServiceMetrics>,
    /// Service-wide plan cache shared by every shard worker; `None` keeps
    /// the cold-solve path exactly as before.
    pub plan_cache: Option<Arc<PlanCache<CachedPlan>>>,
    /// Monotonic count of ledger mutations (admits, departures,
    /// adoptions, reshards). Stamped into negative cache entries so a
    /// memoized rejection only replays while the ledger is literally
    /// unchanged since the solver produced it — the negative-path
    /// counterpart of `Controller::try_apply_plan` re-validation.
    pub ledger: u64,
    /// Departures that outran their task's migration: a departure routed
    /// here before the matching `Adopt` arrived. Reconciled on adoption.
    pub orphans: HashSet<TaskId>,
    /// Reshard orders received mid-batch; executed after the current
    /// round so every pre-swap request resolves before the handoff.
    pub pending_reshards: Vec<ReshardCmd>,
}

impl ShardWorker {
    /// The worker loop: blocks for the first message of a round, fills a
    /// batch within the batching window, sheds overload priority-first,
    /// expires stale requests and resolves the rest through the
    /// controller. Reshard orders execute between rounds. Exits —
    /// returning the final report and any still-active tasks — once every
    /// sender is gone and the queue is empty, so draining never strands a
    /// request.
    pub(crate) fn run(mut self) -> ShardExit {
        let mut peak = (0.0f64, 0.0f64, 0.0f64);
        let mut rounds = 0u64;
        loop {
            let first = match self.rx.recv() {
                Ok(msg) => msg,
                Err(_) => break, // disconnected and fully drained
            };
            let batch_span = span!("serve.batch");
            let mut batch: Vec<ServiceRequest> = Vec::new();
            self.handle(first, &mut batch);

            // Fill the batch until it is full, the window closes, or the
            // service disconnects (drain): whatever is assembled still
            // gets resolved below.
            let window_ends = Instant::now() + self.config.batch_window;
            while batch.len() < self.config.batch_max {
                let now = Instant::now();
                if now >= window_ends {
                    break;
                }
                match self.rx.recv_timeout(window_ends - now) {
                    Ok(msg) => self.handle(msg, &mut batch),
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }

            self.metrics.peak_queue_depth.raise(self.rx.len() as u64);

            // Overload: past the watermark, pull the whole backlog and
            // keep only the highest-priority `batch_max`; the tail is
            // shed *by priority*, not by arrival order.
            if self.rx.len() >= self.config.shed_watermark {
                event!(
                    Severity::Warn,
                    "serve.shard",
                    "shard {} backlog {} past watermark {}: shedding priority-first",
                    self.shard,
                    self.rx.len(),
                    self.config.shed_watermark
                );
                for msg in self.rx.drain() {
                    self.handle(msg, &mut batch);
                }
                if batch.len() > self.config.batch_max {
                    batch.sort_by(|a, b| {
                        b.task.priority.partial_cmp(&a.task.priority).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    for req in batch.split_off(self.config.batch_max) {
                        self.resolve(req, Outcome::Shed { shard: self.shard });
                    }
                }
            }
            batch_span.finish();

            if self.round(batch, rounds + 1) {
                rounds += 1;
                let snap = self.controller.snapshot();
                peak.0 = peak.0.max(snap.rbs);
                peak.1 = peak.1.max(snap.compute_seconds);
                peak.2 = peak.2.max(snap.memory_bytes);
            }

            // Execute reshard orders only after the round: every request
            // that FIFO-preceded the order has its verdict, and any that
            // followed it (same batch) was admitted into a controller the
            // extraction below immediately re-checks against the new
            // ring.
            for cmd in std::mem::take(&mut self.pending_reshards) {
                self.execute_reshard(cmd, &mut peak);
            }
        }
        let report = ShardReport {
            shard: self.shard,
            budgets: self.budgets,
            snapshot: self.controller.snapshot(),
            peak_rbs: peak.0,
            peak_compute: peak.1,
            peak_memory: peak.2,
            rounds,
        };
        ShardExit { report, active: self.controller.take_active() }
    }

    fn handle(&mut self, msg: ShardMsg, batch: &mut Vec<ServiceRequest>) {
        match msg {
            ShardMsg::Request(req) => batch.push(req),
            ShardMsg::Depart(id) => {
                if self.controller.release(&[id]) > 0 {
                    self.ledger += 1;
                } else if self.orphans.len() < ORPHAN_CAP {
                    // The departure outran the migration handing us this
                    // task (or names an id we never held): remember it so
                    // a later Adopt does not resurrect departed capacity.
                    self.orphans.insert(id);
                }
                self.metrics.departed.inc();
            }
            ShardMsg::Reshard(cmd) => self.pending_reshards.push(cmd),
            ShardMsg::Adopt(tasks) => {
                let mut keep = Vec::with_capacity(tasks.len());
                for task in tasks {
                    // A buffered orphan departure settles here: the task
                    // departed while its migration was in flight, so its
                    // capacity is simply never adopted.
                    if !self.orphans.remove(&task.task.id) {
                        keep.push(task);
                    }
                }
                if !keep.is_empty() {
                    self.ledger += 1;
                }
                self.controller.adopt(keep);
            }
        }
    }

    /// Applies one reshard order: adopt the new budget partition, then
    /// evacuate every active task the new ring maps to another shard.
    fn execute_reshard(&mut self, cmd: ReshardCmd, peak: &mut (f64, f64, f64)) {
        self.ledger += 1;
        self.budgets = cmd.budgets;
        self.controller.set_budgets(cmd.budgets);
        let shard = self.shard;
        let evacuated = self.controller.extract_if(|a| cmd.router.route(a.task.id) != shard);
        // Peaks restart against the new partition: a peak recorded under
        // the previous budgets says nothing about the new ones.
        *peak = (0.0, 0.0, 0.0);
        event!(
            Severity::Info,
            "serve.shard",
            "shard {} resharded: {} task(s) evacuated, budgets rescoped",
            shard,
            evacuated.len()
        );
        let _ = cmd.reply.send(evacuated);
    }

    /// Resolves one batch; returns whether a solver round actually ran.
    /// `round_no` is the 1-based number this round will get if it runs
    /// (chaos injection is keyed on it).
    fn round(&mut self, batch: Vec<ServiceRequest>, round_no: u64) -> bool {
        if batch.is_empty() {
            return false;
        }
        let now = Instant::now();
        let (live, stale): (Vec<_>, Vec<_>) = batch.into_iter().partition(|r| r.deadline > now);
        for req in stale {
            self.resolve(req, Outcome::Expired { shard: self.shard });
        }
        if live.is_empty() {
            return false;
        }
        if let Some((shard, at_round)) = self.config.chaos.panic_shard_at_round {
            if shard == self.shard && at_round == round_no {
                panic!("chaos injection: shard {shard} panics entering solver round {at_round}");
            }
        }
        if !self.config.chaos.slow_solver.is_zero() {
            std::thread::sleep(self.config.chaos.slow_solver);
        }
        self.metrics.peak_batch.raise(live.len() as u64);

        // Plan-cache pass: resolve repeat shapes from memoized plans
        // (re-validated against the live ledger); only the remainder pays
        // for a solver round. With the cache off, this is the identity.
        let cache = self.plan_cache.clone();
        let (to_solve, keys, mut leads) = match cache.as_deref() {
            Some(cache) => self.cache_pass(cache, live),
            None => {
                let n = live.len();
                (live, vec![None; n], Vec::new())
            }
        };
        if to_solve.is_empty() {
            return true; // every request was answered from cache
        }

        let requests: Vec<AdmissionRequest> = to_solve
            .iter()
            .map(|r| AdmissionRequest { task: r.task.clone(), options: r.options.clone() })
            .collect();
        let submitted = requests.len();
        let solve_start = Instant::now();
        match self.controller.submit(requests) {
            Ok(outcome) => {
                self.metrics.round_time.record(solve_start.elapsed());
                self.metrics.solver_rounds.inc();
                let mean_ms = self.metrics.round_time.snapshot().mean().as_secs_f64() * 1e3;
                self.metrics.solver_round_ms.set(mean_ms.round() as u64);
                debug_assert!(outcome.accounts_for(submitted), "round lost a verdict");
                // The round's admits all landed inside `submit`, so one
                // bump here lets the rejections minted below carry the
                // post-round ledger stamp.
                if !outcome.admitted.is_empty() {
                    self.ledger += 1;
                }
                // Both outcome lists preserve request order, so a single
                // forward scan pairs verdicts with requests even if a
                // caller submitted duplicate task ids in one batch.
                let mut admitted = outcome.admitted.into_iter().peekable();
                let mut rejected = outcome.rejected.into_iter().peekable();
                for (i, req) in to_solve.into_iter().enumerate() {
                    let plan;
                    if admitted.peek().is_some_and(|a| a.task.id == req.task.id) {
                        let grant = admitted.next().expect("peeked");
                        // Only the unconstrained optimum is worth
                        // memoizing: a full admission's sizing depends on
                        // the shape alone, so a validated replay matches
                        // what a fresh solve would grant. A partial grant
                        // is shaped by the residual headroom at solve
                        // time — replaying it later would hand out a
                        // stale fraction — so it is never cached.
                        plan = (grant.admission >= 1.0 - 1e-9)
                            .then(|| {
                                req.options.iter().position(|o| o == &grant.option).map(|option| {
                                    CachedPlan::Admit { option, admission: grant.admission, rbs: grant.rbs }
                                })
                            })
                            .flatten();
                        self.resolve(
                            req,
                            Outcome::Admitted {
                                admission: grant.admission,
                                rbs: grant.rbs,
                                shard: self.shard,
                            },
                        );
                    } else {
                        debug_assert!(rejected.peek() == Some(&req.task.id), "verdict misaligned");
                        rejected.next();
                        plan = Some(CachedPlan::Infeasible { ledger: self.ledger_stamp() });
                        self.resolve(req, Outcome::Rejected { shard: self.shard });
                    }
                    // Publish the solved plan: through the flight (fans
                    // out to waiters) if this request led one, else a
                    // plain insert.
                    if let (Some(cache), Some(Some(key))) = (cache.as_deref(), keys.get(i)) {
                        if let Some(plan) = plan {
                            let negative = plan.is_negative();
                            match leads.get_mut(i).and_then(Option::take) {
                                Some(leader) => leader.complete(plan, negative),
                                None => cache.insert(*key, plan, negative),
                            }
                        }
                    }
                }
            }
            Err(e) => {
                // A malformed round (e.g. an option naming an unknown
                // block) admits nothing; every caller still gets a
                // verdict. Solver errors are not cached as infeasible —
                // dropping the flight leaders aborts their flights so
                // waiters fall back to their own solve.
                self.metrics.solver_errors.inc();
                event!(Severity::Warn, "serve.shard", "shard {} solver round failed: {e}", self.shard);
                leads.clear();
                for req in to_solve {
                    self.resolve(req, Outcome::Rejected { shard: self.shard });
                }
            }
        }
        true
    }

    /// Splits `live` into cache-resolved requests (answered in place) and
    /// the remainder that needs a solver round. Returns the remainder
    /// plus, aligned by index, the cache key to publish each solved plan
    /// under (`None` = don't publish: cache off, or a duplicate shape
    /// already being solved in this batch) and the single-flight
    /// leadership token if this request owns the solve for its key.
    fn cache_pass<'c>(
        &mut self,
        cache: &'c PlanCache<CachedPlan>,
        live: Vec<ServiceRequest>,
    ) -> CachePass<'c> {
        let generation = self.metrics.generation.get();
        let bucket = budget_bucket(&self.controller.snapshot().headroom, &self.budgets);
        let mut to_solve = Vec::new();
        let mut keys: Vec<Option<PlanKey>> = Vec::new();
        let mut leads: Vec<Option<FlightLeader<'c, CachedPlan>>> = Vec::new();
        for req in live {
            let key = PlanKey { shape: shape_fingerprint(&req.task, &req.options), bucket, generation };
            if let Some(cached) = cache.lookup(&key) {
                match self.apply_cached(cache, &key, cached.value, req) {
                    None => continue, // resolved from cache
                    Some(req) => {
                        // Validation failed: solve fresh and re-publish.
                        to_solve.push(req);
                        keys.push(Some(key));
                        leads.push(None);
                        continue;
                    }
                }
            }
            // Batch-local dedup: if an earlier request in this batch
            // already solves this key, just ride the same round.
            if keys.contains(&Some(key)) {
                to_solve.push(req);
                keys.push(None);
                leads.push(None);
                continue;
            }
            // Cross-shard single-flight: lead the solve or briefly wait
            // for another shard's in-flight one.
            match cache.begin_flight(key) {
                FlightAttempt::Leader(leader) => {
                    to_solve.push(req);
                    keys.push(Some(key));
                    leads.push(Some(leader));
                }
                FlightAttempt::Follower(follower) => {
                    match follower.wait(cache.config().flight_wait) {
                        Some(cached) => {
                            if let Some(req) = self.apply_cached(cache, &key, cached.value, req) {
                                to_solve.push(req);
                                keys.push(Some(key));
                                leads.push(None);
                            }
                        }
                        None => {
                            // Leader aborted or too slow: solve locally.
                            to_solve.push(req);
                            keys.push(Some(key));
                            leads.push(None);
                        }
                    }
                }
            }
        }
        (to_solve, keys, leads)
    }

    /// The value stamped into negative cache entries: shard id folded
    /// into the high bits so an entry minted by one shard never replays
    /// on another (each shard rejects against its own budget partition),
    /// plus the mutation counter so any ledger movement retires it.
    fn ledger_stamp(&self) -> u64 {
        ((self.shard as u64) << 48) | (self.ledger & ((1 << 48) - 1))
    }

    /// Applies a memoized plan to one request: a negative entry rejects
    /// immediately iff its ledger stamp still matches (nothing moved
    /// since the solver said no, so a fresh solve would say no again); an
    /// admit plan is re-validated against the live ledger and activates
    /// exactly as a cold solve would. Returns the request back when
    /// either check fails (the entry is dropped and the caller falls
    /// through to a fresh solve).
    fn apply_cached(
        &mut self,
        cache: &PlanCache<CachedPlan>,
        key: &PlanKey,
        plan: CachedPlan,
        req: ServiceRequest,
    ) -> Option<ServiceRequest> {
        match plan {
            CachedPlan::Infeasible { ledger } => {
                if ledger == self.ledger_stamp() {
                    self.resolve(req, Outcome::Rejected { shard: self.shard });
                    None
                } else {
                    // The ledger moved (or another shard minted this):
                    // capacity may have freed up, so the rejection can no
                    // longer be replayed verbatim.
                    cache.note_validation_failure(key);
                    Some(req)
                }
            }
            CachedPlan::Admit { option, admission, rbs } => {
                match self.controller.try_apply_plan(req.task.clone(), &req.options, option, admission, rbs) {
                    Some(grant) => {
                        self.ledger += 1;
                        self.resolve(
                            req,
                            Outcome::Admitted {
                                admission: grant.admission,
                                rbs: grant.rbs,
                                shard: self.shard,
                            },
                        );
                        None
                    }
                    None => {
                        cache.note_validation_failure(key);
                        Some(req)
                    }
                }
            }
        }
    }

    /// Delivers a verdict: bumps the matching counter, records latency
    /// and answers the ticket (a dropped ticket is fine — the verdict is
    /// still accounted).
    fn resolve(&self, req: ServiceRequest, outcome: Outcome) {
        let counter = match outcome {
            Outcome::Admitted { .. } => &self.metrics.admitted,
            Outcome::Rejected { .. } => &self.metrics.rejected,
            Outcome::Shed { .. } => &self.metrics.shed,
            Outcome::Expired { .. } => &self.metrics.expired,
        };
        counter.inc();
        self.metrics.latency.record(req.enqueued_at.elapsed());
        let _ = req.responder.try_send(outcome);
    }
}

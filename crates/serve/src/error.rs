//! Service-runtime error types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when constructing or configuring the service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServeError {
    /// A configuration field is out of its valid range.
    InvalidConfig(&'static str),
    /// The operation is not available on a draining service (e.g.
    /// [`crate::Service::scale_to`] after a drain began).
    Draining,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(what) => write!(f, "invalid service config: {what}"),
            ServeError::Draining => f.write_str("service is draining"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Errors raised by [`crate::service::Service::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubmitError {
    /// The service is draining and no longer accepts requests.
    Draining,
    /// The request carried no candidate path options.
    NoOptions,
    /// The admission endpoint could not be reached (wire tiers of the
    /// [`crate::admit::Admitter`] trait only): the request was never
    /// accepted, so nothing is owed a verdict.
    Unavailable,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Draining => f.write_str("service is draining"),
            SubmitError::NoOptions => f.write_str("request has no path options"),
            SubmitError::Unavailable => f.write_str("admission endpoint unreachable"),
        }
    }
}

impl std::error::Error for SubmitError {}

//! The shared CLI surface and tier-agnostic driver loop of the three
//! load-generator binaries (`serve_loadgen`, `net_loadgen`,
//! `gateway_loadgen`).
//!
//! Before the unified admission API each binary carried its own copy of
//! the flag parser, the verdict tally and the submit/reap/depart loop,
//! welded to one tier's concrete types. This module is the
//! consolidation: [`CommonArgs`] + [`parse`] own the flag surface every
//! binary shares (each binary registers only its tier-specific extras),
//! [`WireTally`] is the one driver-side verdict ledger, and [`drive`]
//! is the one driver body — it speaks [`Admitter`] only, so the exact
//! same loop exercises an in-process [`crate::Service`], a TCP
//! `net::Client` or a cluster `Gateway` without knowing which it holds.
//!
//! Every binary also prints the same [`print_header`] line
//! (`loadgen[tier=… frontend=… seed=…]`), so any run's tier, transport
//! and seed are greppable from its first output line.

use crate::admit::{Admitter, VerdictError};
use crate::error::SubmitError;
use crate::loadgen::ShapePool;
use crate::service::Outcome;
use offloadnn_core::instance::PathOption;
use offloadnn_core::task::{Task, TaskId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The flag surface shared by all three load-generator binaries. Each
/// binary starts from its own defaults, hands the struct to [`parse`]
/// with a closure for its tier-specific extras, and reads the result
/// back out.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// The transport serving the run (`threads` / `reactor` for the
    /// wire tiers, `in-process` for `serve_loadgen`). Kept as a string
    /// here — this crate cannot see `offloadnn_net::Frontend`; wire
    /// binaries parse it after the fact.
    pub frontend: String,
    /// Total submits across all drivers.
    pub requests: u64,
    /// Concurrent driver loops (`1` for the in-process tier).
    pub clients: usize,
    /// Per-driver pipeline depth before the oldest pending verdict is
    /// reaped.
    pub window: usize,
    /// Worker shards per backend service.
    pub shards: usize,
    /// UEs in the reference scenario.
    pub ues: usize,
    /// Caller-shipped admission budget in milliseconds (`0` = the
    /// tier's policy deadline).
    pub deadline_ms: u64,
    /// Admitted tasks kept alive per driver before the oldest departs.
    pub max_active: usize,
    /// RNG seed (task mix).
    pub seed: u64,
    /// Zipf exponent of the task-shape mix (`0` = fresh jitter per
    /// request, no pool).
    pub shape_skew: f64,
    /// Distinct shapes in the Zipf pool.
    pub shape_pool: usize,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            frontend: "threads".into(),
            requests: 10_000,
            clients: 4,
            window: 64,
            shards: 2,
            ues: 5,
            deadline_ms: 0,
            max_active: 64,
            seed: 7,
            shape_skew: 0.0,
            shape_pool: 64,
        }
    }
}

impl CommonArgs {
    /// Cross-flag validation shared by every binary.
    ///
    /// # Errors
    ///
    /// A human-readable message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.clients == 0 {
            return Err("--clients must be >= 1".into());
        }
        if self.window == 0 {
            return Err("--window must be >= 1".into());
        }
        if self.shape_pool == 0 {
            return Err("--shape-pool must be >= 1".into());
        }
        Ok(())
    }
}

/// Walks `std::env::args()`, filling `common` with the shared flags and
/// delegating everything else to `extra`. `extra` is consulted *first*
/// for every flag (so a binary can claim value-less switches like
/// `--hedge`, pulling values from the iterator only when it needs
/// them); returning `Ok(false)` passes the flag on to the common
/// surface. `-h`/`--help` prints `usage` and exits.
///
/// # Errors
///
/// A human-readable message for a malformed or unknown flag, or
/// whatever `extra` reports.
pub fn parse<F>(usage: &str, common: &mut CommonArgs, mut extra: F) -> Result<(), String>
where
    F: FnMut(&str, &mut dyn Iterator<Item = String>) -> Result<bool, String>,
{
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            print!("{usage}");
            std::process::exit(0);
        }
        if extra(&flag, &mut it)? {
            continue;
        }
        let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
        let bad = |e: &dyn fmt::Display| format!("{flag} {value}: {e}");
        match flag.as_str() {
            "--frontend" => common.frontend = value,
            "--requests" => common.requests = value.parse().map_err(|e| bad(&e))?,
            "--clients" => common.clients = value.parse().map_err(|e| bad(&e))?,
            "--window" => common.window = value.parse().map_err(|e| bad(&e))?,
            "--shards" => common.shards = value.parse().map_err(|e| bad(&e))?,
            "--ues" => common.ues = value.parse().map_err(|e| bad(&e))?,
            "--deadline-ms" => common.deadline_ms = value.parse().map_err(|e| bad(&e))?,
            "--max-active" => common.max_active = value.parse().map_err(|e| bad(&e))?,
            "--seed" => common.seed = value.parse().map_err(|e| bad(&e))?,
            "--shape-skew" => common.shape_skew = value.parse().map_err(|e| bad(&e))?,
            "--shape-pool" => common.shape_pool = value.parse().map_err(|e| bad(&e))?,
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    common.validate()
}

/// Parses `"at:shards,at:shards"` into scale-script steps (shared by
/// the serve and net binaries).
///
/// # Errors
///
/// A human-readable message for the first malformed step.
pub fn parse_scale_script(value: &str) -> Result<Vec<(u64, u32)>, String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|step| {
            let (at, shards) =
                step.split_once(':').ok_or_else(|| format!("scale step {step:?}: expected at:shards"))?;
            let at: u64 = at.trim().parse().map_err(|e| format!("scale step {step:?}: {e}"))?;
            let shards: u32 = shards.trim().parse().map_err(|e| format!("scale step {step:?}: {e}"))?;
            if shards == 0 {
                return Err(format!("scale step {step:?}: target must be at least one shard"));
            }
            Ok((at, shards))
        })
        .collect()
}

/// The uniform first output line of every load generator: tier,
/// transport and seed in one greppable prefix, then the binary's own
/// topology detail.
pub fn print_header(tier: &str, frontend: &str, seed: u64, detail: fmt::Arguments<'_>) {
    println!("loadgen[tier={tier} frontend={frontend} seed={seed}] {detail}");
}

/// The driver-side verdict ledger, observed through [`Admitter`]
/// pending verdicts — one tally shape for every tier, so the
/// conservation arithmetic (`offered == outcomes + errors`) reads the
/// same in every binary.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WireTally {
    /// Verdicts resolved `Admitted`.
    pub admitted: u64,
    /// Verdicts resolved `Rejected`.
    pub rejected: u64,
    /// Verdicts resolved `Shed`.
    pub shed: u64,
    /// Verdicts resolved `Expired`.
    pub expired: u64,
    /// Requests refused at or after ingress without a verdict
    /// ([`SubmitError`] other than `Unavailable`, or
    /// [`VerdictError::Refused`]).
    pub refused: u64,
    /// Requests whose transport died or whose wait bound elapsed
    /// ([`SubmitError::Unavailable`], [`VerdictError::Transport`],
    /// [`VerdictError::TimedOut`]).
    pub transport: u64,
    /// Requests the backend lost without resolving
    /// ([`VerdictError::Lost`]) — always a bug in the tier under test.
    pub lost: u64,
}

impl WireTally {
    /// Total resolved verdicts.
    pub fn outcomes(&self) -> u64 {
        self.admitted + self.rejected + self.shed + self.expired
    }

    /// Requests that ended in an error instead of a verdict.
    pub fn errors(&self) -> u64 {
        self.refused + self.transport + self.lost
    }

    /// Folds another driver's tally into this one.
    pub fn merge(&mut self, o: WireTally) {
        self.admitted += o.admitted;
        self.rejected += o.rejected;
        self.shed += o.shed;
        self.expired += o.expired;
        self.refused += o.refused;
        self.transport += o.transport;
        self.lost += o.lost;
    }

    /// Records one resolved pending verdict.
    pub fn observe(&mut self, verdict: &Result<Outcome, VerdictError>) {
        match verdict {
            Ok(Outcome::Admitted { .. }) => self.admitted += 1,
            Ok(Outcome::Rejected { .. }) => self.rejected += 1,
            Ok(Outcome::Shed { .. }) => self.shed += 1,
            Ok(Outcome::Expired { .. }) => self.expired += 1,
            Err(VerdictError::Refused(_)) => self.refused += 1,
            Err(VerdictError::Transport(_) | VerdictError::TimedOut) => self.transport += 1,
            Err(VerdictError::Lost) => self.lost += 1,
        }
    }
}

impl fmt::Display for WireTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admitted {}  rejected {}  shed {}  expired {}  refused {}  transport-err {}  lost {}",
            self.admitted, self.rejected, self.shed, self.expired, self.refused, self.transport, self.lost,
        )
    }
}

/// Parameters of one [`drive`] loop.
#[derive(Debug, Clone, Copy)]
pub struct DriveConfig {
    /// Submits this driver offers.
    pub requests: u64,
    /// Driver index: decorrelates the RNG and keeps task-id spaces
    /// disjoint across concurrent drivers (so departures stay routable).
    pub driver: usize,
    /// Base RNG seed, shared across drivers.
    pub seed: u64,
    /// Pipeline depth before the oldest pending verdict is reaped.
    pub window: usize,
    /// Admitted tasks kept alive before the oldest departs (`0` = keep
    /// everything, saturating the backend).
    pub max_active: usize,
    /// Caller-shipped admission budget (`None` = tier policy).
    pub deadline: Option<Duration>,
    /// How long a reaped verdict may stay outstanding before the driver
    /// declares the tier wedged (counted as a transport error, never a
    /// hang).
    pub verdict_timeout: Duration,
    /// Interleave a [`Admitter::metrics`] probe every N submits (`0` =
    /// never).
    pub snapshot_every: u64,
}

/// How long a verdict may stay outstanding by default: generous, since
/// a mid-run node kill legitimately parks a ticket for a full gateway
/// deadline + grace while failover runs.
pub const VERDICT_TIMEOUT: Duration = Duration::from_secs(30);

impl DriveConfig {
    /// A drive slice of `requests` submits for driver `driver`, taking
    /// everything else from the parsed common flags.
    pub fn from_common(common: &CommonArgs, driver: usize, requests: u64) -> Self {
        Self {
            requests,
            driver,
            seed: common.seed,
            window: common.window,
            max_active: common.max_active,
            deadline: (common.deadline_ms > 0).then(|| Duration::from_millis(common.deadline_ms)),
            verdict_timeout: VERDICT_TIMEOUT,
            snapshot_every: 0,
        }
    }
}

/// What one [`drive`] loop observed.
#[derive(Debug, Default, Clone, Copy)]
pub struct DriveReport {
    /// The verdicts and errors this driver saw.
    pub tally: WireTally,
    /// Admitted tasks this driver departed.
    pub departed: u64,
}

fn settle(
    pending: crate::admit::PendingVerdict,
    timeout: Duration,
    tally: &mut WireTally,
    active: &mut VecDeque<TaskId>,
) {
    let task = pending.task();
    let verdict = pending.wait_timeout(timeout);
    if matches!(verdict, Ok(Outcome::Admitted { .. })) {
        active.push_back(task);
    }
    tally.observe(&verdict);
}

/// The one driver body every binary and harness shares: offers
/// `cfg.requests` synthetic submits derived from `protos` (optionally
/// through the deterministic Zipf `shapes` pool) to *any* admission
/// tier behind [`Admitter`], pipelines up to `cfg.window` pending
/// verdicts, departs the oldest admission beyond `cfg.max_active`, and
/// tallies every resolution. `offered` is bumped once per submit so
/// concurrent chaos threads (node killers, scale controllers) can
/// trigger on the global offered count.
pub fn drive(
    admitter: &dyn Admitter,
    cfg: &DriveConfig,
    protos: &[(Task, Vec<PathOption>)],
    shapes: Option<&ShapePool>,
    offered: &AtomicU64,
) -> DriveReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (cfg.driver as u64).wrapping_mul(0x9E37_79B9));
    let mut report = DriveReport::default();
    let mut pending = VecDeque::new();
    let mut active: VecDeque<TaskId> = VecDeque::new();

    for i in 0..cfg.requests {
        // With the Zipf pool active, popular shape ranks repeat
        // bit-identically (the same jitter every draw) across every
        // driver, so any plan cache downstream has something to hit.
        let (proto, jitter) = match shapes {
            Some(pool) => {
                let (proto, priority, rate) = pool.draw(&mut rng);
                (&protos[proto], Some((priority, rate)))
            }
            None => (&protos[rng.random_range(0..protos.len())], None),
        };
        let mut task = proto.0.clone();
        if let Some((priority, rate)) = jitter {
            task.priority = (task.priority * priority).clamp(0.05, 1.0);
            task.request_rate *= rate;
        }
        // Disjoint id spaces keep departures routable per driver.
        task.id = TaskId(u32::try_from(cfg.driver as u64 * 100_000_000 + i).unwrap_or(u32::MAX));
        match admitter.submit(task, proto.1.clone(), cfg.deadline) {
            Ok(p) => pending.push_back(p),
            Err(SubmitError::Unavailable) => report.tally.transport += 1,
            Err(_) => report.tally.refused += 1,
        }
        offered.fetch_add(1, Ordering::Relaxed);
        if pending.len() >= cfg.window {
            if let Some(p) = pending.pop_front() {
                settle(p, cfg.verdict_timeout, &mut report.tally, &mut active);
            }
        }
        while cfg.max_active > 0 && active.len() > cfg.max_active {
            if let Some(id) = active.pop_front() {
                admitter.depart(id);
                report.departed += 1;
            }
        }
        if cfg.snapshot_every > 0 && i % cfg.snapshot_every == cfg.snapshot_every - 1 {
            let _ = admitter.metrics();
        }
    }
    while let Some(p) = pending.pop_front() {
        settle(p, cfg.verdict_timeout, &mut report.tally, &mut active);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use crate::service::Service;
    use offloadnn_core::scenario::small_scenario;

    #[test]
    fn scale_script_parsing_accepts_steps_and_rejects_garbage() {
        assert_eq!(parse_scale_script("100:8,250:2").unwrap(), vec![(100, 8), (250, 2)]);
        assert_eq!(parse_scale_script("").unwrap(), vec![]);
        assert!(parse_scale_script("100").is_err());
        assert!(parse_scale_script("100:0").is_err());
        assert!(parse_scale_script("x:2").is_err());
    }

    #[test]
    fn tally_merge_and_conservation_arithmetic() {
        let mut a = WireTally { admitted: 2, shed: 1, ..WireTally::default() };
        let b = WireTally { rejected: 3, transport: 1, lost: 1, ..WireTally::default() };
        a.merge(b);
        assert_eq!(a.outcomes(), 6);
        assert_eq!(a.errors(), 2);
        let shown = format!("{a}");
        assert!(shown.contains("admitted 2") && shown.contains("lost 1"), "{shown}");
    }

    #[test]
    fn drive_conserves_over_an_in_process_service() {
        let scenario = small_scenario(5);
        let service =
            Service::start(ServiceConfig { shards: 2, ..ServiceConfig::default() }, &scenario.instance)
                .expect("service start");
        let protos: Vec<_> =
            scenario.instance.tasks.iter().cloned().zip(scenario.instance.options.iter().cloned()).collect();
        let offered = AtomicU64::new(0);
        let cfg = DriveConfig {
            requests: 300,
            driver: 0,
            seed: 11,
            window: 32,
            max_active: 16,
            deadline: None,
            verdict_timeout: VERDICT_TIMEOUT,
            snapshot_every: 50,
        };
        let report = drive(&service, &cfg, &protos, None, &offered);
        assert_eq!(offered.load(Ordering::Relaxed), 300);
        assert_eq!(report.tally.outcomes(), 300, "{:?}", report.tally);
        assert_eq!(report.tally.errors(), 0, "{:?}", report.tally);
        let drain = service.drain();
        assert!(drain.metrics.is_conserved());
        assert_eq!(drain.metrics.submitted, 300);
        assert_eq!(drain.metrics.admitted, report.tally.admitted);
    }
}

//! Closed-loop load generation against a [`Service`]: replays an
//! [`ArrivalProcess`] stream of synthetic admission requests, keeps a
//! bounded set of admitted tasks alive (departing the oldest, which
//! exercises `Controller::release` continuously), and reports
//! throughput, latency and verdict mix. Used by the `serve_loadgen`
//! binary and the `serve_throughput` bench.

pub mod args;

use crate::admit::{Admitter, PendingVerdict, VerdictError};
use crate::config::ServiceConfig;
use crate::service::{DrainReport, Outcome, ReshardReport, Service};
use offloadnn_core::instance::DotInstance;
use offloadnn_core::task::TaskId;
use offloadnn_radio::{ArrivalProcess, Arrivals};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenConfig {
    /// Total requests to offer.
    pub requests: u64,
    /// Arrival process replayed for pacing and offered-load accounting.
    pub process: ArrivalProcess,
    /// RNG seed (request mix and arrival stream).
    pub seed: u64,
    /// Admitted tasks kept alive concurrently; beyond this the oldest is
    /// departed, continuously exercising the release path.
    pub max_active: usize,
    /// Wall-clock seconds per simulated arrival second. `0.0` disables
    /// pacing: requests are offered as fast as the ingress accepts them
    /// (a saturation test).
    pub time_scale: f64,
    /// Zipf exponent of the shape distribution. `0.0` (the default)
    /// keeps the historical behaviour — every request gets fresh
    /// per-request jitter, so no two shapes repeat. Positive values
    /// switch to a deterministic [`ShapePool`]: request shapes are drawn
    /// from `shape_pool` ranks with weight `1/(k+1)^skew`, and a re-draw
    /// of the same rank is bit-identical — the workload a plan cache can
    /// actually hit on.
    pub shape_skew: f64,
    /// Distinct shapes in the Zipf pool (ignored while `shape_skew` is
    /// `0.0`).
    pub shape_pool: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            requests: 10_000,
            process: ArrivalProcess::Poisson { rate_hz: 5_000.0 },
            seed: 7,
            max_active: 64,
            time_scale: 0.0,
            shape_skew: 0.0,
            shape_pool: 64,
        }
    }
}

/// Deterministic pool of task shapes for the Zipf workload mode.
///
/// Shape `k` is minted once from `seed ^ k·φ` (golden-ratio spacing
/// keeps neighbouring ranks decorrelated) and stored materialized, so
/// every re-draw of rank `k` produces the *same* priority and rate —
/// which is exactly what makes two requests share a plan-cache
/// fingerprint. Ranks are drawn with Zipf weights `1/(k+1)^s` via a
/// binary search over the normalized CDF.
///
/// Public so the `offloadnn-net` and `offloadnn-gateway` load generators
/// can offer the identical skewed stream over the wire.
pub struct ShapePool {
    /// Materialized `(prototype index, priority factor, rate factor)`.
    shapes: Vec<(usize, f64, f64)>,
    /// Cumulative Zipf weights, normalized to end at 1.0.
    cdf: Vec<f64>,
}

impl ShapePool {
    /// Materializes `pool` shapes over `protos` prototypes with Zipf
    /// exponent `skew`; the same `(pool, skew, protos, seed)` always
    /// yields the same pool.
    pub fn new(pool: usize, skew: f64, protos: usize, seed: u64) -> Self {
        let pool = pool.max(1);
        let mut shapes = Vec::with_capacity(pool);
        for k in 0..pool {
            let mut r = StdRng::seed_from_u64(seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let proto = r.random_range(0..protos);
            let priority = r.random_range(0.6f64..1.4);
            let rate = r.random_range(0.8f64..1.2);
            shapes.push((proto, priority, rate));
        }
        let mut cdf = Vec::with_capacity(pool);
        let mut acc = 0.0f64;
        for k in 0..pool {
            acc += ((k + 1) as f64).powf(skew).recip();
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Self { shapes, cdf }
    }

    /// Draws one `(prototype index, priority factor, rate factor)` rank.
    pub fn draw(&self, rng: &mut StdRng) -> (usize, f64, f64) {
        let u = rng.random_range(0.0f64..1.0);
        let k = self.cdf.partition_point(|&c| c < u).min(self.shapes.len() - 1);
        self.shapes[k]
    }
}

/// Verdict tally observed through the tickets (independently of the
/// service's own metrics, so the two can cross-check each other).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictTally {
    /// Tickets resolved `Admitted`.
    pub admitted: u64,
    /// Tickets resolved `Rejected`.
    pub rejected: u64,
    /// Tickets resolved `Shed`.
    pub shed: u64,
    /// Tickets resolved `Expired`.
    pub expired: u64,
    /// Tickets that never resolved (worker death — always a bug).
    pub lost: u64,
}

impl VerdictTally {
    fn observe(&mut self, verdict: &Result<Outcome, VerdictError>) {
        match verdict {
            Ok(Outcome::Admitted { .. }) => self.admitted += 1,
            Ok(Outcome::Rejected { .. }) => self.rejected += 1,
            Ok(Outcome::Shed { .. }) => self.shed += 1,
            Ok(Outcome::Expired { .. }) => self.expired += 1,
            Err(_) => self.lost += 1,
        }
    }

    /// Total resolved tickets.
    pub fn resolved(&self) -> u64 {
        self.admitted + self.rejected + self.shed + self.expired
    }
}

/// Result of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// The parameters the run used.
    pub config: LoadgenConfig,
    /// Shards the service ran.
    pub shards: usize,
    /// Wall-clock duration from first submit to drain completion.
    pub wall: Duration,
    /// Verdicts observed through tickets.
    pub tally: VerdictTally,
    /// Reshards executed mid-run (empty unless a scale script ran).
    pub reshards: Vec<ReshardReport>,
    /// The service's own final report.
    pub drain: DrainReport,
}

impl LoadgenReport {
    /// Resolved requests per wall-clock second.
    pub fn throughput_hz(&self) -> f64 {
        self.tally.resolved() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Whether the run is fully accounted: the service metrics conserve,
    /// the ticket tally agrees with them, and no ticket was lost.
    pub fn is_conserved(&self) -> bool {
        let m = &self.drain.metrics;
        self.tally.lost == 0
            && m.is_conserved()
            && m.submitted == self.config.requests
            && m.admitted == self.tally.admitted
            && m.rejected == self.tally.rejected
            && m.shed == self.tally.shed
            && m.expired == self.tally.expired
    }
}

impl fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = &self.drain.metrics;
        let pct = |n: u64| 100.0 * n as f64 / m.submitted.max(1) as f64;
        // The seed in the header makes any run reproducible from its own
        // output: re-run with `--seed <printed value>`.
        writeln!(
            f,
            "offered {} requests ({} arrivals at {:.0} req/s mean, seed {}) across {} shards in {:.3?}",
            self.config.requests,
            match self.config.process {
                ArrivalProcess::Poisson { .. } => "Poisson",
                ArrivalProcess::Periodic { .. } => "periodic",
                ArrivalProcess::Bursty { .. } => "MMPP-bursty",
            },
            self.config.process.rate_hz(),
            self.config.seed,
            self.shards,
            self.wall,
        )?;
        if self.config.shape_skew > 0.0 {
            writeln!(
                f,
                "shapes:     Zipf skew {:.2} over a pool of {} deterministic shapes",
                self.config.shape_skew, self.config.shape_pool,
            )?;
        }
        if let Some(pc) = &self.drain.plan_cache {
            writeln!(
                f,
                "plan cache: hit rate {:.1}% ({} hits, {} negative, {} misses, {} evictions, {} invalidated, {} revalidation misses)",
                100.0 * pc.hit_rate(),
                pc.hits,
                pc.negative_hits,
                pc.misses,
                pc.evictions,
                pc.invalidations,
                pc.validation_failures,
            )?;
        }
        writeln!(f, "throughput: {:.0} verdicts/s", self.throughput_hz())?;
        writeln!(
            f,
            "verdicts:   admitted {} ({:.1}%)   rejected {} ({:.1}%)   shed {} ({:.1}%)   expired {} ({:.1}%)",
            m.admitted,
            pct(m.admitted),
            m.rejected,
            pct(m.rejected),
            m.shed,
            pct(m.shed),
            m.expired,
            pct(m.expired),
        )?;
        writeln!(f, "{m}")?;
        for r in &self.reshards {
            writeln!(
                f,
                "reshard:    {} -> {} shards, {} in-flight tasks migrated (generation {})",
                r.from_shards, r.to_shards, r.migrated, r.generation,
            )?;
        }
        for s in &self.drain.shards {
            writeln!(
                f,
                "shard {}: {} rounds, peak rbs {:.2}/{:.2}, peak compute {:.3}/{:.3}, active at exit {}",
                s.shard,
                s.rounds,
                s.peak_rbs,
                s.budgets.rbs,
                s.peak_compute,
                s.budgets.compute_seconds,
                s.snapshot.active_tasks,
            )?;
        }
        write!(
            f,
            "conservation: {}",
            if self.is_conserved() {
                "OK (submitted = admitted + rejected + shed + expired)"
            } else {
                "VIOLATED"
            }
        )
    }
}

/// Runs a closed-loop load test: starts a [`Service`] over `template`,
/// offers `cfg.requests` synthetic requests derived from the template's
/// task/option prototypes, reaps verdicts opportunistically while
/// submitting (departing the oldest admitted task beyond
/// `cfg.max_active`), waits out the stragglers and drains.
///
/// # Panics
///
/// Panics if the template has no tasks or if the service cannot start
/// (invalid `service` config).
pub fn run(service_config: ServiceConfig, cfg: LoadgenConfig, template: &DotInstance) -> LoadgenReport {
    run_scripted(service_config, cfg, &[], template)
}

/// Like [`run`], but executes a scale script while the load is offered:
/// each `(at, shards)` step calls [`Service::scale_to`]`(shards)` just
/// before request number `at` is submitted (steps at or past
/// `cfg.requests` fire after the last submit, before drain). Steps are
/// executed in ascending `at` order regardless of input order.
///
/// Budget-partition invariants (`DrainReport::within_budgets`) are not
/// meaningful after a reshard — adopted tasks may transiently exceed a
/// shard's partition — so scripted callers should gate on
/// [`LoadgenReport::is_conserved`] only.
///
/// # Panics
///
/// Panics like [`run`], and additionally if a script step is invalid
/// (target of zero shards).
pub fn run_scripted(
    service_config: ServiceConfig,
    cfg: LoadgenConfig,
    script: &[(u64, usize)],
    template: &DotInstance,
) -> LoadgenReport {
    assert!(!template.tasks.is_empty(), "template needs at least one prototype task");
    let mut script: Vec<(u64, usize)> = script.to_vec();
    script.sort_unstable();
    let mut next_step = 0usize;
    let mut reshards: Vec<ReshardReport> = Vec::new();
    let service = Service::start(service_config, template).expect("service start");
    let shards = service_config.shards;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut arrivals = Arrivals::new(cfg.process, cfg.seed ^ 0x5eed);
    let shape_pool = (cfg.shape_skew > 0.0)
        .then(|| ShapePool::new(cfg.shape_pool, cfg.shape_skew, template.tasks.len(), cfg.seed));

    // The driver loop speaks the unified admission API only; the
    // concrete `Service` is consulted solely for the management plane
    // (scale script, final drain).
    let admitter: &dyn Admitter = &service;
    let mut tally = VerdictTally::default();
    let mut pending: VecDeque<PendingVerdict> = VecDeque::new();
    let mut active: VecDeque<TaskId> = VecDeque::new();
    let started = Instant::now();
    let mut sim_origin: Option<f64> = None;

    for i in 0..cfg.requests {
        // Scale steps due at this request fire before it is submitted,
        // so the submit exercises the post-reshard routing state.
        while next_step < script.len() && script[next_step].0 <= i {
            let target = script[next_step].1;
            next_step += 1;
            reshards.push(service.scale_to(target).expect("scale script step"));
        }

        // Pacing: map the simulated arrival timestamp to wall clock.
        let t = arrivals.next().expect("arrival stream is infinite");
        if cfg.time_scale > 0.0 {
            let origin = *sim_origin.get_or_insert(t);
            let due = started + Duration::from_secs_f64((t - origin) * cfg.time_scale);
            if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
        }

        // A fresh task derived from a prototype: unique id, jittered
        // priority (so shedding has an order to respect) and rate. With
        // the Zipf pool active the jitter comes from the materialized
        // shape rank instead, so popular shapes repeat bit-identically.
        let (proto, priority_factor, rate_factor) = match &shape_pool {
            Some(pool) => pool.draw(&mut rng),
            None => (
                rng.random_range(0..template.tasks.len()),
                rng.random_range(0.6f64..1.4),
                rng.random_range(0.8f64..1.2),
            ),
        };
        let mut task = template.tasks[proto].clone();
        task.id = TaskId(i as u32);
        task.priority = (task.priority * priority_factor).clamp(0.05, 1.0);
        task.request_rate *= rate_factor;
        let verdict = admitter
            .submit(task, template.options[proto].clone(), None)
            .expect("not draining and options non-empty");
        pending.push_back(verdict);

        // Reap whatever already resolved, keeping the admitted set
        // bounded so the long-running controllers don't fill up.
        while let Some(front) = pending.front() {
            match front.poll() {
                Some(verdict) => {
                    let resolved = pending.pop_front().expect("front exists");
                    if matches!(verdict, Ok(Outcome::Admitted { .. })) {
                        active.push_back(resolved.task());
                    }
                    tally.observe(&verdict);
                }
                None => break,
            }
        }
        while active.len() > cfg.max_active {
            let oldest = active.pop_front().expect("non-empty");
            admitter.depart(oldest);
        }
    }

    // Stragglers: every ticket resolves (workers answer everything, even
    // expired requests), so blocking waits terminate.
    for verdict in pending {
        let task = verdict.task();
        let outcome = verdict.wait();
        if matches!(outcome, Ok(Outcome::Admitted { .. })) {
            active.push_back(task);
        }
        tally.observe(&outcome);
    }
    // Steps scripted at or past the end of the stream fire against a
    // fully loaded fleet, right before drain.
    while next_step < script.len() {
        let target = script[next_step].1;
        next_step += 1;
        reshards.push(service.scale_to(target).expect("scale script step"));
    }

    // Leave `active` tasks in place: drain must cope with a loaded fleet.
    let drain = service.drain();
    let wall = started.elapsed();

    LoadgenReport { config: cfg, shards, wall, tally, reshards, drain }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_core::scenario::small_scenario;

    #[test]
    fn small_closed_loop_run_conserves() {
        let s = small_scenario(5);
        let service_config = ServiceConfig { shards: 2, ..ServiceConfig::default() };
        let cfg = LoadgenConfig { requests: 300, max_active: 16, ..LoadgenConfig::default() };
        let report = run(service_config, cfg, &s.instance);
        assert!(report.is_conserved(), "{report}");
        assert!(report.drain.within_budgets(), "{report}");
        assert_eq!(report.tally.resolved(), 300);
        assert!(report.tally.admitted > 0, "some capacity must be granted: {report}");
    }

    #[test]
    fn zipf_run_with_plan_cache_conserves_and_hits() {
        use offloadnn_plancache::PlanCacheConfig;
        let s = small_scenario(5);
        let service_config = ServiceConfig {
            shards: 2,
            plan_cache: Some(PlanCacheConfig::default()),
            ..ServiceConfig::default()
        };
        let cfg = LoadgenConfig {
            requests: 600,
            max_active: 16,
            shape_skew: 1.2,
            shape_pool: 32,
            ..LoadgenConfig::default()
        };
        let report = run(service_config, cfg, &s.instance);
        assert!(report.is_conserved(), "{report}");
        let pc = report.drain.plan_cache.expect("cache enabled");
        assert!(pc.lookups() > 0, "{report}");
        assert!(pc.hits + pc.negative_hits > 0, "a skewed stream must hit: {report}");
        let shown = format!("{report}");
        assert!(shown.contains("Zipf skew 1.20"), "header echoes the skew: {shown}");
        assert!(shown.contains("plan cache: hit rate"), "header echoes the hit rate: {shown}");
    }

    #[test]
    fn zipf_pool_draws_are_deterministic() {
        let pool = ShapePool::new(16, 1.0, 3, 42);
        let twin = ShapePool::new(16, 1.0, 3, 42);
        assert_eq!(pool.shapes, twin.shapes);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(pool.draw(&mut a), twin.draw(&mut b));
        }
        // Skew concentrates mass on the head ranks.
        let mut rng = StdRng::seed_from_u64(3);
        let skewed = ShapePool::new(16, 1.5, 3, 42);
        let head = skewed.shapes[0];
        let hits = (0..1000).filter(|_| skewed.draw(&mut rng) == head).count();
        assert!(hits > 250, "rank 0 should dominate a 1.5-skew stream, got {hits}/1000");
    }

    #[test]
    fn paced_run_with_bursty_arrivals_conserves() {
        let s = small_scenario(5);
        let service_config =
            ServiceConfig { shards: 2, batch_window: Duration::from_micros(500), ..ServiceConfig::default() };
        let cfg = LoadgenConfig {
            requests: 200,
            process: ArrivalProcess::Bursty {
                calm_rate_hz: 2_000.0,
                burst_rate_hz: 50_000.0,
                mean_calm_s: 0.01,
                mean_burst_s: 0.005,
            },
            time_scale: 1.0,
            max_active: 8,
            ..LoadgenConfig::default()
        };
        let report = run(service_config, cfg, &s.instance);
        assert!(report.is_conserved(), "{report}");
    }

    #[test]
    fn scripted_run_reshards_live_and_conserves() {
        let s = small_scenario(5);
        let service_config = ServiceConfig { shards: 4, ..ServiceConfig::default() };
        let cfg = LoadgenConfig { requests: 400, max_active: 24, ..LoadgenConfig::default() };
        // Grow mid-stream, shrink near the end, and once more against the
        // loaded fleet right before drain.
        let report = run_scripted(service_config, cfg, &[(100, 8), (250, 2), (400, 3)], &s.instance);
        assert!(report.is_conserved(), "{report}");
        assert_eq!(report.reshards.len(), 3, "{report}");
        assert_eq!(report.reshards[0].from_shards, 4);
        assert_eq!(report.reshards[0].to_shards, 8);
        assert_eq!(report.reshards[2].generation, 3);
        assert_eq!(report.drain.metrics.reshards, 3);
        assert_eq!(report.tally.resolved(), 400);
    }
}

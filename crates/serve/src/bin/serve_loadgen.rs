//! Closed-loop load generator for the `offloadnn-serve` runtime.
//!
//! Replays a seeded arrival stream (Poisson / periodic / MMPP-bursty)
//! against a sharded [`offloadnn_serve::Service`] built from the small
//! reference scenario, then prints the throughput / latency / verdict
//! report and exits non-zero if the conservation invariant is violated.
//! The shared flag surface and header come from
//! [`offloadnn_serve::loadgen::args`]; only the arrival-process,
//! scenario and plan-cache-comparison flags are specific to this
//! binary, and the driver loop (inside `loadgen::run_scripted`) speaks
//! the unified [`offloadnn_serve::Admitter`] API.
//!
//! ```text
//! cargo run --release -p offloadnn-serve --bin serve_loadgen -- \
//!     --requests 10000 --shards 4 --process poisson --rate-hz 5000
//! ```

use offloadnn_core::scenario::{large_scenario, small_scenario, LoadLevel, Scenario};
use offloadnn_plancache::PlanCacheConfig;
use offloadnn_radio::ArrivalProcess;
use offloadnn_serve::loadgen::args::{self, CommonArgs};
use offloadnn_serve::{loadgen, LoadgenConfig, ServiceConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
serve_loadgen — closed-loop load generator for offloadnn-serve

USAGE: serve_loadgen [OPTIONS]

OPTIONS (all optional; defaults in brackets):
  --requests N          total requests to offer            [10000]
  --shards N            worker shards                      [4]
  --process KIND        poisson | periodic | bursty        [poisson]
  --rate-hz F           mean arrival rate, requests/s      [5000]
  --time-scale F        wall seconds per simulated second;
                        0 = submit as fast as possible     [0]
  --seed N              RNG seed                           [7]
  --max-active N        admitted tasks kept before the
                        oldest departs                     [64]
  --queue-capacity N    per-shard ingress queue bound      [1024]
  --batch-max N         max requests per solver round      [64]
  --batch-window-us N   batch assembly window, µs          [2000]
  --deadline-ms N       admission deadline, ms             [5000]
  --shed-watermark N    backlog depth triggering priority
                        shedding                           [512]
  --ues N               UEs in the reference scenario      [5]
  --scenario KIND       small | large — small is Table IV's
                        5-UE reference; large is the T = 20,
                        125-structure scenario whose solver
                        rounds are expensive enough to make
                        plan-cache speedups visible          [small]
  --scale-script S      comma-separated at:shards steps, e.g.
                        \"100:8,250:2\" — reshard to the given
                        shard count just before request `at`
                        is offered (per-shard budget checks
                        are skipped when scripted)          [none]
  --shape-skew S        Zipf exponent of the shape mix; 0
                        disables the pool (every request a
                        fresh shape)                        [0]
  --shape-pool N        distinct shapes in the Zipf pool    [64]
  --plan-cache B        true|false — enable the admission
                        plan cache                          [false]
  --min-hit-rate F      exit non-zero unless the plan-cache
                        hit rate reaches F (0..1); requires
                        --plan-cache true                   [none]
  --compare-baseline B  true|false — rerun the identical
                        stream without the cache and report
                        the solve-path speedup              [false]
  --min-speedup F       with --compare-baseline, exit
                        non-zero unless cached/baseline
                        throughput ratio reaches F          [none]
  -h, --help            print this help
";

/// The flags only this binary understands.
struct Extra {
    process_kind: ProcessKind,
    rate_hz: f64,
    time_scale: f64,
    queue_capacity: usize,
    batch_max: usize,
    batch_window_us: u64,
    shed_watermark: usize,
    scenario_kind: ScenarioKind,
    scale_script: Vec<(u64, usize)>,
    plan_cache: bool,
    min_hit_rate: Option<f64>,
    compare_baseline: bool,
    min_speedup: Option<f64>,
}

#[derive(Clone, Copy)]
enum ProcessKind {
    Poisson,
    Periodic,
    Bursty,
}

#[derive(Clone, Copy)]
enum ScenarioKind {
    Small,
    Large,
}

fn parse_args() -> Result<(CommonArgs, Extra), String> {
    let s = ServiceConfig::default();
    let l = LoadgenConfig::default();
    let mut common = CommonArgs {
        frontend: "in-process".into(),
        requests: l.requests,
        clients: 1,
        window: 1,
        shards: s.shards,
        ues: 5,
        deadline_ms: s.admission_deadline.as_millis() as u64,
        max_active: l.max_active,
        seed: l.seed,
        shape_skew: l.shape_skew,
        shape_pool: l.shape_pool,
    };
    let mut extra = Extra {
        process_kind: ProcessKind::Poisson,
        rate_hz: 5_000.0,
        time_scale: l.time_scale,
        queue_capacity: s.queue_capacity,
        batch_max: s.batch_max,
        batch_window_us: s.batch_window.as_micros() as u64,
        shed_watermark: s.shed_watermark,
        scenario_kind: ScenarioKind::Small,
        scale_script: Vec::new(),
        plan_cache: false,
        min_hit_rate: None,
        compare_baseline: false,
        min_speedup: None,
    };
    args::parse(USAGE, &mut common, |flag, it| {
        // Every extra flag this binary owns takes exactly one value;
        // anything else falls through to the common surface.
        match flag {
            "--process" | "--rate-hz" | "--time-scale" | "--queue-capacity" | "--batch-max"
            | "--batch-window-us" | "--shed-watermark" | "--scenario" | "--scale-script" | "--plan-cache"
            | "--min-hit-rate" | "--compare-baseline" | "--min-speedup" => {}
            _ => return Ok(false),
        }
        let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag} {value}: {e}");
        match flag {
            "--process" => {
                extra.process_kind = match value.as_str() {
                    "poisson" => ProcessKind::Poisson,
                    "periodic" => ProcessKind::Periodic,
                    "bursty" => ProcessKind::Bursty,
                    other => return Err(format!("--process {other}: expected poisson|periodic|bursty")),
                }
            }
            "--rate-hz" => extra.rate_hz = value.parse().map_err(|e| bad(&e))?,
            "--time-scale" => extra.time_scale = value.parse().map_err(|e| bad(&e))?,
            "--queue-capacity" => extra.queue_capacity = value.parse().map_err(|e| bad(&e))?,
            "--batch-max" => extra.batch_max = value.parse().map_err(|e| bad(&e))?,
            "--batch-window-us" => extra.batch_window_us = value.parse().map_err(|e| bad(&e))?,
            "--shed-watermark" => extra.shed_watermark = value.parse().map_err(|e| bad(&e))?,
            "--scenario" => {
                extra.scenario_kind = match value.as_str() {
                    "small" => ScenarioKind::Small,
                    "large" => ScenarioKind::Large,
                    other => return Err(format!("--scenario {other}: expected small|large")),
                }
            }
            "--scale-script" => {
                extra.scale_script =
                    args::parse_scale_script(&value)?.into_iter().map(|(at, s)| (at, s as usize)).collect()
            }
            "--plan-cache" => extra.plan_cache = value.parse().map_err(|e| bad(&e))?,
            "--min-hit-rate" => extra.min_hit_rate = Some(value.parse().map_err(|e| bad(&e))?),
            "--compare-baseline" => extra.compare_baseline = value.parse().map_err(|e| bad(&e))?,
            "--min-speedup" => extra.min_speedup = Some(value.parse().map_err(|e| bad(&e))?),
            _ => unreachable!("guarded above"),
        }
        Ok(true)
    })?;
    Ok((common, extra))
}

fn main() -> ExitCode {
    let (common, extra) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let process = match extra.process_kind {
        ProcessKind::Poisson => ArrivalProcess::Poisson { rate_hz: extra.rate_hz },
        ProcessKind::Periodic => ArrivalProcess::Periodic { rate_hz: extra.rate_hz },
        // A 10:1 burst with phase lengths chosen so the mean matches
        // --rate-hz: calm at rate/2, burst at 5x rate, 10% burst duty.
        ProcessKind::Bursty => ArrivalProcess::Bursty {
            calm_rate_hz: extra.rate_hz * 0.5,
            burst_rate_hz: extra.rate_hz * 5.0,
            mean_calm_s: 0.09,
            mean_burst_s: 0.01,
        },
    };
    let service_config = ServiceConfig {
        shards: common.shards,
        queue_capacity: extra.queue_capacity,
        batch_max: extra.batch_max,
        batch_window: Duration::from_micros(extra.batch_window_us),
        admission_deadline: Duration::from_millis(common.deadline_ms),
        shed_watermark: extra.shed_watermark,
        plan_cache: extra.plan_cache.then(PlanCacheConfig::default),
        ..ServiceConfig::default()
    };
    if let Err(e) = service_config.validate() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    let cfg = LoadgenConfig {
        requests: common.requests,
        process,
        seed: common.seed,
        max_active: common.max_active,
        time_scale: extra.time_scale,
        shape_skew: common.shape_skew,
        shape_pool: common.shape_pool,
    };

    let scenario: Scenario = match extra.scenario_kind {
        ScenarioKind::Small => small_scenario(common.ues),
        ScenarioKind::Large => large_scenario(LoadLevel::Medium),
    };
    args::print_header(
        "service",
        &common.frontend,
        common.seed,
        format_args!(
            "{} requests across {} shard(s), {:.0} req/s mean",
            common.requests, common.shards, extra.rate_hz
        ),
    );
    let report = loadgen::run_scripted(service_config, cfg, &extra.scale_script, &scenario.instance);
    println!("{report}");

    if !report.is_conserved() {
        eprintln!("error: conservation violated — a request was lost or double-counted");
        return ExitCode::FAILURE;
    }
    // Per-shard budget partitions are only meaningful on a fixed
    // topology: a reshard adopts in-flight tasks that may transiently
    // exceed the new partition, so the check is skipped when scripted.
    if extra.scale_script.is_empty() && !report.drain.within_budgets() {
        eprintln!("error: a shard exceeded its budget partition");
        return ExitCode::FAILURE;
    }
    if let Some(min) = extra.min_hit_rate {
        let rate = report.drain.plan_cache.map_or(0.0, |pc| pc.hit_rate());
        if rate < min {
            eprintln!("error: plan-cache hit rate {rate:.3} below the required {min:.3}");
            return ExitCode::FAILURE;
        }
    }
    if extra.compare_baseline {
        // Same seed, same stream, same service shape — only the cache
        // differs, so the throughput ratio isolates the solve path.
        let baseline_config = ServiceConfig { plan_cache: None, ..service_config };
        let baseline = loadgen::run_scripted(baseline_config, cfg, &extra.scale_script, &scenario.instance);
        if !baseline.is_conserved() {
            eprintln!("error: conservation violated in the no-cache baseline");
            return ExitCode::FAILURE;
        }
        let speedup = report.throughput_hz() / baseline.throughput_hz().max(1e-9);
        println!(
            "baseline:   {:.0} verdicts/s without the plan cache — solve-path speedup {speedup:.2}x",
            baseline.throughput_hz(),
        );
        if let Some(min) = extra.min_speedup {
            if speedup < min {
                eprintln!("error: solve-path speedup {speedup:.2}x below the required {min:.2}x");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

//! Closed-loop load generator for the `offloadnn-serve` runtime.
//!
//! Replays a seeded arrival stream (Poisson / periodic / MMPP-bursty)
//! against a sharded [`offloadnn_serve::Service`] built from the small
//! reference scenario, then prints the throughput / latency / verdict
//! report and exits non-zero if the conservation invariant is violated.
//!
//! ```text
//! cargo run --release -p offloadnn-serve --bin serve_loadgen -- \
//!     --requests 10000 --shards 4 --process poisson --rate-hz 5000
//! ```

use offloadnn_core::scenario::small_scenario;
use offloadnn_radio::ArrivalProcess;
use offloadnn_serve::{loadgen, LoadgenConfig, ServiceConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
serve_loadgen — closed-loop load generator for offloadnn-serve

USAGE: serve_loadgen [OPTIONS]

OPTIONS (all optional; defaults in brackets):
  --requests N          total requests to offer            [10000]
  --shards N            worker shards                      [4]
  --process KIND        poisson | periodic | bursty        [poisson]
  --rate-hz F           mean arrival rate, requests/s      [5000]
  --time-scale F        wall seconds per simulated second;
                        0 = submit as fast as possible     [0]
  --seed N              RNG seed                           [7]
  --max-active N        admitted tasks kept before the
                        oldest departs                     [64]
  --queue-capacity N    per-shard ingress queue bound      [1024]
  --batch-max N         max requests per solver round      [64]
  --batch-window-us N   batch assembly window, µs          [2000]
  --deadline-ms N       admission deadline, ms             [5000]
  --shed-watermark N    backlog depth triggering priority
                        shedding                           [512]
  --ues N               UEs in the reference scenario      [5]
  --scale-script S      comma-separated at:shards steps, e.g.
                        \"100:8,250:2\" — reshard to the given
                        shard count just before request `at`
                        is offered (per-shard budget checks
                        are skipped when scripted)          [none]
  -h, --help            print this help
";

struct Args {
    requests: u64,
    shards: usize,
    process_kind: ProcessKind,
    rate_hz: f64,
    time_scale: f64,
    seed: u64,
    max_active: usize,
    queue_capacity: usize,
    batch_max: usize,
    batch_window_us: u64,
    deadline_ms: u64,
    shed_watermark: usize,
    ues: usize,
    scale_script: Vec<(u64, usize)>,
}

#[derive(Clone, Copy)]
enum ProcessKind {
    Poisson,
    Periodic,
    Bursty,
}

impl Default for Args {
    fn default() -> Self {
        let s = ServiceConfig::default();
        let l = LoadgenConfig::default();
        Self {
            requests: l.requests,
            shards: s.shards,
            process_kind: ProcessKind::Poisson,
            rate_hz: 5_000.0,
            time_scale: l.time_scale,
            seed: l.seed,
            max_active: l.max_active,
            queue_capacity: s.queue_capacity,
            batch_max: s.batch_max,
            batch_window_us: s.batch_window.as_micros() as u64,
            deadline_ms: s.admission_deadline.as_millis() as u64,
            shed_watermark: s.shed_watermark,
            ues: 5,
            scale_script: Vec::new(),
        }
    }
}

/// Parses `"at:shards,at:shards"` into scale-script steps.
fn parse_scale_script(value: &str) -> Result<Vec<(u64, usize)>, String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|step| {
            let (at, shards) =
                step.split_once(':').ok_or_else(|| format!("scale step {step:?}: expected at:shards"))?;
            let at: u64 = at.trim().parse().map_err(|e| format!("scale step {step:?}: {e}"))?;
            let shards: usize = shards.trim().parse().map_err(|e| format!("scale step {step:?}: {e}"))?;
            if shards == 0 {
                return Err(format!("scale step {step:?}: target must be at least one shard"));
            }
            Ok((at, shards))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag} {value}: {e}");
        match flag.as_str() {
            "--requests" => args.requests = value.parse().map_err(|e| bad(&e))?,
            "--shards" => args.shards = value.parse().map_err(|e| bad(&e))?,
            "--process" => {
                args.process_kind = match value.as_str() {
                    "poisson" => ProcessKind::Poisson,
                    "periodic" => ProcessKind::Periodic,
                    "bursty" => ProcessKind::Bursty,
                    other => return Err(format!("--process {other}: expected poisson|periodic|bursty")),
                }
            }
            "--rate-hz" => args.rate_hz = value.parse().map_err(|e| bad(&e))?,
            "--time-scale" => args.time_scale = value.parse().map_err(|e| bad(&e))?,
            "--seed" => args.seed = value.parse().map_err(|e| bad(&e))?,
            "--max-active" => args.max_active = value.parse().map_err(|e| bad(&e))?,
            "--queue-capacity" => args.queue_capacity = value.parse().map_err(|e| bad(&e))?,
            "--batch-max" => args.batch_max = value.parse().map_err(|e| bad(&e))?,
            "--batch-window-us" => args.batch_window_us = value.parse().map_err(|e| bad(&e))?,
            "--deadline-ms" => args.deadline_ms = value.parse().map_err(|e| bad(&e))?,
            "--shed-watermark" => args.shed_watermark = value.parse().map_err(|e| bad(&e))?,
            "--ues" => args.ues = value.parse().map_err(|e| bad(&e))?,
            "--scale-script" => args.scale_script = parse_scale_script(&value)?,
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let process = match args.process_kind {
        ProcessKind::Poisson => ArrivalProcess::Poisson { rate_hz: args.rate_hz },
        ProcessKind::Periodic => ArrivalProcess::Periodic { rate_hz: args.rate_hz },
        // A 10:1 burst with phase lengths chosen so the mean matches
        // --rate-hz: calm at rate/2, burst at 5x rate, 10% burst duty.
        ProcessKind::Bursty => ArrivalProcess::Bursty {
            calm_rate_hz: args.rate_hz * 0.5,
            burst_rate_hz: args.rate_hz * 5.0,
            mean_calm_s: 0.09,
            mean_burst_s: 0.01,
        },
    };
    let service_config = ServiceConfig {
        shards: args.shards,
        queue_capacity: args.queue_capacity,
        batch_max: args.batch_max,
        batch_window: Duration::from_micros(args.batch_window_us),
        admission_deadline: Duration::from_millis(args.deadline_ms),
        shed_watermark: args.shed_watermark,
        ..ServiceConfig::default()
    };
    if let Err(e) = service_config.validate() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    let cfg = LoadgenConfig {
        requests: args.requests,
        process,
        seed: args.seed,
        max_active: args.max_active,
        time_scale: args.time_scale,
    };

    let scenario = small_scenario(args.ues);
    let report = loadgen::run_scripted(service_config, cfg, &args.scale_script, &scenario.instance);
    println!("{report}");

    if !report.is_conserved() {
        eprintln!("error: conservation violated — a request was lost or double-counted");
        return ExitCode::FAILURE;
    }
    // Per-shard budget partitions are only meaningful on a fixed
    // topology: a reshard adopts in-flight tasks that may transiently
    // exceed the new partition, so the check is skipped when scripted.
    if args.scale_script.is_empty() && !report.drain.within_budgets() {
        eprintln!("error: a shard exceeded its budget partition");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! Property tests for the consistent-hash router's scaling contract:
//! growing the ring by one shard must leave the overwhelming majority of
//! task-to-shard assignments untouched (the property that makes elastic
//! scaling cheap), and the keys that *do* move may only move to the new
//! shard — consistent hashing never shuffles keys between old shards.

use offloadnn_core::task::TaskId;
use offloadnn_serve::Router;
use proptest::prelude::*;

/// Ids probed per case: large enough that per-shard expectations are in
/// the hundreds even at the biggest shard count drawn below.
const KEYS: u32 = 4_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adding shard `n` to an `n`-shard ring only *adds* ring points, so
    /// a key whose owner changes must be owned by the new shard — and the
    /// moved fraction stays near the ideal `1/(n+1)`.
    fn adding_a_shard_remaps_only_a_bounded_fraction_and_only_to_the_new_shard(
        shards in 1usize..9,
        virtual_nodes in 1usize..129,
    ) {
        let before = Router::new(shards, virtual_nodes);
        let after = Router::new(shards + 1, virtual_nodes);

        let mut moved = 0u32;
        for i in 0..KEYS {
            let (b, a) = (before.route(TaskId(i)), after.route(TaskId(i)));
            if b != a {
                prop_assert_eq!(
                    a, shards,
                    "key {} moved from shard {} to old shard {} — \
                     consistent hashing may only remap onto the new shard",
                    i, b, a
                );
                moved += 1;
            }
        }

        // Expectation is KEYS/(shards+1); few virtual nodes make the arc
        // lengths lumpy, so allow a wide (but still "minority") envelope.
        let frac = f64::from(moved) / f64::from(KEYS);
        let ideal = 1.0 / (shards + 1) as f64;
        prop_assert!(
            frac <= (3.0 * ideal).min(0.75),
            "remapped {:.1}% of keys (ideal {:.1}%) going {} -> {} shards with {} vnodes",
            100.0 * frac, 100.0 * ideal, shards, shards + 1, virtual_nodes
        );
    }

    /// The elastic-reshard contract for *arbitrary* jumps, not just +1:
    /// rerouting from `old_n` to `new_n` shards moves at most the ideal
    /// `|new_n - old_n| / max(old_n, new_n)` fraction of the keyspace,
    /// plus slack for the finite virtual-node resolution. This is the
    /// bound `Service::scale_to` relies on to keep migration cheap.
    fn arbitrary_rescale_moves_a_bounded_fraction(
        old_n in 1usize..11,
        new_n in 1usize..11,
        virtual_nodes in 16usize..129,
    ) {
        prop_assume!(old_n != new_n);
        let before = Router::new(old_n, virtual_nodes);
        let after = Router::new(new_n, virtual_nodes);

        let moved = (0..KEYS).filter(|&i| before.route(TaskId(i)) != after.route(TaskId(i))).count();
        let frac = moved as f64 / f64::from(KEYS);
        let ideal = old_n.abs_diff(new_n) as f64 / old_n.max(new_n) as f64;
        const EPSILON: f64 = 0.25;
        prop_assert!(
            frac <= ideal + EPSILON,
            "remapped {:.1}% of keys (ideal {:.1}% + ε {:.0}%) going {} -> {} shards with {} vnodes",
            100.0 * frac, 100.0 * ideal, 100.0 * EPSILON, old_n, new_n, virtual_nodes
        );
    }

    /// Scaling *down* removes ring points belonging only to the retired
    /// shards, so a key owned by a surviving shard must keep its owner:
    /// unchanged shards never gain keys they did not already own, and
    /// every key that does move belonged to a retired shard.
    fn scaling_down_never_remaps_keys_between_survivors(
        old_n in 2usize..11,
        new_n in 1usize..10,
        virtual_nodes in 1usize..129,
    ) {
        prop_assume!(new_n < old_n);
        let before = Router::new(old_n, virtual_nodes);
        let after = Router::new(new_n, virtual_nodes);

        for i in 0..KEYS {
            let (b, a) = (before.route(TaskId(i)), after.route(TaskId(i)));
            prop_assert!(a < new_n, "key {} routed to retired shard {}", i, a);
            if b < new_n {
                prop_assert_eq!(
                    a, b,
                    "key {} moved from surviving shard {} to {} on a {} -> {} shrink — \
                     survivors' keyspaces must be untouched",
                    i, b, a, old_n, new_n
                );
            }
        }
    }

    /// Doubling the virtual-node count must not break determinism or
    /// range: every key routes into `0..shards` identically across calls.
    fn routing_stays_deterministic_and_in_range(
        shards in 1usize..9,
        virtual_nodes in 1usize..129,
        probe in 0u32..100_000,
    ) {
        let r = Router::new(shards, virtual_nodes);
        let s = r.route(TaskId(probe));
        prop_assert!(s < shards);
        prop_assert_eq!(s, r.route(TaskId(probe)));
    }
}

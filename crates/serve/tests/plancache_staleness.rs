//! Staleness harness: every event that can make a memoized plan wrong —
//! TTL expiry (positive and the shorter negative TTL), capacity
//! eviction, reshard/repartition generation bumps, and chaos-healed
//! respawns — must force the serving stack back to a fresh solve. Each
//! test drives the real `Service` (sequential submit → wait, so counter
//! reads are race-free) and asserts on the plan-cache statistics plus
//! the solver-round counter.

use offloadnn_core::scenario::{small_scenario, Scenario};
use offloadnn_core::task::{Task, TaskId};
use offloadnn_plancache::{PlanCacheConfig, PlanCacheStats};
use offloadnn_serve::{ChaosConfig, Outcome, Service, ServiceConfig};
use std::collections::VecDeque;
use std::time::Duration;

fn config(shards: usize, plan_cache: PlanCacheConfig) -> ServiceConfig {
    ServiceConfig {
        shards,
        batch_max: 1,
        batch_window: Duration::from_micros(50),
        queue_capacity: 256,
        shed_watermark: 256,
        admission_deadline: Duration::from_secs(30),
        plan_cache: Some(plan_cache),
        ..ServiceConfig::default()
    }
}

/// A shape the solver always rejects: the request rate is inflated until
/// the compute cost of admitting any fraction exceeds its utility.
/// Rejections leave the ledger untouched, so repeat submissions replay
/// the negative entry deterministically.
fn infeasible_task(scenario: &Scenario, id: u32, variant: u64) -> Task {
    let mut task = scenario.instance.tasks[0].clone();
    task.id = TaskId(id);
    task.request_rate *= 1.0e6 + variant as f64;
    task
}

fn submit_wait(service: &Service, task: Task, proto: usize, scenario: &Scenario) -> Outcome {
    service
        .submit(task, scenario.instance.options[proto].clone())
        .expect("not draining")
        .wait()
        .expect("worker resolves everything")
}

fn stats(service: &Service) -> PlanCacheStats {
    service.plan_cache_stats().expect("plan cache configured")
}

#[test]
fn positive_ttl_expiry_forces_a_fresh_solve() {
    let scenario = small_scenario(3);
    let pc = PlanCacheConfig {
        ttl: Duration::from_millis(300),
        negative_ttl: Duration::from_millis(40),
        ..PlanCacheConfig::default()
    };
    let service = Service::start(config(1, pc), &scenario.instance).expect("service start");

    // Warm: one repeated shape against a slack ledger replays its plan.
    let mut active: VecDeque<TaskId> = VecDeque::new();
    for i in 0..20u32 {
        let mut task = scenario.instance.tasks[0].clone();
        task.id = TaskId(i);
        if submit_wait(&service, task, 0, &scenario).is_admitted() {
            active.push_back(TaskId(i));
        }
        while active.len() > 4 {
            service.depart(active.pop_front().expect("non-empty"));
        }
    }
    let warm = stats(&service);
    assert!(warm.hits > 0, "warm phase never hit: {warm:?}");

    // Sit out the TTL; the resident plan must now be discarded and the
    // next request for the shape must pay for a solver round again.
    std::thread::sleep(Duration::from_millis(400));
    let rounds_before = service.metrics().solver_rounds;
    let mut task = scenario.instance.tasks[0].clone();
    task.id = TaskId(1000);
    submit_wait(&service, task, 0, &scenario);
    let after = stats(&service);
    assert!(after.expirations > warm.expirations, "TTL never expired the entry: {warm:?} -> {after:?}");
    assert!(service.metrics().solver_rounds > rounds_before, "expiry did not re-solve");
    assert!(service.drain().metrics.is_conserved());
}

#[test]
fn negative_ttl_expires_rejections_sooner_than_plans() {
    let scenario = small_scenario(3);
    let pc = PlanCacheConfig {
        ttl: Duration::from_millis(300),
        negative_ttl: Duration::from_millis(40),
        ..PlanCacheConfig::default()
    };
    let service = Service::start(config(1, pc), &scenario.instance).expect("service start");

    // One admitted shape (minted under the long TTL), then a rejected
    // one (minted under the short negative TTL).
    let mut task = scenario.instance.tasks[0].clone();
    task.id = TaskId(0);
    assert!(submit_wait(&service, task, 0, &scenario).is_admitted());
    assert!(!submit_wait(&service, infeasible_task(&scenario, 1, 0), 0, &scenario).is_admitted());

    // An immediate repeat replays the rejection (the ledger has not
    // moved since the rejection was minted).
    assert!(!submit_wait(&service, infeasible_task(&scenario, 2, 0), 0, &scenario).is_admitted());
    let mid = stats(&service);
    assert!(mid.negative_hits > 0, "rejection was not replayed: {mid:?}");

    // Wait past the negative TTL but well inside the positive one.
    std::thread::sleep(Duration::from_millis(80));
    assert!(!submit_wait(&service, infeasible_task(&scenario, 3, 0), 0, &scenario).is_admitted());
    let late = stats(&service);
    assert!(late.expirations > mid.expirations, "negative entry outlived its TTL: {mid:?} -> {late:?}");

    // The positive plan from the same window is still alive and replays.
    let mut task = scenario.instance.tasks[0].clone();
    task.id = TaskId(4);
    submit_wait(&service, task, 0, &scenario);
    let end = stats(&service);
    assert!(end.hits > mid.hits, "positive entry should have survived the short sleep: {end:?}");
    assert!(service.drain().metrics.is_conserved());
}

#[test]
fn eviction_under_capacity_pressure_forces_fresh_solves() {
    let scenario = small_scenario(3);
    let pc = PlanCacheConfig { capacity: 4, shards: 1, ..PlanCacheConfig::default() };
    let service = Service::start(config(1, pc), &scenario.instance).expect("service start");

    // Twelve distinct always-rejected shapes through a 4-slot cache:
    // the early entries must be evicted.
    for k in 0..12u32 {
        assert!(!submit_wait(&service, infeasible_task(&scenario, k, k as u64), 0, &scenario).is_admitted());
    }
    let filled = stats(&service);
    assert!(filled.evictions > 0, "12 inserts through 4 slots evicted nothing: {filled:?}");

    // The first shape is long evicted: resubmitting it is a miss and a
    // fresh solve, not a replay.
    let rounds_before = service.metrics().solver_rounds;
    assert!(!submit_wait(&service, infeasible_task(&scenario, 100, 0), 0, &scenario).is_admitted());
    let after = stats(&service);
    assert_eq!(
        after.hits + after.negative_hits,
        filled.hits + filled.negative_hits,
        "an evicted entry must not hit: {filled:?} -> {after:?}"
    );
    assert!(after.misses > filled.misses);
    assert!(service.metrics().solver_rounds > rounds_before);
    assert!(service.drain().metrics.is_conserved());
}

#[test]
fn reshard_and_repartition_force_fresh_solves() {
    let scenario = small_scenario(3);
    let service = Service::start(config(2, PlanCacheConfig::default()), &scenario.instance).expect("start");

    // Warm a negative entry and confirm it replays. The ids are pinned
    // to one shard: a rejection stamped by one shard's ledger never
    // replays on the other (each shard rejects against its own budget
    // partition), so cross-shard ids would re-solve instead of hitting.
    let router = service.router();
    let pinned: Vec<u32> = (0..200u32).filter(|&id| router.route(TaskId(id)) == 0).take(4).collect();
    assert!(pinned.len() >= 3, "ring mapped fewer than 3 of 200 ids to shard 0");
    for &id in &pinned {
        assert!(!submit_wait(&service, infeasible_task(&scenario, id, 0), 0, &scenario).is_admitted());
    }
    let warm = stats(&service);
    assert!(warm.negative_hits > 0, "warm phase never replayed: {warm:?}");

    // Scale out: the ring generation changes (and the epoch is bumped),
    // so the warmed shape must be solved fresh under its new key.
    service.scale_to(3).expect("scale out");
    let rounds_before = service.metrics().solver_rounds;
    assert!(!submit_wait(&service, infeasible_task(&scenario, 100, 0), 0, &scenario).is_admitted());
    let after_out = stats(&service);
    assert_eq!(
        after_out.hits + after_out.negative_hits,
        warm.hits + warm.negative_hits,
        "a reshard must not leave replayable entries: {warm:?} -> {after_out:?}"
    );
    assert!(after_out.misses > warm.misses);
    assert!(service.metrics().solver_rounds > rounds_before, "reshard did not re-solve");

    // Scale back in: a repartition to fewer, larger budget slices —
    // again no replay of anything minted before.
    service.scale_to(1).expect("scale in");
    let before_in = stats(&service);
    assert!(!submit_wait(&service, infeasible_task(&scenario, 101, 0), 0, &scenario).is_admitted());
    let after_in = stats(&service);
    assert_eq!(
        after_in.hits + after_in.negative_hits,
        before_in.hits + before_in.negative_hits,
        "a repartition must not leave replayable entries: {before_in:?} -> {after_in:?}"
    );
    assert!(service.drain().metrics.is_conserved());
}

#[test]
fn chaos_heal_forces_fresh_solves() {
    let scenario = small_scenario(3);
    let mut cfg = config(2, PlanCacheConfig::default());
    cfg.chaos = ChaosConfig { panic_shard_at_round: Some((1, 3)), slow_solver: Duration::ZERO };
    let service = Service::start(cfg, &scenario.instance).expect("service start");

    // Drive traffic until shard 1 panics (its stranded tickets resolve
    // `None`; everything else resolves normally).
    let mut lost = 0u64;
    for i in 0..200u32 {
        let proto = i as usize % scenario.instance.tasks.len();
        let mut task = scenario.instance.tasks[proto].clone();
        task.id = TaskId(i);
        let ticket = service.submit(task, scenario.instance.options[proto].clone()).expect("not draining");
        if ticket.wait().is_none() {
            lost += 1;
        }
    }
    assert!(lost > 0, "chaos round was never reached");

    // Heal: a topology change respawns the dead worker (a same-count
    // scale_to is a no-op), bumps the generation and the cache epoch —
    // nothing minted before the panic may replay afterwards.
    service.scale_to(3).expect("heal");
    let healed = stats(&service);
    let rounds_before = service.metrics().solver_rounds;
    // Two post-heal submissions of one never-seen shape, pinned to the
    // same shard of the new ring: the first must pay for a fresh solve,
    // the second replays the freshly minted rejection — proving the
    // cache works again after the respawn.
    let router = service.router();
    let pinned: Vec<u32> = (10_000..10_200u32)
        .filter(|&id| router.route(TaskId(id)) == router.route(TaskId(10_000)))
        .take(2)
        .collect();
    assert_eq!(pinned.len(), 2);
    for &id in &pinned {
        assert!(!submit_wait(&service, infeasible_task(&scenario, id, 0), 0, &scenario).is_admitted());
    }
    let after = stats(&service);
    assert!(service.metrics().solver_rounds > rounds_before, "post-heal solve did not happen");
    assert!(
        after.negative_hits > healed.negative_hits,
        "post-heal entries must be replayable again: {healed:?} -> {after:?}"
    );
    let drain = service.drain();
    assert_eq!(drain.lost_shards, 0, "heal already replaced the dead worker");
}

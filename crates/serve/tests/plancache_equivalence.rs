//! Cached-equals-fresh equivalence, in three layers:
//!
//! 1. The *state equivalence property* the ISSUE pins: for the same
//!    (shape, ledger) state, applying a cached plan through the hit path
//!    produces the same outcome and the same budget deltas as a cold
//!    solve. Driven over random Zipf streams with interleaved
//!    departures, with every plan round-tripped through a real
//!    [`PlanCache`] so storage fidelity is part of the proof.
//! 2. A twin-service run over an identical stream asserting the
//!    system-level invariants that survive ledger drift: conservation on
//!    both twins, budget-safety on both twins, and the cached twin
//!    solving no more rounds than the fresh one while actually hitting.
//! 3. A bitwise twin comparison in the stable full-admission regime
//!    (one repeated shape, slack ledger), where replays are exact.
//!
//! The fixed seeds run everywhere; `PLANCACHE_SEED=<u64>` adds one more
//! so CI can fuzz fresh streams (`ci.sh` runs a fixed and a random one).

use offloadnn_core::controller::{AdmissionRequest, Controller};
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_plancache::{
    budget_bucket, shape_fingerprint, CachedPlan, PlanCache, PlanCacheConfig, PlanKey,
};
use offloadnn_serve::{Service, ServiceConfig, ShapePool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::time::Duration;

/// Fixed seeds plus an optional CI-supplied one.
fn seeds() -> Vec<u64> {
    let mut seeds = vec![7, 0x0FF1_0AD0];
    if let Ok(raw) = std::env::var("PLANCACHE_SEED") {
        match raw.trim().parse::<u64>() {
            Ok(seed) => seeds.push(seed),
            Err(_) => panic!("PLANCACHE_SEED must be a u64, got {raw:?}"),
        }
    }
    seeds
}

/// The core property: at every reachable ledger state along a random
/// stream, a cold solve on a cloned controller and a cache-path replay
/// on the live controller produce bit-identical outcomes and budget
/// deltas. Plans travel through a real cache (insert → lookup → apply),
/// so fingerprint collisions or value corruption would also fail here.
fn run_state_equivalence(seed: u64, requests: u32) {
    let scenario = small_scenario(5);
    let cache: PlanCache<CachedPlan> = PlanCache::new(PlanCacheConfig::default());
    let mut live = Controller::new(&scenario.instance, OffloadnnSolver::new());
    let pool = ShapePool::new(16, 1.2, scenario.instance.tasks.len(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: VecDeque<TaskId> = VecDeque::new();
    let mut replayed = 0u32;

    for i in 0..requests {
        let (proto, priority_factor, rate_factor) = pool.draw(&mut rng);
        let mut task = scenario.instance.tasks[proto].clone();
        task.id = TaskId(i);
        task.priority = (task.priority * priority_factor).clamp(0.05, 1.0);
        task.request_rate *= rate_factor;
        let options = scenario.instance.options[proto].clone();

        // Cold solve at the current state, on a clone.
        let mut cold = live.clone();
        let outcome = cold
            .submit(vec![AdmissionRequest { task: task.clone(), options: options.clone() }])
            .expect("cold solve");

        if let Some(grant) = outcome.admitted.first() {
            // Round-trip the plan through the cache, then replay the
            // *looked-up* value on the live twin at the same state.
            let option = options.iter().position(|o| o == &grant.option).expect("granted option exists");
            let key = PlanKey {
                shape: shape_fingerprint(&task, &options),
                bucket: budget_bucket(&live.snapshot().headroom, &scenario.instance.budgets),
                generation: 0,
            };
            cache.insert(
                key,
                CachedPlan::Admit { option, admission: grant.admission, rbs: grant.rbs },
                false,
            );
            let cached = cache.lookup(&key).expect("just inserted").value;
            let CachedPlan::Admit { option, admission, rbs } = cached else {
                panic!("positive insert came back negative")
            };
            let applied = live
                .try_apply_plan(task.clone(), &options, option, admission, rbs)
                .expect("a plan solved at this exact state must re-validate (request {i}, seed {seed})");
            assert_eq!(&applied, grant, "replayed grant diverged (request {i}, seed {seed})");
            active.push_back(TaskId(i));
            replayed += 1;
        } else {
            // Rejected: the live twin cold-solves the same request and
            // must reject it too (deterministic solver, same state).
            let mirrored = live.submit(vec![AdmissionRequest { task, options }]).expect("mirror solve");
            assert!(
                mirrored.admitted.is_empty(),
                "live twin admitted a shape the clone rejected (request {i}, seed {seed})"
            );
        }

        // Identical budget deltas: the ledgers must agree exactly.
        let (a, b) = (live.snapshot(), cold.snapshot());
        assert_eq!(a, b, "ledger diverged after request {i} (seed {seed})");

        // Departures churn the ledger so the property is checked across
        // many distinct states, not just the monotone fill-up.
        while active.len() > 10 {
            let oldest = active.pop_front().expect("non-empty");
            live.release(&[oldest]);
        }
    }
    assert!(replayed > 0, "stream never exercised the replay path (seed {seed})");
}

#[test]
fn cache_hit_equals_cold_solve_at_same_state() {
    for seed in seeds() {
        run_state_equivalence(seed, 300);
    }
}

fn twin_config(plan_cache: Option<PlanCacheConfig>) -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        batch_max: 1,
        batch_window: Duration::from_micros(50),
        queue_capacity: 64,
        shed_watermark: 64,
        admission_deadline: Duration::from_secs(30),
        plan_cache,
        ..ServiceConfig::default()
    }
}

/// System-level invariants over an identical stream: both twins conserve
/// every request and stay within budget, and the cached twin pays for no
/// more solver rounds than the fresh one while actually serving hits.
#[test]
fn cached_twin_conserves_and_solves_less() {
    for seed in seeds() {
        let scenario = small_scenario(5);
        let cached = Service::start(twin_config(Some(PlanCacheConfig::default())), &scenario.instance)
            .expect("cached service start");
        let fresh = Service::start(twin_config(None), &scenario.instance).expect("fresh service start");

        let pool = ShapePool::new(16, 1.2, scenario.instance.tasks.len(), seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut active: VecDeque<TaskId> = VecDeque::new();
        for i in 0..400u32 {
            let (proto, priority_factor, rate_factor) = pool.draw(&mut rng);
            let mut task = scenario.instance.tasks[proto].clone();
            task.id = TaskId(i);
            task.priority = (task.priority * priority_factor).clamp(0.05, 1.0);
            task.request_rate *= rate_factor;
            let options = scenario.instance.options[proto].clone();

            let verdict = cached
                .submit(task.clone(), options.clone())
                .expect("cached submit")
                .wait()
                .expect("cached verdict");
            fresh.submit(task, options).expect("fresh submit").wait().expect("fresh verdict");

            if verdict.is_admitted() {
                active.push_back(TaskId(i));
            }
            while active.len() > 12 {
                let oldest = active.pop_front().expect("non-empty");
                cached.depart(oldest);
                fresh.depart(oldest);
            }
        }

        let stats = cached.plan_cache_stats().expect("plan cache configured");
        assert!(
            stats.hits + stats.negative_hits > 0,
            "twin run never hit the cache (seed {seed}): {stats:?}"
        );

        let report_cached = cached.drain();
        let report_fresh = fresh.drain();
        assert!(report_cached.metrics.is_conserved(), "cached twin lost a request (seed {seed})");
        assert!(report_fresh.metrics.is_conserved(), "fresh twin lost a request (seed {seed})");
        assert!(report_cached.within_budgets(), "cached twin exceeded a budget (seed {seed})");
        assert!(report_fresh.within_budgets(), "fresh twin exceeded a budget (seed {seed})");
        assert!(
            report_cached.metrics.solver_rounds <= report_fresh.metrics.solver_rounds,
            "the cache made the solver work harder (seed {seed}): {} > {}",
            report_cached.metrics.solver_rounds,
            report_fresh.metrics.solver_rounds
        );
    }
}

/// Bitwise twin equality in the stable regime: one repeated shape
/// against a slack ledger stays in the full-admission corner, where a
/// validated replay is exactly what a fresh solve grants — so every
/// verdict and the final ledger must match bit-for-bit.
#[test]
fn hot_single_shape_stream_matches_cold_solve() {
    for proto in 0..3usize {
        let scenario = small_scenario(3);
        let cached = Service::start(twin_config(Some(PlanCacheConfig::default())), &scenario.instance)
            .expect("cached service start");
        let fresh = Service::start(twin_config(None), &scenario.instance).expect("fresh service start");

        let mut active: VecDeque<TaskId> = VecDeque::new();
        for i in 0..200u32 {
            let mut task = scenario.instance.tasks[proto].clone();
            task.id = TaskId(i);
            let options = scenario.instance.options[proto].clone();

            let verdict_cached = cached
                .submit(task.clone(), options.clone())
                .expect("cached submit")
                .wait()
                .expect("cached verdict");
            let verdict_fresh =
                fresh.submit(task, options).expect("fresh submit").wait().expect("fresh verdict");
            assert_eq!(verdict_cached, verdict_fresh, "verdict diverged at request {i} (proto {proto})");

            if verdict_cached.is_admitted() {
                active.push_back(TaskId(i));
            }
            // A small active cap keeps the ledger slack, pinning the
            // stream to the regime where replays are provably exact.
            while active.len() > 6 {
                let oldest = active.pop_front().expect("non-empty");
                cached.depart(oldest);
                fresh.depart(oldest);
            }
        }

        let report_cached = cached.drain();
        let report_fresh = fresh.drain();
        for (a, b) in report_cached.shards.iter().zip(report_fresh.shards.iter()) {
            assert_eq!(a.snapshot, b.snapshot, "ledger diverged on shard {} (proto {proto})", a.shard);
        }
    }
}

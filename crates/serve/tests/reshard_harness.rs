//! Deterministic reshard/chaos harness: a seeded driver interleaves
//! submits, departures and live `scale_to` calls against a real
//! [`Service`], checking the conservation invariant and the
//! bounded-remap property after *every* step, and producing an op trace
//! that is bit-identical for the same seed (the determinism test runs
//! the driver twice and diffs).
//!
//! Determinism comes from quiescence, not from mocking: the driver
//! resolves every ticket before the next op and spins until departures
//! are processed, so each admission decision is a pure function of the
//! op history. The service itself runs its real worker threads.
//!
//! Seed control: `RESHARD_SEED=<u64>` overrides the default seed; the
//! chosen seed is echoed to stderr so any CI failure is reproducible
//! with `RESHARD_SEED=<printed> cargo test -p offloadnn-serve --test
//! reshard_harness`.

use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_serve::{ChaosConfig, Outcome, Service, ServiceConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::{Duration, Instant};

/// Ops the randomized driver performs (the acceptance floor is 1000).
const DRIVER_OPS: usize = 1200;
/// Task-id sample for the bounded-remap probe at each scale step.
const REMAP_KEYS: u32 = 4000;
/// Slack over the ideal `|Δn| / max(old, new)` moved fraction (the ring
/// uses finitely many virtual nodes, so partitions are not exact).
const REMAP_EPSILON: f64 = 0.20;

fn harness_seed() -> u64 {
    match std::env::var("RESHARD_SEED") {
        Ok(s) => s.trim().parse().expect("RESHARD_SEED must parse as u64"),
        Err(_) => 0x0FF1_0AD5,
    }
}

/// Quiescent, deterministic service shape: one request per solver round
/// (no batching races), no expiry, no shedding pressure.
fn harness_config(shards: usize) -> ServiceConfig {
    ServiceConfig {
        shards,
        queue_capacity: 4096,
        batch_max: 1,
        batch_window: Duration::from_micros(1),
        admission_deadline: Duration::from_secs(3600),
        shed_watermark: 4096,
        virtual_nodes: 64,
        chaos: ChaosConfig::default(),
        plan_cache: None,
    }
}

/// Driver-side verdict ledger, independent of the service's counters.
#[derive(Default)]
struct Ledger {
    submitted: u64,
    admitted: u64,
    rejected: u64,
    shed: u64,
    expired: u64,
    departed: u64,
}

struct Driver {
    service: Service,
    rng: StdRng,
    next_id: u32,
    active: Vec<TaskId>,
    ledger: Ledger,
    trace: Vec<String>,
    tasks: Vec<offloadnn_core::task::Task>,
    options: Vec<Vec<offloadnn_core::instance::PathOption>>,
}

impl Driver {
    fn new(seed: u64, shards: usize) -> Self {
        let scenario = small_scenario(5);
        let service = Service::start(harness_config(shards), &scenario.instance).expect("service start");
        Self {
            service,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            active: Vec::new(),
            ledger: Ledger::default(),
            trace: Vec::new(),
            tasks: scenario.instance.tasks.clone(),
            options: scenario.instance.options.clone(),
        }
    }

    fn submit(&mut self, op: usize) {
        let proto = self.rng.random_range(0..self.tasks.len());
        let mut task = self.tasks[proto].clone();
        let id = TaskId(self.next_id);
        self.next_id += 1;
        task.id = id;
        let ticket = self.service.submit(task, self.options[proto].clone()).expect("not draining");
        self.ledger.submitted += 1;
        let outcome = ticket.wait().expect("no chaos: every ticket resolves");
        let line = match outcome {
            Outcome::Admitted { shard, .. } => {
                self.ledger.admitted += 1;
                self.active.push(id);
                format!("{op}: submit {} -> admitted@{shard}", id.0)
            }
            Outcome::Rejected { shard } => {
                self.ledger.rejected += 1;
                format!("{op}: submit {} -> rejected@{shard}", id.0)
            }
            Outcome::Shed { shard } => {
                self.ledger.shed += 1;
                format!("{op}: submit {} -> shed@{shard}", id.0)
            }
            Outcome::Expired { shard } => {
                self.ledger.expired += 1;
                format!("{op}: submit {} -> expired@{shard}", id.0)
            }
        };
        self.trace.push(line);
    }

    fn depart(&mut self, op: usize) {
        let idx = self.rng.random_range(0..self.active.len());
        let id = self.active.swap_remove(idx);
        self.service.depart(id);
        self.ledger.departed += 1;
        self.quiesce_departs();
        self.trace.push(format!("{op}: depart {}", id.0));
    }

    /// Spins until the service has processed every departure issued so
    /// far, so the next admission decision sees the freed capacity.
    fn quiesce_departs(&self) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.service.metrics().departed < self.ledger.departed {
            assert!(Instant::now() < deadline, "departure never processed: service wedged");
            std::thread::yield_now();
        }
    }

    fn scale(&mut self, op: usize) {
        let target = 1 + self.rng.random_range(0..8usize);
        let old_n = self.service.shards();
        let old_router = self.service.router();
        let report = self.service.scale_to(target).expect("scale_to succeeds");
        assert_eq!(report.from_shards, old_n);
        assert_eq!(report.to_shards, target);

        // Bounded remap: sampling a fixed keyspace through both rings,
        // the moved fraction must stay near the consistent-hashing ideal.
        if target != old_n {
            let new_router = self.service.router();
            let moved = (0..REMAP_KEYS)
                .filter(|&k| old_router.route(TaskId(k)) != new_router.route(TaskId(k)))
                .count();
            let frac = moved as f64 / REMAP_KEYS as f64;
            let ideal = (target.abs_diff(old_n)) as f64 / target.max(old_n) as f64;
            assert!(
                frac <= ideal + REMAP_EPSILON,
                "op {op}: remap {old_n} -> {target} moved {frac:.3} of keys, ideal {ideal:.3} + ε {REMAP_EPSILON}"
            );
        }
        self.trace.push(format!(
            "{op}: scale {old_n} -> {target} migrated={} gen={}",
            report.migrated, report.generation
        ));
    }

    /// Conservation and ledger agreement, checked after every op. The
    /// driver is quiescent here (all tickets resolved, departs drained),
    /// so the class-by-class comparison is exact, not racy.
    fn check(&self, op: usize) {
        let m = self.service.metrics();
        assert!(m.is_conserved(), "op {op}: conservation violated: {m}");
        assert_eq!(m.submitted, self.ledger.submitted, "op {op}: submitted drift");
        assert_eq!(m.admitted, self.ledger.admitted, "op {op}: admitted drift");
        assert_eq!(m.rejected, self.ledger.rejected, "op {op}: rejected drift");
        assert_eq!(m.shed, self.ledger.shed, "op {op}: shed drift");
        assert_eq!(m.expired, self.ledger.expired, "op {op}: expired drift");
        assert_eq!(m.departed, self.ledger.departed, "op {op}: departed drift");
    }

    fn step(&mut self, op: usize) {
        let roll = self.rng.random_range(0..100u32);
        if roll < 60 || (roll < 85 && self.active.is_empty()) {
            self.submit(op);
        } else if roll < 85 {
            self.depart(op);
        } else {
            self.scale(op);
        }
        self.check(op);
    }
}

/// Runs the seeded driver for `ops` steps and returns the op trace.
fn run_driver(seed: u64, ops: usize) -> Vec<String> {
    let mut driver = Driver::new(seed, 4);
    for op in 0..ops {
        driver.step(op);
    }
    let reshards = driver.service.metrics().reshards;
    let drain = driver.service.drain();
    assert!(drain.metrics.is_conserved(), "post-drain conservation: {}", drain.metrics);
    assert_eq!(drain.lost_shards, 0, "no chaos: every worker joins cleanly");
    assert_eq!(drain.metrics.reshards, reshards);
    let active_after_drain: u64 = drain.shards.iter().map(|s| s.snapshot.active_tasks as u64).sum();
    assert_eq!(
        active_after_drain,
        driver.ledger.admitted - driver.ledger.departed,
        "every admitted-not-departed task survives the reshard shuffle"
    );
    driver.trace
}

#[test]
fn seeded_driver_conserves_after_every_step() {
    let seed = harness_seed();
    eprintln!("reshard_harness seed = {seed} (override with RESHARD_SEED=<u64>)");
    let trace = run_driver(seed, DRIVER_OPS);
    assert_eq!(trace.len(), DRIVER_OPS);
    let scales = trace.iter().filter(|l| l.contains(": scale ")).count();
    assert!(scales >= 10, "seed {seed} exercised only {scales} reshards in {DRIVER_OPS} ops");
}

#[test]
fn same_seed_produces_identical_traces() {
    let seed = harness_seed() ^ 0xDE7E_1217;
    let a = run_driver(seed, 400);
    let b = run_driver(seed, 400);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x, y, "traces diverge at op {i}");
    }
    assert_eq!(a.len(), b.len());
}

#[test]
fn concurrent_scale_calls_serialize() {
    let scenario = small_scenario(5);
    let service = Service::start(harness_config(4), &scenario.instance).expect("service start");
    // Interleave submits with two racing scale_to calls: the reshard
    // lock serialises them, and neither loses a verdict.
    std::thread::scope(|scope| {
        let grow = scope.spawn(|| service.scale_to(8));
        let shrink = scope.spawn(|| service.scale_to(2));
        let mut tickets = Vec::new();
        for i in 0..200u32 {
            let mut task = scenario.instance.tasks[i as usize % scenario.instance.tasks.len()].clone();
            task.id = TaskId(i);
            let options = scenario.instance.options[i as usize % scenario.instance.options.len()].clone();
            tickets.push(service.submit(task, options).expect("not draining"));
        }
        for t in tickets {
            t.wait().expect("resolves through the double reshard");
        }
        let a = grow.join().expect("no panic").expect("grow succeeds");
        let b = shrink.join().expect("no panic").expect("shrink succeeds");
        // Both completed, in *some* serial order: generations 1 and 2.
        let mut gens = [a.generation, b.generation];
        gens.sort_unstable();
        assert_eq!(gens, [1, 2]);
    });
    assert_eq!(service.generation(), 2);
    let final_shards = service.shards();
    assert!(final_shards == 8 || final_shards == 2, "one of the two targets won: {final_shards}");
    let drain = service.drain();
    assert!(drain.metrics.is_conserved(), "{}", drain.metrics);
    assert_eq!(drain.metrics.reshards, 2);
    assert_eq!(drain.lost_shards, 0);
}

#[test]
fn scale_during_drain_is_refused() {
    let scenario = small_scenario(5);
    let service = Service::start(harness_config(3), &scenario.instance).expect("service start");
    service.begin_drain();
    assert!(
        matches!(service.scale_to(5), Err(offloadnn_serve::ServeError::Draining)),
        "resharding a draining fleet must be refused"
    );
    let drain = service.drain();
    assert!(drain.metrics.is_conserved());
    assert_eq!(drain.metrics.reshards, 0);
}

// ------------------------------------------------------------- chaos mode

/// A shard worker panics mid-stream. The rest of the fleet keeps
/// serving, submits racing the dead shard resolve (shed inline or lost
/// with the stranded queue — never hung), and `scale_to` self-heals the
/// fleet so post-heal traffic is clean again.
#[test]
fn chaos_panic_is_contained_and_healed_by_scale_to() {
    let scenario = small_scenario(5);
    let mut config = harness_config(4);
    config.chaos = ChaosConfig { panic_shard_at_round: Some((1, 5)), slow_solver: Duration::ZERO };
    let service = Service::start(config, &scenario.instance).expect("service start");

    // Each wave returns (resolved, lost): tickets either get a verdict
    // or resolve `None` when their shard's worker died — never hang.
    let submit_wave = |base: u32, count: u32| -> (u64, u64) {
        let mut tickets = Vec::new();
        for i in 0..count {
            let proto = (base + i) as usize % scenario.instance.tasks.len();
            let mut task = scenario.instance.tasks[proto].clone();
            task.id = TaskId(base + i);
            tickets
                .push(service.submit(task, scenario.instance.options[proto].clone()).expect("not draining"));
        }
        let mut resolved = 0u64;
        let mut lost = 0u64;
        for t in tickets {
            match t.wait() {
                Some(_) => resolved += 1,
                None => lost += 1,
            }
        }
        (resolved, lost)
    };

    // First wave: enough traffic that shard 1 reaches solver round 5 and
    // panics; its stranded tickets resolve `None`, everyone else's
    // resolve normally. No wait ever hangs.
    let (resolved, lost) = submit_wave(0, 400);
    assert!(lost > 0, "chaos round was never reached: shard 1 got fewer than 5 rounds");
    assert_eq!(resolved + lost, 400, "a ticket neither resolved nor was declared lost");

    // Heal: any topology change respawns the dead shard.
    let report = service.scale_to(3).expect("reshard heals the dead shard");
    assert_eq!(report.to_shards, 3);

    // Post-heal traffic is fully clean — nothing lost, nothing stranded.
    let (post_resolved, post_lost) = submit_wave(10_000, 200);
    assert_eq!(post_lost, 0, "healed fleet must not lose tickets");
    assert_eq!(post_resolved, 200);

    let drain = service.drain();
    // The panicked worker was already reaped by the healing reshard, so
    // the drain itself joins only healthy workers...
    assert_eq!(drain.lost_shards, 0, "heal already replaced the dead worker");
    // ...but the service-level counters keep the scar: the stranded
    // tickets were submitted and never got a verdict, so conservation is
    // (correctly, visibly) broken rather than papered over.
    assert!(!drain.metrics.is_conserved(), "lost tickets must show up as a conservation deficit");
    assert_eq!(
        drain.metrics.submitted - drain.metrics.resolved(),
        lost,
        "the conservation deficit is exactly the driver-observed lost tickets"
    );
}

/// A pathologically slow solver stretches rounds while a reshard runs:
/// verdicts still arrive, nothing is lost, and conservation holds.
#[test]
fn chaos_slow_solver_during_reshard_conserves() {
    let scenario = small_scenario(5);
    let mut config = harness_config(3);
    config.batch_max = 16; // let requests coalesce behind the slow rounds
    config.chaos = ChaosConfig { panic_shard_at_round: None, slow_solver: Duration::from_millis(2) };
    let service = Service::start(config, &scenario.instance).expect("service start");

    let mut tickets = Vec::new();
    for i in 0..150u32 {
        let proto = i as usize % scenario.instance.tasks.len();
        let mut task = scenario.instance.tasks[proto].clone();
        task.id = TaskId(i);
        tickets.push(service.submit(task, scenario.instance.options[proto].clone()).expect("not draining"));
        if i == 60 {
            service.scale_to(6).expect("grow mid-stream");
        }
        if i == 120 {
            service.scale_to(2).expect("shrink mid-stream");
        }
    }
    for t in tickets {
        t.wait().expect("slow is not dead: every ticket resolves");
    }
    let drain = service.drain();
    assert!(drain.metrics.is_conserved(), "{}", drain.metrics);
    assert_eq!(drain.metrics.submitted, 150);
    assert_eq!(drain.metrics.reshards, 2);
    assert_eq!(drain.lost_shards, 0);
}

//! Telemetry consistency under live resharding: registry and service
//! snapshots taken *concurrently* with `serve.reshard` spans must be
//! internally consistent at every instant — counters monotonic, the
//! generation gauge never behind the reshard counter by more than the
//! in-progress span, and the quiescent totals exact.
//!
//! The same test body runs in both telemetry builds: with the default
//! features the `serve.reshard` phase histogram and reshard events are
//! asserted too; with `offloadnn-telemetry/disabled` those are compiled
//! out (the span assertions degrade to "absent or empty") while the
//! service's own counters must keep working — metrics are load-bearing,
//! not observability garnish. CI runs it both ways.

use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_serve::{MetricsSnapshot, Service, ServiceConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn consistent_at_any_instant(m: &MetricsSnapshot) {
    assert!(
        m.resolved() <= m.submitted,
        "more verdicts than submissions: {} resolved, {} submitted",
        m.resolved(),
        m.submitted
    );
    assert!(m.departed <= m.admitted, "departures only ever follow admissions: {m:?}");
    // `scale_to` publishes the new generation first, then counts the
    // completed reshard — a sampler may observe the gap of the reshard
    // in progress, but never a counter ahead of the generation.
    assert!(
        m.reshards <= m.generation && m.generation <= m.reshards + 1,
        "generation {} vs reshards {}: drifted past the in-progress window",
        m.generation,
        m.reshards
    );
}

#[test]
fn snapshots_concurrent_with_reshard_spans_are_consistent() {
    let scenario = small_scenario(5);
    let config = ServiceConfig {
        shards: 4,
        batch_max: 8,
        batch_window: Duration::from_micros(200),
        ..ServiceConfig::default()
    };
    let service = Service::start(config, &scenario.instance).expect("service start");
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Sampler: hammers both snapshot surfaces while reshards run.
        let sampler = scope.spawn(|| {
            let mut samples = 0u64;
            let mut last_counters: Vec<(&'static str, u64)> = Vec::new();
            while !stop.load(Ordering::Acquire) {
                consistent_at_any_instant(&service.metrics());

                // The service's own registry holds the fleet's counters
                // (spans and events go to the global one).
                let registry = service.telemetry().snapshot();
                // Counters are monotonic between any two observations.
                for (name, value) in &registry.counters {
                    if let Some((_, prev)) = last_counters.iter().find(|(n, _)| n == name) {
                        assert!(value >= prev, "counter {name} went backwards: {prev} -> {value}");
                    }
                }
                last_counters = registry.counters;
                samples += 1;
            }
            samples
        });

        // Load: a steady submit/depart stream across every reshard.
        let load = scope.spawn(|| {
            let mut admitted: Vec<TaskId> = Vec::new();
            for i in 0..600u32 {
                let proto = i as usize % scenario.instance.tasks.len();
                let mut task = scenario.instance.tasks[proto].clone();
                task.id = TaskId(i);
                let ticket =
                    service.submit(task, scenario.instance.options[proto].clone()).expect("not draining");
                if let Some(offloadnn_serve::Outcome::Admitted { .. }) = ticket.wait() {
                    admitted.push(TaskId(i));
                }
                if admitted.len() > 32 {
                    service.depart(admitted.remove(0));
                }
            }
        });

        // Reshard storm: grow, shrink, grow while the other two threads
        // observe and load the fleet.
        for &target in &[7usize, 2, 5, 3] {
            service.scale_to(target).expect("scale_to");
            std::thread::sleep(Duration::from_millis(5));
        }

        load.join().expect("load thread");
        stop.store(true, Ordering::Release);
        let samples = sampler.join().expect("sampler thread");
        assert!(samples > 0, "the sampler must actually have raced the reshards");
    });

    // Quiescent totals: the service counters and the shared registry
    // agree exactly, in every build flavor.
    let final_metrics = service.metrics();
    assert_eq!(final_metrics.reshards, 4);
    assert_eq!(final_metrics.generation, 4);
    let fleet = service.telemetry().snapshot();
    let counter = |name: &str| fleet.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
    assert_eq!(counter("serve.reshards"), Some(final_metrics.reshards));
    assert_eq!(counter("serve.migrated"), Some(final_metrics.migrated));

    // Spans and completion events record into the process-global
    // registry, gated on the telemetry build flavor.
    let registry = offloadnn_telemetry::global().snapshot();
    let reshard_phase = registry.phases.iter().find(|(n, _)| *n == "serve.reshard");
    if offloadnn_telemetry::enabled() {
        // Spans recorded one timing sample per completed reshard.
        let (_, hist) = reshard_phase.expect("serve.reshard phase histogram exists");
        assert_eq!(hist.count, final_metrics.reshards, "one serve.reshard span per reshard");
        assert!(
            registry.events.iter().any(|e| e.message.contains("resharded")),
            "reshard completion events are retained"
        );
    } else if let Some((_, hist)) = reshard_phase {
        assert_eq!(hist.count, 0, "disabled builds must not record span timings");
    }

    let drain = service.drain();
    assert!(drain.metrics.is_conserved(), "{}", drain.metrics);
    consistent_at_any_instant(&drain.metrics);
    assert_eq!(drain.lost_shards, 0);
}

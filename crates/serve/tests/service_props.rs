//! Property tests for the service runtime's two core invariants:
//!
//! 1. **Conservation** — every submitted request ends in exactly one of
//!    {admitted, rejected, shed, expired}; no ticket is lost and no
//!    verdict is double-counted, across randomized shard counts, queue
//!    bounds, batch shapes, deadlines and request mixes.
//! 2. **Partition isolation** — no shard's observed resource usage ever
//!    exceeds its partition of the edge [`Budgets`].
//!
//! The randomized configurations deliberately include pathological
//! shapes (queue capacity 1, tiny deadlines, shed watermark below the
//! batch size) so the shedding and expiry paths are exercised, not just
//! the happy path.

use offloadnn_core::instance::Budgets;
use offloadnn_core::scenario::small_scenario;
use offloadnn_radio::ArrivalProcess;
use offloadnn_serve::{loadgen, LoadgenConfig, LoadgenReport, ServiceConfig};
use proptest::prelude::*;
use std::time::Duration;

/// Drawn service + load shape for one randomized closed loop over the
/// 5-UE reference scenario — deliberately spans calm and hostile
/// configurations.
struct Shape {
    shards: usize,
    requests: u64,
    queue_capacity: usize,
    batch_max: usize,
    window_us: u64,
    deadline_us: u64,
    shed_watermark: usize,
    max_active: usize,
    seed: u64,
}

fn run_randomized(shape: Shape) -> LoadgenReport {
    let service_config = ServiceConfig {
        shards: shape.shards,
        queue_capacity: shape.queue_capacity,
        batch_max: shape.batch_max,
        batch_window: Duration::from_micros(shape.window_us),
        admission_deadline: Duration::from_micros(shape.deadline_us),
        shed_watermark: shape.shed_watermark,
        virtual_nodes: 16,
        chaos: Default::default(),
        plan_cache: None,
    };
    let cfg = LoadgenConfig {
        requests: shape.requests,
        process: ArrivalProcess::Poisson { rate_hz: 50_000.0 },
        seed: shape.seed,
        max_active: shape.max_active,
        time_scale: 0.0,
        ..LoadgenConfig::default()
    };
    let scenario = small_scenario(5);
    loadgen::run(service_config, cfg, &scenario.instance)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: submitted = admitted + rejected + shed + expired,
    /// the ticket-side tally agrees with the service's own counters and
    /// nothing is lost — under arbitrary (including hostile) tunings.
    fn every_request_ends_in_exactly_one_verdict(
        shards in 1usize..7,
        requests in 1u64..150,
        queue_capacity in 1usize..64,
        batch_max in 1usize..33,
        window_us in 1u64..2_000,
        deadline_sel in 0u8..3,
        shed_watermark in 1usize..64,
        max_active in 1usize..33,
        seed in 0u64..1_000_000,
    ) {
        // Three deadline regimes: near-certain expiry, racy, generous.
        let deadline_us = match deadline_sel { 0 => 1, 1 => 500, _ => 5_000_000 };
        let report = run_randomized(Shape {
            shards, requests, queue_capacity, batch_max, window_us,
            deadline_us, shed_watermark, max_active, seed,
        });
        prop_assert_eq!(report.tally.lost, 0);
        prop_assert_eq!(report.tally.resolved(), requests);
        prop_assert!(report.is_conserved(), "conservation violated:\n{}", report);
    }

    /// Partition isolation: every shard's peak RB / compute / memory
    /// usage stays within its share of the edge budgets, and the
    /// partitions themselves add up to the whole.
    fn shard_usage_never_exceeds_its_budget_partition(
        shards in 1usize..7,
        requests in 1u64..150,
        batch_max in 1usize..33,
        max_active in 1usize..17,
        seed in 0u64..1_000_000,
    ) {
        let report = run_randomized(Shape {
            shards,
            requests,
            queue_capacity: 64,
            batch_max,
            window_us: 500,
            deadline_us: 5_000_000,
            shed_watermark: 48,
            max_active,
            seed,
        });
        let total = small_scenario(5).instance.budgets;
        let mut sum = Budgets { rbs: 0.0, compute_seconds: 0.0, training_seconds: 0.0, memory_bytes: 0.0 };
        for shard in &report.drain.shards {
            prop_assert!(
                shard.within_budgets(),
                "shard {} exceeded its partition: peaks ({:.3} RBs, {:.4} GPU-s/s, {:.0} B) vs ({:.3}, {:.4}, {:.0})",
                shard.shard, shard.peak_rbs, shard.peak_compute, shard.peak_memory,
                shard.budgets.rbs, shard.budgets.compute_seconds, shard.budgets.memory_bytes
            );
            sum.rbs += shard.budgets.rbs;
            sum.compute_seconds += shard.budgets.compute_seconds;
            sum.memory_bytes += shard.budgets.memory_bytes;
        }
        prop_assert!((sum.rbs - total.rbs).abs() < 1e-6 * total.rbs);
        prop_assert!((sum.compute_seconds - total.compute_seconds).abs() < 1e-6 * total.compute_seconds);
        prop_assert!((sum.memory_bytes - total.memory_bytes).abs() < 1e-6 * total.memory_bytes);
        prop_assert!(report.is_conserved(), "conservation violated:\n{}", report);
    }
}

//! DOT problem instances: tasks, their candidate path options, per-block
//! costs and resource budgets.

use crate::error::DotError;
use crate::task::{QualityLevel, Task};
use offloadnn_dnn::block::BlockId;
use offloadnn_dnn::repository::DnnPath;
use offloadnn_radio::{min_rbs_for_deadline, RateModel};
use serde::{Deserialize, Serialize};

/// Resource budgets of the edge platform (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Budgets {
    /// Available radio resource blocks `R`.
    pub rbs: f64,
    /// Available inference compute `C` in GPU-seconds per second.
    pub compute_seconds: f64,
    /// Training-cost normaliser `Ct` in GPU-seconds.
    pub training_seconds: f64,
    /// Available memory `M` in bytes.
    pub memory_bytes: f64,
}

impl Budgets {
    /// Validates positivity.
    ///
    /// # Errors
    ///
    /// Returns [`DotError::InvalidBudget`] naming the offending budget.
    pub fn validate(&self) -> Result<(), DotError> {
        if self.rbs <= 0.0 {
            return Err(DotError::InvalidBudget("rbs"));
        }
        if self.compute_seconds <= 0.0 {
            return Err(DotError::InvalidBudget("compute"));
        }
        if self.training_seconds <= 0.0 {
            return Err(DotError::InvalidBudget("training"));
        }
        if self.memory_bytes <= 0.0 {
            return Err(DotError::InvalidBudget("memory"));
        }
        Ok(())
    }
}

/// One candidate way to serve a task: a DNN path plus an input quality
/// level, with its attained accuracy and processing time precomputed
/// (the static vertex attributes of Sec. IV-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathOption {
    /// The DNN path.
    pub path: DnnPath,
    /// The input quality level this option assumes.
    pub quality: QualityLevel,
    /// Attained accuracy `a_tau(q, pi)`.
    pub accuracy: f64,
    /// Processing time `sum_{s in pi} c(s)` in seconds per sample.
    pub proc_seconds: f64,
    /// Training cost of the path ignoring sharing (`sum ct(s)`), used as a
    /// tie-break when two paths have identical inference compute time.
    pub training_seconds: f64,
    /// Display label (model / CONFIG / quality).
    pub label: String,
}

/// A complete DOT problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DotInstance {
    /// The requested tasks, in submission order.
    pub tasks: Vec<Task>,
    /// Candidate options per task (same indexing as `tasks`). These are the
    /// raw candidates; solvers apply the feasibility filter.
    pub options: Vec<Vec<PathOption>>,
    /// Memory `mu(s)` in bytes per block, indexed by [`BlockId`].
    pub block_memory: Vec<f64>,
    /// Training cost `ct(s)` in GPU-seconds per block, indexed by
    /// [`BlockId`].
    pub block_training: Vec<f64>,
    /// Radio rate model giving `B(sigma)`.
    pub rate: RateModel,
    /// Resource budgets.
    pub budgets: Budgets,
    /// Objective weight `alpha` between task admission and resource cost.
    pub alpha: f64,
}

impl DotInstance {
    /// Number of tasks `T`.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Bits per second one RB carries for task `t` (`B(sigma_tau)`).
    pub fn bits_per_rb(&self, t: usize) -> f64 {
        self.rate.bits_per_rb(self.tasks[t].snr)
    }

    /// The option `o` of task `t`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn option(&self, t: usize, o: usize) -> &PathOption {
        &self.options[t][o]
    }

    /// Minimum (real-valued) RBs so option `o` of task `t` meets the
    /// latency bound, or `None` if the processing time alone already
    /// exceeds it.
    pub fn min_rbs_latency(&self, t: usize, o: usize) -> Option<f64> {
        let task = &self.tasks[t];
        let opt = &self.options[t][o];
        let net_budget = task.max_latency - opt.proc_seconds;
        min_rbs_for_deadline(opt.quality.bits, net_budget, task.snr, self.rate)
    }

    /// Indices of the options of task `t` that satisfy the static
    /// per-vertex constraints: accuracy (1f) and a latency bound (1g)
    /// attainable within the total RB budget.
    pub fn feasible_options(&self, t: usize) -> Vec<usize> {
        let task = &self.tasks[t];
        (0..self.options[t].len())
            .filter(|&o| {
                let opt = &self.options[t][o];
                if opt.accuracy < task.min_accuracy {
                    return false;
                }
                match self.min_rbs_latency(t, o) {
                    Some(r_lat) => r_lat <= self.budgets.rbs,
                    None => false,
                }
            })
            .collect()
    }

    /// Memory of one block.
    ///
    /// # Panics
    ///
    /// Panics if the block has no cost entry.
    pub fn memory_of(&self, b: BlockId) -> f64 {
        self.block_memory[b.0 as usize]
    }

    /// Training cost of one block.
    ///
    /// # Panics
    ///
    /// Panics if the block has no cost entry.
    pub fn training_of(&self, b: BlockId) -> f64 {
        self.block_training[b.0 as usize]
    }

    /// Validates the whole instance.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found.
    pub fn validate(&self) -> Result<(), DotError> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(DotError::InvalidAlpha(self.alpha));
        }
        self.budgets.validate()?;
        if self.tasks.len() != self.options.len() {
            return Err(DotError::OptionsMismatch { tasks: self.tasks.len(), options: self.options.len() });
        }
        for task in &self.tasks {
            task.validate().map_err(DotError::InvalidTask)?;
        }
        let n_blocks = self.block_memory.len().min(self.block_training.len()) as u32;
        for opts in &self.options {
            for opt in opts {
                for b in &opt.path.blocks {
                    if b.0 >= n_blocks {
                        return Err(DotError::MissingBlockCosts { block: b.0 });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::task::TaskId;
    use offloadnn_dnn::block::GroupId;
    use offloadnn_dnn::config::{Config, PathConfig};
    use offloadnn_dnn::{BlockId, ModelId};
    use offloadnn_radio::SnrDb;

    pub(crate) fn tiny_instance() -> DotInstance {
        // Two tasks, two synthetic options each, hand-written costs.
        let mk_task = |i: u32, prio: f64, acc: f64, lat: f64| Task {
            id: TaskId(i),
            name: format!("task{i}"),
            group: GroupId(i),
            priority: prio,
            request_rate: 5.0,
            min_accuracy: acc,
            max_latency: lat,
            snr: SnrDb(0.0),
            qualities: vec![QualityLevel::table_iv()],
            difficulty: 0.0,
        };
        let mk_option = |blocks: Vec<u32>, acc: f64, proc: f64| PathOption {
            path: DnnPath {
                model: ModelId(0),
                group: GroupId(0),
                config: PathConfig { config: Config::C, pruned: false },
                blocks: blocks.into_iter().map(BlockId).collect(),
            },
            quality: QualityLevel::table_iv(),
            accuracy: acc,
            proc_seconds: proc,
            training_seconds: 0.0,
            label: "synthetic".into(),
        };
        DotInstance {
            tasks: vec![mk_task(0, 0.8, 0.85, 0.3), mk_task(1, 0.5, 0.7, 0.4)],
            options: vec![
                vec![mk_option(vec![0, 1], 0.9, 0.01), mk_option(vec![0, 2], 0.8, 0.005)],
                vec![mk_option(vec![0, 1], 0.9, 0.01), mk_option(vec![3], 0.75, 0.002)],
            ],
            block_memory: vec![1e9, 2e9, 0.5e9, 0.25e9],
            block_training: vec![0.0, 100.0, 50.0, 25.0],
            rate: RateModel::table_iv(),
            budgets: Budgets { rbs: 50.0, compute_seconds: 2.5, training_seconds: 1000.0, memory_bytes: 8e9 },
            alpha: 0.5,
        }
    }

    #[test]
    fn tiny_instance_validates() {
        assert!(tiny_instance().validate().is_ok());
    }

    #[test]
    fn alpha_out_of_range_rejected() {
        let mut i = tiny_instance();
        i.alpha = 1.2;
        assert_eq!(i.validate().unwrap_err(), DotError::InvalidAlpha(1.2));
    }

    #[test]
    fn bad_budget_rejected() {
        let mut i = tiny_instance();
        i.budgets.memory_bytes = 0.0;
        assert_eq!(i.validate().unwrap_err(), DotError::InvalidBudget("memory"));
    }

    #[test]
    fn missing_block_cost_rejected() {
        let mut i = tiny_instance();
        i.options[0][0].path.blocks.push(BlockId(99));
        assert_eq!(i.validate().unwrap_err(), DotError::MissingBlockCosts { block: 99 });
    }

    #[test]
    fn options_mismatch_rejected() {
        let mut i = tiny_instance();
        i.options.pop();
        assert!(matches!(i.validate().unwrap_err(), DotError::OptionsMismatch { .. }));
    }

    #[test]
    fn min_rbs_latency_accounts_for_processing() {
        let i = tiny_instance();
        // Task 0: L = 0.3s, option 0 proc = 0.01s -> net 0.29s;
        // 350kb/(0.35Mb/s * 0.29s) = 3.448 RBs.
        let r = i.min_rbs_latency(0, 0).unwrap();
        assert!((r - 350e3 / (0.35e6 * 0.29)).abs() < 1e-9);
    }

    #[test]
    fn infeasible_latency_returns_none() {
        let mut i = tiny_instance();
        i.options[0][0].proc_seconds = 1.0; // above the 0.3 s bound
        assert!(i.min_rbs_latency(0, 0).is_none());
    }

    #[test]
    fn feasible_options_filter_accuracy_and_latency() {
        let mut i = tiny_instance();
        // Task 0 requires 0.85: option 1 (0.8) filtered out.
        assert_eq!(i.feasible_options(0), vec![0]);
        // Task 1 requires 0.7: both pass.
        assert_eq!(i.feasible_options(1), vec![0, 1]);
        // Blow the latency of task 1 option 0.
        i.options[1][0].proc_seconds = 10.0;
        assert_eq!(i.feasible_options(1), vec![1]);
    }
}

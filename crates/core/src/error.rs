//! Error types of the DOT core.

use crate::task::TaskId;
use std::fmt;

/// Errors raised while building or solving a DOT instance.
#[derive(Debug, Clone, PartialEq)]
pub enum DotError {
    /// A task failed validation.
    InvalidTask(String),
    /// The instance references a block id with no cost entry.
    MissingBlockCosts {
        /// The out-of-range block id value.
        block: u32,
    },
    /// The weighting parameter alpha is outside `[0, 1]`.
    InvalidAlpha(f64),
    /// A budget is non-positive.
    InvalidBudget(&'static str),
    /// The exact solver would have to enumerate more branches than the
    /// configured cap.
    ExactTooLarge {
        /// Number of branches the instance implies.
        branches: f64,
        /// Configured cap.
        cap: f64,
    },
    /// Tasks and option lists disagree in length.
    OptionsMismatch {
        /// Number of tasks.
        tasks: usize,
        /// Number of option lists.
        options: usize,
    },
    /// A path-building error bubbled up from the DNN layer.
    Dnn(String),
}

impl fmt::Display for DotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DotError::InvalidTask(msg) => write!(f, "invalid task: {msg}"),
            DotError::MissingBlockCosts { block } => write!(f, "no cost entry for block s{block}"),
            DotError::InvalidAlpha(a) => write!(f, "alpha {a} outside [0,1]"),
            DotError::InvalidBudget(which) => write!(f, "budget {which} must be positive"),
            DotError::ExactTooLarge { branches, cap } => {
                write!(f, "exact solver refuses {branches:.3e} branches (cap {cap:.3e})")
            }
            DotError::OptionsMismatch { tasks, options } => {
                write!(f, "{tasks} tasks but {options} option lists")
            }
            DotError::Dnn(msg) => write!(f, "dnn error: {msg}"),
        }
    }
}

impl std::error::Error for DotError {}

/// A constraint violated by a candidate solution (see
/// [`crate::objective::verify`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Memory budget (1b) exceeded.
    Memory {
        /// Bytes used.
        used: f64,
        /// Bytes available.
        cap: f64,
    },
    /// Compute budget (1c) exceeded.
    Compute {
        /// GPU-seconds per second used.
        used: f64,
        /// Budget.
        cap: f64,
    },
    /// Radio budget (1d) exceeded.
    Radio {
        /// Admission-weighted RBs used.
        used: f64,
        /// Available RBs.
        cap: f64,
    },
    /// Rate-support constraint (1e) violated for a task.
    RateSupport {
        /// The task.
        task: TaskId,
    },
    /// Accuracy constraint (1f) violated for a task.
    Accuracy {
        /// The task.
        task: TaskId,
        /// Accuracy attained by the selected path.
        got: f64,
        /// Required accuracy.
        need: f64,
    },
    /// Latency constraint (1g) violated for a task.
    Latency {
        /// The task.
        task: TaskId,
        /// End-to-end latency attained.
        got: f64,
        /// Latency bound.
        need: f64,
    },
    /// A task has `z > 0` but no selected path.
    AdmittedWithoutPath {
        /// The task.
        task: TaskId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Memory { used, cap } => write!(f, "memory {used:.3e} exceeds {cap:.3e} bytes"),
            Violation::Compute { used, cap } => write!(f, "compute {used:.4} exceeds {cap:.4} s/s"),
            Violation::Radio { used, cap } => write!(f, "radio {used:.2} exceeds {cap:.2} RBs"),
            Violation::RateSupport { task } => write!(f, "{task}: slice cannot sustain admitted rate"),
            Violation::Accuracy { task, got, need } => {
                write!(f, "{task}: accuracy {got:.3} below required {need:.3}")
            }
            Violation::Latency { task, got, need } => {
                write!(f, "{task}: latency {got:.3}s above bound {need:.3}s")
            }
            Violation::AdmittedWithoutPath { task } => write!(f, "{task}: admitted but no path selected"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        assert!(DotError::InvalidAlpha(1.5).to_string().contains("1.5"));
        assert!(DotError::ExactTooLarge { branches: 1e9, cap: 1e8 }.to_string().contains("refuses"));
        assert!(Violation::Accuracy { task: TaskId(2), got: 0.7, need: 0.9 }.to_string().contains("t2"));
        assert!(Violation::Memory { used: 2.0, cap: 1.0 }.to_string().contains("memory"));
    }
}

//! The DOT objective (1a) and constraint verification (1b)–(1i).

use crate::error::Violation;
use crate::instance::DotInstance;
use offloadnn_dnn::block::BlockId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Numerical slack used when checking constraints on floating-point sums.
pub const TOLERANCE: f64 = 1e-9;

/// The DOT objective split into its four components (all already weighted
/// by `alpha` / `1 - alpha`, so `total` is their plain sum).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// `alpha * sum (1 - z) p` — priority-weighted rejection.
    pub rejection: f64,
    /// `(1-alpha) * training / Ct` — training cost of used blocks (shared
    /// blocks counted once).
    pub training: f64,
    /// `(1-alpha) * sum z r / R` — radio resources.
    pub radio: f64,
    /// `(1-alpha) * sum z lambda P / C` — inference compute.
    pub inference: f64,
}

impl CostBreakdown {
    /// The total DOT cost.
    pub fn total(&self) -> f64 {
        self.rejection + self.training + self.radio + self.inference
    }
}

/// A complete candidate solution of a DOT instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DotSolution {
    /// Selected option index per task (`None` = no DNN deployed).
    pub choices: Vec<Option<usize>>,
    /// Admission ratio `z` per task (0 for rejected tasks).
    pub admission: Vec<f64>,
    /// Real-valued RB allocation `r` per task (0 for rejected tasks).
    pub rbs: Vec<f64>,
    /// Objective value.
    pub cost: CostBreakdown,
    /// Wall-clock seconds the solver spent.
    pub solve_seconds: f64,
}

impl DotSolution {
    /// The all-rejected solution of an instance with `n` tasks.
    pub fn rejected(instance: &DotInstance) -> Self {
        let n = instance.num_tasks();
        let mut s = Self {
            choices: vec![None; n],
            admission: vec![0.0; n],
            rbs: vec![0.0; n],
            cost: CostBreakdown::default(),
            solve_seconds: 0.0,
        };
        s.cost = evaluate(instance, &s.choices, &s.admission, &s.rbs);
        s
    }

    /// Integer RB allocation (ceiling of the real allocation).
    pub fn rbs_int(&self) -> Vec<u32> {
        self.rbs.iter().map(|&r| r.ceil() as u32).collect()
    }

    /// Sum over tasks of `z * p` (Fig. 8/10's "weighted tasks admission
    /// ratio").
    pub fn weighted_admission(&self, instance: &DotInstance) -> f64 {
        self.admission.iter().zip(&instance.tasks).map(|(&z, t)| z * t.priority).sum()
    }

    /// Number of tasks with a strictly positive admission ratio.
    pub fn admitted_tasks(&self) -> usize {
        self.admission.iter().filter(|&&z| z > 0.0).count()
    }
}

/// Blocks used by at least one task with `z > 0` (the `m(s^d)` auxiliaries
/// of constraints (1h)/(1i)).
pub fn used_blocks(instance: &DotInstance, choices: &[Option<usize>], admission: &[f64]) -> HashSet<BlockId> {
    let mut used = HashSet::new();
    for (t, choice) in choices.iter().enumerate() {
        if admission[t] > 0.0 {
            if let Some(o) = choice {
                used.extend(instance.options[t][*o].path.blocks.iter().copied());
            }
        }
    }
    used
}

/// Total memory (bytes) of the used blocks, shared blocks counted once —
/// the left side of constraint (1b).
pub fn memory_bytes(instance: &DotInstance, choices: &[Option<usize>], admission: &[f64]) -> f64 {
    used_blocks(instance, choices, admission).into_iter().map(|b| instance.memory_of(b)).sum()
}

/// Total training cost (GPU-seconds) of the used blocks, shared blocks
/// counted once.
pub fn training_seconds(instance: &DotInstance, choices: &[Option<usize>], admission: &[f64]) -> f64 {
    used_blocks(instance, choices, admission).into_iter().map(|b| instance.training_of(b)).sum()
}

/// Admission-weighted inference compute usage in GPU-seconds per second —
/// the left side of constraint (1c).
pub fn compute_usage(instance: &DotInstance, choices: &[Option<usize>], admission: &[f64]) -> f64 {
    choices
        .iter()
        .enumerate()
        .filter_map(|(t, c)| {
            c.map(|o| admission[t] * instance.tasks[t].request_rate * instance.options[t][o].proc_seconds)
        })
        .sum()
}

/// Admission-weighted RB usage — the left side of constraint (1d).
pub fn radio_usage(admission: &[f64], rbs: &[f64]) -> f64 {
    admission.iter().zip(rbs).map(|(&z, &r)| z * r).sum()
}

/// Evaluates the DOT objective (1a) for a candidate assignment.
pub fn evaluate(
    instance: &DotInstance,
    choices: &[Option<usize>],
    admission: &[f64],
    rbs: &[f64],
) -> CostBreakdown {
    let alpha = instance.alpha;
    let rejection: f64 =
        instance.tasks.iter().enumerate().map(|(t, task)| (1.0 - admission[t]) * task.priority).sum();
    let training = training_seconds(instance, choices, admission) / instance.budgets.training_seconds;
    let radio = radio_usage(admission, rbs) / instance.budgets.rbs;
    let inference = compute_usage(instance, choices, admission) / instance.budgets.compute_seconds;
    CostBreakdown {
        rejection: alpha * rejection,
        training: (1.0 - alpha) * training,
        radio: (1.0 - alpha) * radio,
        inference: (1.0 - alpha) * inference,
    }
}

/// Verifies every DOT constraint for a candidate solution, returning all
/// violations found (empty = feasible).
pub fn verify(instance: &DotInstance, sol: &DotSolution) -> Vec<Violation> {
    let mut v = Vec::new();
    let tol = TOLERANCE;

    let mem = memory_bytes(instance, &sol.choices, &sol.admission);
    if mem > instance.budgets.memory_bytes * (1.0 + tol) {
        v.push(Violation::Memory { used: mem, cap: instance.budgets.memory_bytes });
    }
    let comp = compute_usage(instance, &sol.choices, &sol.admission);
    if comp > instance.budgets.compute_seconds * (1.0 + tol) {
        v.push(Violation::Compute { used: comp, cap: instance.budgets.compute_seconds });
    }
    let radio = radio_usage(&sol.admission, &sol.rbs);
    if radio > instance.budgets.rbs * (1.0 + tol) {
        v.push(Violation::Radio { used: radio, cap: instance.budgets.rbs });
    }

    for (t, task) in instance.tasks.iter().enumerate() {
        let z = sol.admission[t];
        if z <= 0.0 {
            continue;
        }
        let Some(o) = sol.choices[t] else {
            v.push(Violation::AdmittedWithoutPath { task: task.id });
            continue;
        };
        let opt = &instance.options[t][o];
        let b = instance.bits_per_rb(t);
        // (1e): z * lambda * beta <= B * r.
        if z * task.request_rate * opt.quality.bits > b * sol.rbs[t] * (1.0 + 1e-6) {
            v.push(Violation::RateSupport { task: task.id });
        }
        // (1f).
        if opt.accuracy < task.min_accuracy - tol {
            v.push(Violation::Accuracy { task: task.id, got: opt.accuracy, need: task.min_accuracy });
        }
        // (1g): beta/(B r) + P <= L.
        let latency = opt.quality.bits / (b * sol.rbs[t].max(f64::MIN_POSITIVE)) + opt.proc_seconds;
        if latency > task.max_latency * (1.0 + 1e-6) {
            v.push(Violation::Latency { task: task.id, got: latency, need: task.max_latency });
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::tiny_instance;

    #[test]
    fn rejected_solution_costs_alpha_times_priorities() {
        let i = tiny_instance();
        let s = DotSolution::rejected(&i);
        // alpha * (0.8 + 0.5) = 0.65.
        assert!((s.cost.total() - 0.65).abs() < 1e-12);
        assert_eq!(s.admitted_tasks(), 0);
        assert!(verify(&i, &s).is_empty(), "rejecting everything is always feasible");
    }

    #[test]
    fn shared_blocks_counted_once() {
        let i = tiny_instance();
        // Both tasks choose option 0 = blocks [0, 1].
        let choices = vec![Some(0), Some(0)];
        let z = vec![1.0, 1.0];
        let mem = memory_bytes(&i, &choices, &z);
        assert_eq!(mem, 1e9 + 2e9, "blocks 0 and 1 once each");
        let train = training_seconds(&i, &choices, &z);
        assert_eq!(train, 0.0 + 100.0);
    }

    #[test]
    fn rejected_tasks_free_their_blocks() {
        let i = tiny_instance();
        let choices = vec![Some(0), Some(1)];
        let z = vec![1.0, 0.0]; // task 1 rejected despite having a choice
        let used = used_blocks(&i, &choices, &z);
        assert!(used.contains(&offloadnn_dnn::BlockId(0)));
        assert!(!used.contains(&offloadnn_dnn::BlockId(3)), "z=0 task must not pin blocks");
    }

    #[test]
    fn evaluate_matches_hand_computation() {
        let i = tiny_instance();
        let choices = vec![Some(0), None];
        let z = vec![1.0, 0.0];
        let r = vec![5.0, 0.0];
        let c = evaluate(&i, &choices, &z, &r);
        // rejection: 0.5 * (0*0.8 + 1*0.5) = 0.25
        assert!((c.rejection - 0.25).abs() < 1e-12);
        // training: 0.5 * 100/1000 = 0.05
        assert!((c.training - 0.05).abs() < 1e-12);
        // radio: 0.5 * (1*5)/50 = 0.05
        assert!((c.radio - 0.05).abs() < 1e-12);
        // inference: 0.5 * (1*5*0.01)/2.5 = 0.01
        assert!((c.inference - 0.01).abs() < 1e-12);
        assert!((c.total() - 0.36).abs() < 1e-12);
    }

    #[test]
    fn verify_catches_each_violation_kind() {
        let i = tiny_instance();
        // Admitted without path.
        let s = DotSolution {
            choices: vec![None, None],
            admission: vec![0.5, 0.0],
            rbs: vec![0.0, 0.0],
            cost: CostBreakdown::default(),
            solve_seconds: 0.0,
        };
        assert!(matches!(verify(&i, &s)[0], Violation::AdmittedWithoutPath { .. }));

        // Rate support: z*lambda*beta = 1*5*350k = 1.75e6 > B*r = 0.35e6*2.
        let s = DotSolution {
            choices: vec![Some(0), None],
            admission: vec![1.0, 0.0],
            rbs: vec![2.0, 0.0],
            cost: CostBreakdown::default(),
            solve_seconds: 0.0,
        };
        let vs = verify(&i, &s);
        assert!(vs.iter().any(|v| matches!(v, Violation::RateSupport { .. })));
        // 2 RBs also violates latency: 350k/(0.7e6) = 0.5s > 0.3s.
        assert!(vs.iter().any(|v| matches!(v, Violation::Latency { .. })));

        // Memory violation: shrink the budget.
        let mut i2 = tiny_instance();
        i2.budgets.memory_bytes = 1e9;
        let s = DotSolution {
            choices: vec![Some(0), None],
            admission: vec![1.0, 0.0],
            rbs: vec![6.0, 0.0],
            cost: CostBreakdown::default(),
            solve_seconds: 0.0,
        };
        assert!(verify(&i2, &s).iter().any(|v| matches!(v, Violation::Memory { .. })));

        // Accuracy violation: raise the requirement above the option.
        let mut i3 = tiny_instance();
        i3.tasks[0].min_accuracy = 0.95;
        assert!(verify(&i3, &s).iter().any(|v| matches!(v, Violation::Accuracy { .. })));
    }

    #[test]
    fn weighted_admission_and_rbs_int() {
        let i = tiny_instance();
        let s = DotSolution {
            choices: vec![Some(0), Some(0)],
            admission: vec![1.0, 0.5],
            rbs: vec![5.2, 3.0],
            cost: CostBreakdown::default(),
            solve_seconds: 0.0,
        };
        assert!((s.weighted_admission(&i) - (0.8 + 0.25)).abs() < 1e-12);
        assert_eq!(s.rbs_int(), vec![6, 3]);
        assert_eq!(s.admitted_tasks(), 2);
    }
}

//! Lagrangian dual of the inner allocation problem: a *certificate* of
//! (near-)optimality for [`crate::alloc::coordinate_ascent`].
//!
//! Relaxing the two coupling constraints (1c)/(1d) with multipliers
//! `mu >= 0` (compute) and `nu >= 0` (radio) decomposes the concave inner
//! program into independent per-task maximisations
//!
//! ```text
//! max_z  alpha*p*z - (1-alpha)*(z*r(z)/R + z*g/C) - mu*z*g - nu*z*r(z)
//! ```
//!
//! each solvable in closed form (the relaxed problem has the same
//! piecewise structure as the original, with inflated resource prices).
//! By weak duality, `D(mu, nu) = sum_t max_z L_t(z) + mu*C + nu*R` upper
//! bounds the achievable utility for every `mu, nu >= 0` — equivalently,
//! it lower bounds the achievable *cost*. Because the primal program is
//! concave with affine-in-resources constraints (Slater holds: `z = 0` is
//! strictly feasible), the duality gap is zero at the optimum; the
//! projected subgradient iteration below therefore certifies the primal
//! solutions to the tolerance it converges to.

use crate::alloc::{AllocSettings, AllocTask};
use serde::{Deserialize, Serialize};

/// Result of a dual optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualBound {
    /// Multiplier of the compute constraint (1c).
    pub mu: f64,
    /// Multiplier of the radio constraint (1d).
    pub nu: f64,
    /// The dual objective: an upper bound on the primal utility, i.e.
    /// `cost >= fixed_rejection_cost - utility_bound` for every feasible
    /// allocation.
    pub utility_bound: f64,
    /// Subgradient iterations performed.
    pub iterations: usize,
}

/// Per-task utility at admission `z` (the primal objective being
/// maximised; the DOT cost equals `alpha * sum p` minus this).
pub fn task_utility(t: &AllocTask, s: &AllocSettings, z: f64) -> f64 {
    s.alpha * t.priority * z
        - (1.0 - s.alpha) * (t.radio_usage(z) / s.rbs + z * t.compute_per_z() / s.compute)
}

/// Total utility of an allocation.
pub fn total_utility(tasks: &[AllocTask], s: &AllocSettings, z: &[f64]) -> f64 {
    tasks.iter().zip(z).map(|(t, &zi)| task_utility(t, s, zi)).sum()
}

/// Maximises the relaxed per-task Lagrangian in closed form and returns
/// `(z*, value)`.
fn relaxed_best(t: &AllocTask, s: &AllocSettings, mu: f64, nu: f64) -> (f64, f64) {
    if t.r_lat > s.rbs {
        return (0.0, 0.0);
    }
    let g = t.compute_per_z();
    // Effective prices: the objective's own normalised prices plus the
    // multipliers.
    let price_c = (1.0 - s.alpha) / s.compute + mu;
    let price_r = (1.0 - s.alpha) / s.rbs + nu;
    let gain = s.alpha * t.priority;

    // Regime 1 (z <= knee): utility = (gain - price_c*g - price_r*r_lat) z.
    let m1 = gain - price_c * g - price_r * t.r_lat;
    if m1 <= 0.0 {
        return (0.0, 0.0);
    }
    let knee = t.knee();
    let value_at = |z: f64| gain * z - price_c * g * z - price_r * t.radio_usage(z);
    if knee >= 1.0 {
        return (1.0, value_at(1.0));
    }
    // Regime 2: marginal = gain - price_c*g - price_r * 2 z lambda beta / B.
    let quad = 2.0 * t.lambda * t.beta / t.bits_per_rb;
    let m2 = |z: f64| gain - price_c * g - price_r * quad * z;
    if m2(knee) <= 0.0 {
        return (knee, value_at(knee));
    }
    let z_star = ((gain - price_c * g) / (price_r * quad)).clamp(knee, 1.0);
    (z_star, value_at(z_star))
}

/// Evaluates the dual function and its subgradient at `(mu, nu)`.
fn dual_value(tasks: &[AllocTask], s: &AllocSettings, mu: f64, nu: f64) -> (f64, f64, f64) {
    let mut total = mu * s.compute + nu * s.rbs;
    let (mut used_c, mut used_r) = (0.0, 0.0);
    for t in tasks {
        let (z, v) = relaxed_best(t, s, mu, nu);
        total += v;
        used_c += z * t.compute_per_z();
        used_r += t.radio_usage(z);
    }
    (total, s.compute - used_c, s.rbs - used_r)
}

/// Projected subgradient descent on the dual, returning the tightest bound
/// found.
pub fn dual_bound(tasks: &[AllocTask], s: &AllocSettings, iterations: usize) -> DualBound {
    let (mut mu, mut nu) = (0.0f64, 0.0f64);
    let mut best = DualBound { mu, nu, utility_bound: f64::INFINITY, iterations: 0 };
    // Step scaling: normalise by the constraint magnitudes.
    let (sc, sr) = (1.0 / s.compute.max(1e-9), 1.0 / s.rbs.max(1e-9));
    for k in 0..iterations {
        let (value, slack_c, slack_r) = dual_value(tasks, s, mu, nu);
        if value < best.utility_bound {
            best = DualBound { mu, nu, utility_bound: value, iterations: k + 1 };
        }
        // Subgradient of D wrt (mu, nu) is the constraint slack; descend.
        let step = 0.5 / (1.0 + k as f64).sqrt();
        mu = (mu - step * slack_c * sc * sc).max(0.0);
        nu = (nu - step * slack_r * sr * sr).max(0.0);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{coordinate_ascent, greedy, Order};

    fn table_iv_task(priority: f64, lambda: f64, max_latency: f64, proc: f64) -> AllocTask {
        let beta = 350e3;
        let b = 0.35e6;
        AllocTask {
            priority,
            lambda,
            beta,
            bits_per_rb: b,
            r_lat: beta / (b * (max_latency - proc)),
            proc_seconds: proc,
        }
    }

    #[test]
    fn weak_duality_holds_on_small_instance() {
        let tasks: Vec<AllocTask> =
            (0..5).map(|i| table_iv_task(0.8 - 0.1 * i as f64, 5.0, 0.2 + 0.1 * i as f64, 0.008)).collect();
        let s = AllocSettings { alpha: 0.5, rbs: 50.0, compute: 2.5 };
        let primal = coordinate_ascent(&tasks, &s);
        let u = total_utility(&tasks, &s, &primal.z);
        let bound = dual_bound(&tasks, &s, 300);
        assert!(
            u <= bound.utility_bound + 1e-9,
            "primal utility {u} exceeds dual bound {}",
            bound.utility_bound
        );
    }

    #[test]
    fn gap_is_tight_when_unconstrained() {
        // Huge budgets: multipliers stay ~0 and the bound equals the
        // unconstrained optimum, which coordinate ascent also reaches.
        let tasks: Vec<AllocTask> =
            (0..4).map(|i| table_iv_task(0.9 - 0.1 * i as f64, 3.0, 0.4, 0.005)).collect();
        let s = AllocSettings { alpha: 0.5, rbs: 1e5, compute: 1e5 };
        let primal = coordinate_ascent(&tasks, &s);
        let u = total_utility(&tasks, &s, &primal.z);
        let bound = dual_bound(&tasks, &s, 200);
        assert!(bound.utility_bound - u < 1e-6, "gap {}", bound.utility_bound - u);
    }

    #[test]
    fn gap_small_under_radio_saturation() {
        // 20 heavy tasks on 100 RBs: the radio multiplier must activate
        // and the residual gap stay small relative to the utility.
        let tasks: Vec<AllocTask> = (0..20)
            .map(|i| table_iv_task(1.0 - 0.05 * i as f64, 7.5, 0.2 + 0.02 * i as f64, 0.008))
            .collect();
        let s = AllocSettings { alpha: 0.5, rbs: 100.0, compute: 10.0 };
        let primal = coordinate_ascent(&tasks, &s);
        let u = total_utility(&tasks, &s, &primal.z);
        let bound = dual_bound(&tasks, &s, 2000);
        assert!(u <= bound.utility_bound + 1e-9);
        let gap = (bound.utility_bound - u) / u.abs().max(1e-9);
        assert!(gap < 0.05, "relative duality gap {gap} too large");
        assert!(bound.nu > 0.0, "radio multiplier must be active");
    }

    #[test]
    fn bound_dominates_every_greedy_order() {
        let tasks: Vec<AllocTask> =
            (0..8).map(|i| table_iv_task(0.2 + 0.1 * i as f64, 2.0 + i as f64, 0.3, 0.01)).collect();
        let s = AllocSettings { alpha: 0.6, rbs: 20.0, compute: 0.3 };
        let bound = dual_bound(&tasks, &s, 500);
        for order in [Order::Priority, Order::UtilityDensity, Order::Input] {
            let res = greedy(&tasks, &s, order);
            let u = total_utility(&tasks, &s, &res.z);
            assert!(u <= bound.utility_bound + 1e-9, "{order:?}");
        }
    }

    #[test]
    fn infeasible_latency_floor_yields_zero() {
        let t = AllocTask {
            priority: 1.0,
            lambda: 1.0,
            beta: 350e3,
            bits_per_rb: 0.35e6,
            r_lat: 100.0,
            proc_seconds: 0.001,
        };
        let s = AllocSettings { alpha: 0.5, rbs: 10.0, compute: 10.0 };
        let (z, v) = relaxed_best(&t, &s, 0.0, 0.0);
        assert_eq!(z, 0.0);
        assert_eq!(v, 0.0);
    }
}

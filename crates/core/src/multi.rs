//! Multi-edge DOT: a natural scaling extension of the paper's single-edge
//! formulation. Several edge platforms sit behind the same cell: the
//! radio budget `R` stays global (one vRAN), but each edge has its own
//! compute and memory, and DNN blocks can only be shared among tasks
//! *placed on the same edge*. The solver extends OffloaDNN's first-branch
//! rule with a placement dimension: per task, the feasible (edge, path)
//! pair with the smallest inference compute time that fits that edge's
//! remaining memory.

use crate::alloc::{self, AllocSettings, AllocTask};
use crate::error::{DotError, Violation};
use crate::instance::{Budgets, DotInstance};
use crate::tree::{BranchState, WeightedTree};
use serde::{Deserialize, Serialize};

/// Per-edge capacities (radio is global and lives in the template
/// instance's budgets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeCapacity {
    /// Inference compute budget of the edge, GPU-s/s.
    pub compute_seconds: f64,
    /// Memory budget of the edge, bytes.
    pub memory_bytes: f64,
}

/// A multi-edge problem: the template instance supplies tasks, options,
/// block costs, the rate model and the *global* RB budget; `edges` the
/// per-edge compute/memory.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiEdgeInstance {
    /// Tasks, options, block costs, rate model, global radio budget.
    pub template: DotInstance,
    /// The edge platforms.
    pub edges: Vec<EdgeCapacity>,
}

/// A multi-edge solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiEdgeSolution {
    /// Per task: the serving `(edge, option)` pair.
    pub placement: Vec<Option<(usize, usize)>>,
    /// Admission ratios.
    pub admission: Vec<f64>,
    /// RB allocations.
    pub rbs: Vec<f64>,
    /// Memory resident per edge (bytes).
    pub edge_memory: Vec<f64>,
    /// Compute used per edge (GPU-s/s).
    pub edge_compute: Vec<f64>,
}

impl MultiEdgeSolution {
    /// Number of tasks with `z > 0`.
    pub fn admitted_tasks(&self) -> usize {
        self.admission.iter().filter(|&&z| z > 0.0).count()
    }

    /// `sum z * p`.
    pub fn weighted_admission(&self, instance: &MultiEdgeInstance) -> f64 {
        self.admission.iter().zip(&instance.template.tasks).map(|(&z, t)| z * t.priority).sum()
    }
}

/// Solves the multi-edge problem with the placement-extended first-branch
/// rule.
///
/// # Errors
///
/// Returns a [`DotError`] if the template instance is malformed or no
/// edges are given.
pub fn solve(instance: &MultiEdgeInstance) -> Result<MultiEdgeSolution, DotError> {
    instance.template.validate()?;
    if instance.edges.is_empty() {
        return Err(DotError::InvalidBudget("edges"));
    }
    let t_inst = &instance.template;
    let tree = WeightedTree::build(t_inst);

    // Per-edge incremental block accounting.
    let mut states: Vec<BranchState> = instance.edges.iter().map(|_| BranchState::new()).collect();
    let mut placement: Vec<Option<(usize, usize)>> = vec![None; t_inst.num_tasks()];

    for (layer, &t) in tree.order.iter().enumerate() {
        'vertex: for &o in &tree.cliques[layer] {
            let blocks = &t_inst.options[t][o].path.blocks;
            // Prefer the edge where the path is cheapest to add (most
            // sharing), then the emptiest edge; reject the vertex if no
            // edge fits it.
            let mut candidates: Vec<usize> = (0..instance.edges.len()).collect();
            candidates.sort_by(|&a, &b| {
                let ia = states[a].memory_increment(t_inst, blocks);
                let ib = states[b].memory_increment(t_inst, blocks);
                ia.total_cmp(&ib).then(states[a].memory_bytes.total_cmp(&states[b].memory_bytes))
            });
            for e in candidates {
                let incr = states[e].memory_increment(t_inst, blocks);
                if states[e].memory_bytes + incr <= instance.edges[e].memory_bytes {
                    states[e].push(t_inst, blocks);
                    placement[t] = Some((e, o));
                    break 'vertex;
                }
            }
        }
    }

    // Inner allocation: global radio, per-edge compute.
    let settings = AllocSettings {
        alpha: t_inst.alpha,
        rbs: t_inst.budgets.rbs,
        // Utility pricing uses the fleet-wide compute so edges are
        // comparable; feasibility is enforced per edge below.
        compute: instance.edges.iter().map(|e| e.compute_seconds).sum(),
    };
    let mut order: Vec<usize> = (0..t_inst.num_tasks()).collect();
    order.sort_by(|&a, &b| t_inst.tasks[b].priority.total_cmp(&t_inst.tasks[a].priority));

    let mut admission = vec![0.0; t_inst.num_tasks()];
    let mut rbs = vec![0.0; t_inst.num_tasks()];
    let mut rem_r = t_inst.budgets.rbs;
    let mut rem_c: Vec<f64> = instance.edges.iter().map(|e| e.compute_seconds).collect();

    for &t in &order {
        let Some((e, o)) = placement[t] else { continue };
        let task = &t_inst.tasks[t];
        let opt = &t_inst.options[t][o];
        let Some(r_lat) = t_inst.min_rbs_latency(t, o) else { continue };
        if r_lat > t_inst.budgets.rbs {
            continue;
        }
        let at = AllocTask {
            priority: task.priority,
            lambda: task.request_rate,
            beta: opt.quality.bits,
            bits_per_rb: t_inst.bits_per_rb(t),
            r_lat,
            proc_seconds: opt.proc_seconds,
        };
        let z = alloc::best_unconstrained_z(&at, &settings).min(alloc::budget_cap(&at, rem_r, rem_c[e]));
        if z <= 0.0 {
            continue;
        }
        admission[t] = z;
        rbs[t] = at.rbs_at(z);
        rem_r -= at.radio_usage(z);
        rem_c[e] -= z * at.compute_per_z();
    }

    // Drop deployments for tasks that ended with z = 0.
    for t in 0..t_inst.num_tasks() {
        if admission[t] == 0.0 {
            placement[t] = None;
        }
    }
    // Recompute per-edge usage from the surviving placement.
    let mut edge_states: Vec<BranchState> = instance.edges.iter().map(|_| BranchState::new()).collect();
    let mut edge_compute = vec![0.0; instance.edges.len()];
    for t in 0..t_inst.num_tasks() {
        if let Some((e, o)) = placement[t] {
            edge_states[e].push(t_inst, &t_inst.options[t][o].path.blocks);
            edge_compute[e] +=
                admission[t] * t_inst.tasks[t].request_rate * t_inst.options[t][o].proc_seconds;
        }
    }

    Ok(MultiEdgeSolution {
        placement,
        admission,
        rbs,
        edge_memory: edge_states.iter().map(|s| s.memory_bytes).collect(),
        edge_compute,
    })
}

/// Verifies a multi-edge solution: per-edge memory/compute, global radio,
/// per-task accuracy/latency/rate support.
pub fn verify(instance: &MultiEdgeInstance, sol: &MultiEdgeSolution) -> Vec<Violation> {
    let t_inst = &instance.template;
    let mut v = Vec::new();

    for (e, cap) in instance.edges.iter().enumerate() {
        if sol.edge_memory[e] > cap.memory_bytes * (1.0 + 1e-9) {
            v.push(Violation::Memory { used: sol.edge_memory[e], cap: cap.memory_bytes });
        }
        if sol.edge_compute[e] > cap.compute_seconds * (1.0 + 1e-9) {
            v.push(Violation::Compute { used: sol.edge_compute[e], cap: cap.compute_seconds });
        }
    }
    let radio: f64 = sol.admission.iter().zip(&sol.rbs).map(|(z, r)| z * r).sum();
    if radio > t_inst.budgets.rbs * (1.0 + 1e-9) {
        v.push(Violation::Radio { used: radio, cap: t_inst.budgets.rbs });
    }
    for (t, task) in t_inst.tasks.iter().enumerate() {
        let z = sol.admission[t];
        if z <= 0.0 {
            continue;
        }
        let Some((_, o)) = sol.placement[t] else {
            v.push(Violation::AdmittedWithoutPath { task: task.id });
            continue;
        };
        let opt = &t_inst.options[t][o];
        if opt.accuracy < task.min_accuracy - 1e-9 {
            v.push(Violation::Accuracy { task: task.id, got: opt.accuracy, need: task.min_accuracy });
        }
        let b = t_inst.bits_per_rb(t);
        let latency = opt.quality.bits / (b * sol.rbs[t].max(f64::MIN_POSITIVE)) + opt.proc_seconds;
        if latency > task.max_latency * (1.0 + 1e-6) {
            v.push(Violation::Latency { task: task.id, got: latency, need: task.max_latency });
        }
        if z * task.request_rate * opt.quality.bits > b * sol.rbs[t] * (1.0 + 1e-6) {
            v.push(Violation::RateSupport { task: task.id });
        }
    }
    v
}

/// Splits a single-edge instance into `n` equal edges (for fragmentation
/// studies): each gets `1/n` of the compute and memory; radio stays whole.
pub fn split_edges(instance: &DotInstance, n: usize) -> MultiEdgeInstance {
    let n = n.max(1);
    let per = EdgeCapacity {
        compute_seconds: instance.budgets.compute_seconds / n as f64,
        memory_bytes: instance.budgets.memory_bytes / n as f64,
    };
    let mut template = instance.clone();
    // The template's own memory/compute budgets are not used by the
    // multi-edge solver (per-edge caps are), but keep them consistent.
    template.budgets = Budgets {
        rbs: instance.budgets.rbs,
        compute_seconds: instance.budgets.compute_seconds,
        training_seconds: instance.budgets.training_seconds,
        memory_bytes: instance.budgets.memory_bytes,
    };
    MultiEdgeInstance { template, edges: vec![per; n] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::OffloadnnSolver;
    use crate::scenario::small_scenario;

    #[test]
    fn single_edge_matches_the_plain_solver_admission() {
        let s = small_scenario(5);
        let multi = split_edges(&s.instance, 1);
        let msol = solve(&multi).unwrap();
        assert!(verify(&multi, &msol).is_empty());
        let plain = OffloadnnSolver::new().solve(&s.instance).unwrap();
        assert!((msol.weighted_admission(&multi) - plain.weighted_admission(&s.instance)).abs() < 1e-6);
    }

    #[test]
    fn split_edges_are_feasible_and_spread_load() {
        let s = small_scenario(5);
        let multi = split_edges(&s.instance, 2);
        let sol = solve(&multi).unwrap();
        assert!(verify(&multi, &sol).is_empty(), "{:?}", verify(&multi, &sol));
        assert_eq!(sol.admitted_tasks(), 5, "small scenario fits even split edges");
    }

    #[test]
    fn fragmentation_never_helps() {
        // Splitting the same capacity can only reduce (or keep) the
        // weighted admission: sharing is confined per edge and memory
        // fragments.
        let mut s = small_scenario(5);
        s.instance.budgets.memory_bytes = 1.6e9; // tight enough to matter
        let whole = solve(&split_edges(&s.instance, 1)).unwrap();
        let halves = solve(&split_edges(&s.instance, 2)).unwrap();
        let quarters = solve(&split_edges(&s.instance, 4)).unwrap();
        let w = |sol: &MultiEdgeSolution, n: usize| sol.weighted_admission(&split_edges(&s.instance, n));
        assert!(w(&halves, 2) <= w(&whole, 1) + 1e-9);
        assert!(w(&quarters, 4) <= w(&halves, 2) + 1e-9);
    }

    #[test]
    fn placement_prefers_the_edge_with_sharing() {
        // Two tasks in the same group with identical requirements: once
        // the first lands on an edge, the second should co-locate (its
        // memory increment there is near zero).
        let mut s = small_scenario(2);
        s.instance.tasks[1].group = s.instance.tasks[0].group;
        s.instance.tasks[1].min_accuracy = s.instance.tasks[0].min_accuracy;
        s.instance.tasks[1].max_latency = s.instance.tasks[0].max_latency;
        s.instance.options[1] = s.instance.options[0].clone();
        let multi = split_edges(&s.instance, 2);
        let sol = solve(&multi).unwrap();
        let (e0, _) = sol.placement[0].unwrap();
        let (e1, _) = sol.placement[1].unwrap();
        assert_eq!(e0, e1, "identical tasks must co-locate for sharing");
        // The other edge stays empty.
        assert_eq!(sol.edge_memory[1 - e0], 0.0);
    }

    #[test]
    fn no_edges_is_an_error() {
        let s = small_scenario(1);
        let multi = MultiEdgeInstance { template: s.instance.clone(), edges: vec![] };
        assert!(solve(&multi).is_err());
    }

    #[test]
    fn per_edge_compute_is_enforced() {
        let mut s = small_scenario(5);
        s.instance.budgets.compute_seconds = 0.08; // tiny fleet compute
        let multi = split_edges(&s.instance, 2);
        let sol = solve(&multi).unwrap();
        assert!(verify(&multi, &sol).is_empty());
        for (e, cap) in multi.edges.iter().enumerate() {
            assert!(sol.edge_compute[e] <= cap.compute_seconds + 1e-12);
        }
    }
}

//! Offloaded CV inference tasks and their requirements.

use offloadnn_dnn::block::GroupId;
use offloadnn_radio::SnrDb;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task within one [`crate::instance::DotInstance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An input quality level `q` available to a task: the context (camera
/// resolution, lighting, semantic compression) fixes both the bits per
/// image `beta(q)` and an accuracy factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityLevel {
    /// Quality in `(0, 1]`; 1 is full sensor quality.
    pub quality: f64,
    /// Bits transmitted per image at this quality (`beta(q)`).
    pub bits: f64,
}

impl QualityLevel {
    /// The Table IV setting: full quality, 350 kbit per image.
    pub fn table_iv() -> Self {
        Self { quality: 1.0, bits: 350e3 }
    }
}

/// One offloaded CV task (`tau`) with its requirements (Sec. III-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Identifier (position in the instance's task vector).
    pub id: TaskId,
    /// Human-readable name (usually the target object class).
    pub name: String,
    /// Fine-tuning group the task belongs to (tasks in the same group can
    /// share fine-tuned blocks).
    pub group: GroupId,
    /// Priority `p_tau` in `[0, 1]` (1 = most important).
    pub priority: f64,
    /// Request rate `lambda_tau` in inference requests per second.
    pub request_rate: f64,
    /// Minimum tolerable accuracy `A_tau` (top-1).
    pub min_accuracy: f64,
    /// Maximum tolerable end-to-end latency `L_tau` in seconds.
    pub max_latency: f64,
    /// Average SNR `sigma_tau` of the devices offloading the task.
    pub snr: SnrDb,
    /// Available input quality levels `Q_tau`.
    pub qualities: Vec<QualityLevel>,
    /// Task-specific difficulty offset for the accuracy model.
    pub difficulty: f64,
}

impl Task {
    /// Validates the requirement ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.priority) {
            return Err(format!("{}: priority {} outside [0,1]", self.id, self.priority));
        }
        if self.request_rate <= 0.0 {
            return Err(format!("{}: request rate must be positive", self.id));
        }
        if !(0.0..=1.0).contains(&self.min_accuracy) {
            return Err(format!("{}: accuracy bound {} outside [0,1]", self.id, self.min_accuracy));
        }
        if self.max_latency <= 0.0 {
            return Err(format!("{}: latency bound must be positive", self.id));
        }
        if self.qualities.is_empty() {
            return Err(format!("{}: task needs at least one quality level", self.id));
        }
        for q in &self.qualities {
            if !(q.quality > 0.0 && q.quality <= 1.0) || q.bits <= 0.0 {
                return Err(format!("{}: malformed quality level", self.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task {
            id: TaskId(0),
            name: "cars".into(),
            group: GroupId(0),
            priority: 0.8,
            request_rate: 5.0,
            min_accuracy: 0.9,
            max_latency: 0.2,
            snr: SnrDb(0.0),
            qualities: vec![QualityLevel::table_iv()],
            difficulty: 0.0,
        }
    }

    #[test]
    fn valid_task_passes() {
        assert!(task().validate().is_ok());
    }

    #[test]
    fn invalid_fields_rejected() {
        let mut t = task();
        t.priority = 1.5;
        assert!(t.validate().unwrap_err().contains("priority"));

        let mut t = task();
        t.request_rate = 0.0;
        assert!(t.validate().unwrap_err().contains("request rate"));

        let mut t = task();
        t.min_accuracy = -0.1;
        assert!(t.validate().unwrap_err().contains("accuracy"));

        let mut t = task();
        t.max_latency = 0.0;
        assert!(t.validate().unwrap_err().contains("latency"));

        let mut t = task();
        t.qualities.clear();
        assert!(t.validate().unwrap_err().contains("quality"));

        let mut t = task();
        t.qualities[0].quality = 0.0;
        assert!(t.validate().unwrap_err().contains("quality"));
    }

    #[test]
    fn table_iv_quality() {
        let q = QualityLevel::table_iv();
        assert_eq!(q.quality, 1.0);
        assert_eq!(q.bits, 350e3);
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(3).to_string(), "t3");
    }
}

//! Exact DOT solver: exhaustive traversal of the weighted tree.
//!
//! Every branch — a choice of one feasible vertex *or rejection* per task —
//! is enumerated with depth-first search and memory-based pruning; the
//! concave inner program is solved at each leaf (coordinate ascent) and the
//! cheapest feasible branch wins. This is the paper's "Optimum" baseline
//! of Figs. 6–8 and is only tractable for small instances, which is the
//! point: Fig. 6 contrasts its runtime against the heuristic's.
//!
//! The first tree layer is explored in parallel with scoped threads.

use crate::error::DotError;
use crate::heuristic::{finish_branch, AllocatorKind};
use crate::instance::DotInstance;
use crate::objective::DotSolution;
use crate::tree::{BranchState, WeightedTree};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of the exact solver.
///
/// ```
/// use offloadnn_core::{scenario::small_scenario, ExactSolver, OffloadnnSolver};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s = small_scenario(2);
/// let optimum = ExactSolver::new().solve(&s.instance)?;
/// let heuristic = OffloadnnSolver::new().solve(&s.instance)?;
/// assert!(optimum.cost.total() <= heuristic.cost.total() + 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExactSolver {
    /// Refuse instances implying more branches than this.
    pub branch_cap: f64,
    /// Explore the first layer with one thread per vertex.
    pub parallel: bool,
    /// Inner allocator used at the leaves.
    pub allocator: AllocatorKind,
    /// Prune subtrees whose cost lower bound (rejections committed so far
    /// plus training cost already incurred) cannot beat the incumbent.
    /// Sound because both terms only grow along a branch and the remaining
    /// terms are non-negative.
    pub bound_pruning: bool,
}

impl ExactSolver {
    /// Default configuration (cap 5e7 branches, parallel, optimal inner,
    /// bound pruning on).
    pub fn new() -> Self {
        Self {
            branch_cap: 5e7,
            parallel: true,
            allocator: AllocatorKind::CoordinateAscent,
            bound_pruning: true,
        }
    }

    /// Solves the instance to the optimum.
    ///
    /// # Errors
    ///
    /// Returns [`DotError::ExactTooLarge`] when the branch count exceeds
    /// the cap, or a validation error for malformed instances.
    pub fn solve(&self, instance: &DotInstance) -> Result<DotSolution, DotError> {
        instance.validate()?;
        let start = Instant::now();
        let tree = WeightedTree::build(instance);
        let branches = tree.num_branches();
        if branches > self.branch_cap {
            return Err(DotError::ExactTooLarge { branches, cap: self.branch_cap });
        }

        let best = Mutex::new(DotSolution::rejected(instance));

        if tree.num_layers() == 0 {
            let mut sol = best.into_inner();
            sol.solve_seconds = start.elapsed().as_secs_f64();
            return Ok(sol);
        }

        // Split the first layer's choices (each vertex + reject) across
        // threads; each worker DFSes the remaining layers.
        let first_task = tree.order[0];
        let mut first_choices: Vec<Option<usize>> = tree.cliques[0].iter().map(|&o| Some(o)).collect();
        first_choices.push(None);

        let work = |first: Option<usize>| {
            let mut choices = vec![None; instance.num_tasks()];
            let mut state = BranchState::new();
            let mut rejected_priority = 0.0;
            if let Some(o) = first {
                let blocks = &instance.options[first_task][o].path.blocks;
                if state.memory_increment(instance, blocks) > instance.budgets.memory_bytes {
                    return;
                }
                state.push(instance, blocks);
                choices[first_task] = Some(o);
            } else {
                rejected_priority = instance.tasks[first_task].priority;
            }
            // Seed the incumbent with the shared global best so bound
            // pruning bites immediately.
            let mut local_best: Option<DotSolution> = Some(best.lock().clone());
            self.dfs(instance, &tree, 1, &mut choices, &mut state, rejected_priority, &mut local_best);
            if let Some(local) = local_best {
                let mut global = best.lock();
                if local.cost.total() < global.cost.total() {
                    *global = local;
                }
            }
        };

        if self.parallel && first_choices.len() > 1 {
            std::thread::scope(|scope| {
                for &first in &first_choices {
                    scope.spawn(move || work(first));
                }
            });
        } else {
            for &first in &first_choices {
                work(first);
            }
        }

        let mut sol = best.into_inner();
        sol.solve_seconds = start.elapsed().as_secs_f64();
        Ok(sol)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        instance: &DotInstance,
        tree: &WeightedTree,
        layer: usize,
        choices: &mut Vec<Option<usize>>,
        state: &mut BranchState,
        rejected_priority: f64,
        best: &mut Option<DotSolution>,
    ) {
        if self.bound_pruning {
            // Cost lower bound of any completion of this branch: rejections
            // committed so far plus training already incurred (radio and
            // inference terms are non-negative; remaining tasks could in
            // the best case be admitted in full at zero resource cost).
            let lower = instance.alpha * rejected_priority
                + (1.0 - instance.alpha) * state.training_seconds / instance.budgets.training_seconds;
            if let Some(b) = best {
                if lower >= b.cost.total() {
                    return;
                }
            }
        }
        if layer == tree.num_layers() {
            let sol = finish_branch(instance, choices, self.allocator);
            if best.as_ref().is_none_or(|b| sol.cost.total() < b.cost.total()) {
                *best = Some(sol);
            }
            return;
        }
        let t = tree.order[layer];
        for &o in &tree.cliques[layer] {
            let blocks = &instance.options[t][o].path.blocks;
            if state.memory_bytes + state.memory_increment(instance, blocks) > instance.budgets.memory_bytes {
                continue; // memory only grows along a branch: prune
            }
            state.push(instance, blocks);
            choices[t] = Some(o);
            self.dfs(instance, tree, layer + 1, choices, state, rejected_priority, best);
            choices[t] = None;
            state.pop(instance, blocks);
        }
        // The explicit rejection child.
        self.dfs(
            instance,
            tree,
            layer + 1,
            choices,
            state,
            rejected_priority + instance.tasks[t].priority,
            best,
        );
    }
}

impl Default for ExactSolver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::OffloadnnSolver;
    use crate::instance::tests::tiny_instance;
    use crate::objective::verify;

    #[test]
    fn optimum_is_feasible_and_not_worse_than_heuristic() {
        let i = tiny_instance();
        let opt = ExactSolver::new().solve(&i).unwrap();
        let heu = OffloadnnSolver::new().solve(&i).unwrap();
        assert!(verify(&i, &opt).is_empty());
        assert!(
            opt.cost.total() <= heu.cost.total() + 1e-9,
            "optimum {} vs heuristic {}",
            opt.cost.total(),
            heu.cost.total()
        );
    }

    #[test]
    fn branch_cap_enforced() {
        let i = tiny_instance();
        let solver = ExactSolver { branch_cap: 1.0, parallel: false, ..ExactSolver::new() };
        assert!(matches!(solver.solve(&i).unwrap_err(), DotError::ExactTooLarge { .. }));
    }

    #[test]
    fn bound_pruning_preserves_the_optimum() {
        let i = tiny_instance();
        let with = ExactSolver::new().solve(&i).unwrap();
        let without = ExactSolver { bound_pruning: false, ..ExactSolver::new() }.solve(&i).unwrap();
        assert!((with.cost.total() - without.cost.total()).abs() < 1e-12);
        // Also with tight memory forcing rejections.
        let mut i2 = tiny_instance();
        i2.budgets.memory_bytes = 2.6e9;
        let with = ExactSolver::new().solve(&i2).unwrap();
        let without = ExactSolver { bound_pruning: false, ..ExactSolver::new() }.solve(&i2).unwrap();
        assert!((with.cost.total() - without.cost.total()).abs() < 1e-12);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let i = tiny_instance();
        let par = ExactSolver::new().solve(&i).unwrap();
        let ser = ExactSolver { parallel: false, ..ExactSolver::new() }.solve(&i).unwrap();
        assert!((par.cost.total() - ser.cost.total()).abs() < 1e-12);
    }

    #[test]
    fn optimum_may_reject_to_save_memory() {
        let mut i = tiny_instance();
        // Memory fits only blocks {0,1}; both tasks can share them.
        i.budgets.memory_bytes = 3.0e9;
        let sol = ExactSolver::new().solve(&i).unwrap();
        assert!(verify(&i, &sol).is_empty());
        assert_eq!(sol.admitted_tasks(), 2, "sharing lets both tasks in");
    }

    #[test]
    fn empty_instance_yields_empty_solution() {
        let mut i = tiny_instance();
        i.tasks.clear();
        i.options.clear();
        let sol = ExactSolver::new().solve(&i).unwrap();
        assert!(sol.choices.is_empty());
        assert_eq!(sol.cost.total(), 0.0);
    }
}

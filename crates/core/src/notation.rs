//! Table III of the paper: the notation, mapped to this crate's types.
//!
//! | Paper symbol | Meaning | Here |
//! |---|---|---|
//! | `tau in T` | requested tasks, `\|T\| = T` | [`crate::task::Task`] in [`crate::instance::DotInstance::tasks`] |
//! | `d in D` | dynamic DNN structures | [`offloadnn_dnn::ModelId`] (backbone) + its Table I configurations |
//! | `s^d in S^d` | block of structure `d` | [`offloadnn_dnn::BlockId`] / [`offloadnn_dnn::BlockEntry`] |
//! | `p_tau` | priority of task `tau` | [`crate::task::Task::priority`] |
//! | `pi^d_tau in Pi^d_tau` | block sequence (path) usable for `tau` | [`offloadnn_dnn::DnnPath`] inside [`crate::instance::PathOption`] |
//! | `lambda_tau` | request rate | [`crate::task::Task::request_rate`] |
//! | `A_tau` | minimum accuracy | [`crate::task::Task::min_accuracy`] |
//! | `L_tau` | maximum latency | [`crate::task::Task::max_latency`] |
//! | `Q_tau` | input quality levels | [`crate::task::Task::qualities`] |
//! | `R` | available RBs | [`crate::instance::Budgets::rbs`] |
//! | `C` | available compute time | [`crate::instance::Budgets::compute_seconds`] |
//! | `M` | available memory | [`crate::instance::Budgets::memory_bytes`] |
//! | `sigma_tau` | SNR of the task's devices | [`crate::task::Task::snr`] |
//! | `B(sigma_tau)` | bits per RB at that SNR | [`offloadnn_radio::RateModel::bits_per_rb`] |
//! | `beta(q_tau)` | bits per input image | [`crate::task::QualityLevel::bits`] |
//! | `c(s^d)` | block inference compute time | `BlockCosts::compute_seconds` (profiler), summed into [`crate::instance::PathOption::proc_seconds`] |
//! | `mu(s^d)` | block memory | [`crate::instance::DotInstance::block_memory`] |
//! | `ct(s^d, .)` | block training cost | [`crate::instance::DotInstance::block_training`] |
//! | `x^d_tau` | task-DNN mapping variable | implied by [`crate::objective::DotSolution::choices`] |
//! | `y_{pi^d_tau}` | path selection variable | [`crate::objective::DotSolution::choices`] |
//! | `z_tau` | admission ratio | [`crate::objective::DotSolution::admission`] |
//! | `r_tau` | RBs allocated | [`crate::objective::DotSolution::rbs`] |
//! | `m(s^d)` | block-in-use auxiliary | [`crate::objective::used_blocks`] |
//!
//! The constraints map as follows: (1b) memory and (1c) compute are checked
//! by [`crate::objective::verify`] via [`crate::objective::memory_bytes`] and
//! [`crate::objective::compute_usage`]; (1d)/(1e) radio by
//! [`crate::objective::radio_usage`] and the rate-support check; (1f)/(1g)
//! accuracy and latency per admitted task; (1h)/(1i) are implicit in the
//! set semantics of [`crate::objective::used_blocks`].

//! Incremental (dynamic-arrival) mode: Sec. III-B's remark.
//!
//! When new tasks arrive at an edge that already serves admitted tasks,
//! the DOT formulation extends trivially: already-deployed blocks cost
//! zero memory and zero training, and the radio/compute/memory capacities
//! are discounted by what the running tasks consume. [`DeployedState`]
//! captures a running deployment and [`residual_instance`] produces the
//! discounted instance for the newly arrived tasks.

use crate::instance::DotInstance;
use crate::objective::{self, DotSolution};
use offloadnn_dnn::block::BlockId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// What a running deployment already consumes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DeployedState {
    /// Blocks resident at the edge.
    pub blocks: HashSet<BlockId>,
    /// Memory those blocks occupy (bytes).
    pub memory_bytes: f64,
    /// Inference compute consumed by running tasks (GPU-s/s).
    pub compute_seconds: f64,
    /// Admission-weighted RBs consumed by running tasks.
    pub rbs: f64,
}

impl DeployedState {
    /// Captures the deployment of a solved instance.
    pub fn from_solution(instance: &DotInstance, sol: &DotSolution) -> Self {
        let blocks = objective::used_blocks(instance, &sol.choices, &sol.admission);
        let memory_bytes = blocks.iter().map(|&b| instance.memory_of(b)).sum();
        Self {
            blocks,
            memory_bytes,
            compute_seconds: objective::compute_usage(instance, &sol.choices, &sol.admission),
            rbs: objective::radio_usage(&sol.admission, &sol.rbs),
        }
    }

    /// Whether nothing is deployed.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Produces the residual instance for newly arrived tasks: deployed blocks
/// become free (zero memory, zero training), and every budget is
/// discounted by current consumption.
///
/// `new_tasks` must be an instance over the *same repository* (same block
/// id space) as the one `deployed` was captured from.
pub fn residual_instance(new_tasks: &DotInstance, deployed: &DeployedState) -> DotInstance {
    let mut residual = new_tasks.clone();
    for &b in &deployed.blocks {
        if (b.0 as usize) < residual.block_memory.len() {
            residual.block_memory[b.0 as usize] = 0.0;
            residual.block_training[b.0 as usize] = 0.0;
        }
    }
    residual.budgets.memory_bytes =
        (residual.budgets.memory_bytes - deployed.memory_bytes).max(f64::MIN_POSITIVE);
    residual.budgets.compute_seconds =
        (residual.budgets.compute_seconds - deployed.compute_seconds).max(f64::MIN_POSITIVE);
    residual.budgets.rbs = (residual.budgets.rbs - deployed.rbs).max(f64::MIN_POSITIVE);
    residual
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::OffloadnnSolver;
    use crate::instance::tests::tiny_instance;

    #[test]
    fn deployed_state_captures_usage() {
        let i = tiny_instance();
        let sol = OffloadnnSolver::new().solve(&i).unwrap();
        let dep = DeployedState::from_solution(&i, &sol);
        assert!(!dep.is_empty());
        assert!(dep.memory_bytes > 0.0);
        assert!(dep.compute_seconds > 0.0);
        assert!(dep.rbs > 0.0);
    }

    #[test]
    fn residual_blocks_are_free() {
        let i = tiny_instance();
        let sol = OffloadnnSolver::new().solve(&i).unwrap();
        let dep = DeployedState::from_solution(&i, &sol);
        let res = residual_instance(&i, &dep);
        for &b in &dep.blocks {
            assert_eq!(res.block_memory[b.0 as usize], 0.0);
            assert_eq!(res.block_training[b.0 as usize], 0.0);
        }
        assert!(res.budgets.memory_bytes < i.budgets.memory_bytes);
        assert!(res.budgets.rbs < i.budgets.rbs);
        assert!(res.budgets.compute_seconds < i.budgets.compute_seconds);
    }

    #[test]
    fn residual_solve_prefers_deployed_blocks() {
        // After deploying task 0's option 0 (blocks 0,1), a re-arriving
        // task can reuse them for free even under a tiny residual memory
        // budget.
        let i = tiny_instance();
        let sol = OffloadnnSolver::new().solve(&i).unwrap();
        let dep = DeployedState::from_solution(&i, &sol);
        let mut res = residual_instance(&i, &dep);
        // Keep only a sliver of fresh memory: new blocks cannot fit.
        res.budgets.memory_bytes = 1.0;
        let sol2 = OffloadnnSolver::new().solve(&res).unwrap();
        for (t, c) in sol2.choices.iter().enumerate() {
            if let Some(o) = c {
                for b in &res.options[t][*o].path.blocks {
                    assert!(dep.blocks.contains(b), "only already-deployed blocks are affordable");
                }
            }
        }
    }

    #[test]
    fn empty_deployment_is_identity_on_costs() {
        let i = tiny_instance();
        let dep = DeployedState::default();
        let res = residual_instance(&i, &dep);
        assert_eq!(res.block_memory, i.block_memory);
        assert_eq!(res.budgets.rbs, i.budgets.rbs);
    }
}

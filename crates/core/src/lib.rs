//! The DOT problem and the OffloaDNN solution strategy — the primary
//! contribution of *"OffloaDNN: Shaping DNNs for Scalable Offloading of
//! Computer Vision Tasks at the Edge"* (ICDCS 2024), reproduced in Rust.
//!
//! Given a set of CV inference tasks with accuracy/latency requirements
//! and an edge platform with limited memory, compute and radio resource
//! blocks, the DOT problem jointly decides:
//!
//! 1. which tasks to admit, and at what fractional rate (`z`);
//! 2. which dynamic-DNN *path* — a composition of shared / fine-tuned /
//!    pruned layer-blocks — serves each admitted task;
//! 3. how many RBs each task's radio slice receives (`r`).
//!
//! DOT is NP-hard (reduction from the knapsack family, see [`reduction`]);
//! [`heuristic::OffloadnnSolver`] is the paper's weighted-tree heuristic,
//! [`exact::ExactSolver`] the exhaustive optimum used as the small-scale
//! baseline.
//!
//! # Example
//!
//! ```
//! use offloadnn_core::scenario::small_scenario;
//! use offloadnn_core::heuristic::OffloadnnSolver;
//! use offloadnn_core::objective::verify;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let s = small_scenario(3);
//! let solution = OffloadnnSolver::new().solve(&s.instance)?;
//! assert!(verify(&s.instance, &solution).is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablate;
pub mod alloc;
pub mod controller;
pub mod dual;
pub mod error;
pub mod exact;
pub mod heuristic;
pub mod incremental;
pub mod instance;
pub mod metrics;
pub mod multi;
pub mod notation;
pub mod objective;
pub mod pareto;
pub mod reduction;
pub mod report;
pub mod scenario;
pub mod task;
pub mod tree;

pub use controller::{AdmissionOutcome, AdmissionRequest, Controller};
pub use error::{DotError, Violation};
pub use exact::ExactSolver;
pub use heuristic::OffloadnnSolver;
pub use instance::{Budgets, DotInstance, PathOption};
pub use metrics::SolutionSummary;
pub use objective::{evaluate, verify, CostBreakdown, DotSolution};
pub use scenario::{
    heterogeneous_snr_scenario, large_scenario, quantized_small_scenario, small_scenario, LoadLevel, Scenario,
};
pub use task::{QualityLevel, Task, TaskId};

//! Solution summaries: the normalised usage metrics the paper's figures
//! report.

use crate::instance::DotInstance;
use crate::objective::{self, DotSolution};
use serde::{Deserialize, Serialize};

/// Every quantity plotted in Figs. 7–10 for one solution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolutionSummary {
    /// Total DOT cost (1a).
    pub total_cost: f64,
    /// `sum z * p` — weighted tasks admission ratio.
    pub weighted_admission: f64,
    /// Number of tasks with `z > 0`.
    pub admitted_tasks: usize,
    /// `sum z * r / R`.
    pub radio_utilisation: f64,
    /// Memory of active blocks / `M`.
    pub memory_utilisation: f64,
    /// Training cost of active blocks / `Ct`.
    pub training_utilisation: f64,
    /// `sum z * lambda * P / C`.
    pub compute_utilisation: f64,
    /// Solver wall-clock seconds.
    pub solve_seconds: f64,
}

impl SolutionSummary {
    /// Computes the summary of a solution against its instance.
    pub fn of(instance: &DotInstance, sol: &DotSolution) -> Self {
        Self {
            total_cost: sol.cost.total(),
            weighted_admission: sol.weighted_admission(instance),
            admitted_tasks: sol.admitted_tasks(),
            radio_utilisation: objective::radio_usage(&sol.admission, &sol.rbs) / instance.budgets.rbs,
            memory_utilisation: objective::memory_bytes(instance, &sol.choices, &sol.admission)
                / instance.budgets.memory_bytes,
            training_utilisation: objective::training_seconds(instance, &sol.choices, &sol.admission)
                / instance.budgets.training_seconds,
            compute_utilisation: objective::compute_usage(instance, &sol.choices, &sol.admission)
                / instance.budgets.compute_seconds,
            solve_seconds: sol.solve_seconds,
        }
    }

    /// Renders as a single benchmark-output row.
    pub fn row(&self) -> String {
        format!(
            "cost={:.4} w_adm={:.3} admitted={} rb={:.3} mem={:.3} train={:.3} compute={:.3} t={:.4}s",
            self.total_cost,
            self.weighted_admission,
            self.admitted_tasks,
            self.radio_utilisation,
            self.memory_utilisation,
            self.training_utilisation,
            self.compute_utilisation,
            self.solve_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::OffloadnnSolver;
    use crate::instance::tests::tiny_instance;

    #[test]
    fn summary_fields_consistent() {
        let i = tiny_instance();
        let sol = OffloadnnSolver::new().solve(&i).unwrap();
        let s = SolutionSummary::of(&i, &sol);
        assert!((s.total_cost - sol.cost.total()).abs() < 1e-12);
        assert_eq!(s.admitted_tasks, 2);
        assert!(s.radio_utilisation > 0.0 && s.radio_utilisation <= 1.0);
        assert!(s.memory_utilisation > 0.0 && s.memory_utilisation <= 1.0);
        assert!(s.row().contains("admitted=2"));
    }

    #[test]
    fn rejected_solution_summary_is_zero_usage() {
        let i = tiny_instance();
        let sol = crate::objective::DotSolution::rejected(&i);
        let s = SolutionSummary::of(&i, &sol);
        assert_eq!(s.admitted_tasks, 0);
        assert_eq!(s.radio_utilisation, 0.0);
        assert_eq!(s.memory_utilisation, 0.0);
    }
}

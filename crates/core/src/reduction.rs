//! Executable form of the NP-hardness proof (Proposition 1).
//!
//! The paper proves DOT NP-hard by reduction from the binary knapsack
//! family. This module *constructs* that reduction: a 0/1 knapsack
//! instance maps to a DOT instance in which (i) `alpha = 1`, so only the
//! priority-weighted admission matters, and (ii) each item becomes a task
//! whose single path option uses one private block of memory equal to the
//! item weight. Because memory is charged in full for any `z > 0` while
//! the admission benefit is linear in `z`, every optimal solution is
//! integral — solving the DOT instance exactly solves the knapsack.
//!
//! Tests cross-check [`ExactSolver`](crate::exact::ExactSolver) against a
//! textbook dynamic program.

use crate::instance::{Budgets, DotInstance, PathOption};
use crate::task::{QualityLevel, Task, TaskId};
use offloadnn_dnn::block::{BlockId, GroupId, ModelId};
use offloadnn_dnn::config::{Config, PathConfig};
use offloadnn_dnn::repository::DnnPath;
use offloadnn_radio::{RateModel, SnrDb};
use serde::{Deserialize, Serialize};

/// A 0/1 knapsack item.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnapsackItem {
    /// Item value (positive).
    pub value: f64,
    /// Item weight (positive integer, for the DP cross-check).
    pub weight: u32,
}

/// Maps a knapsack instance to a DOT instance whose optimal objective
/// encodes the knapsack optimum.
///
/// # Panics
///
/// Panics if `items` is empty or any value/weight is non-positive.
pub fn knapsack_to_dot(items: &[KnapsackItem], capacity: u32) -> DotInstance {
    assert!(!items.is_empty(), "need at least one item");
    let v_max = items.iter().map(|i| i.value).fold(0.0f64, f64::max);
    assert!(v_max > 0.0, "values must be positive");

    let tasks: Vec<Task> = items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            assert!(item.value > 0.0 && item.weight > 0, "malformed item {i}");
            Task {
                id: TaskId(i as u32),
                name: format!("item{i}"),
                group: GroupId(i as u32),
                priority: item.value / v_max,
                request_rate: 1.0,
                min_accuracy: 0.5,
                max_latency: 1.0,
                snr: SnrDb(0.0),
                qualities: vec![QualityLevel { quality: 1.0, bits: 1.0 }],
                difficulty: 0.0,
            }
        })
        .collect();

    // One private block per item; memory = weight.
    let options: Vec<Vec<PathOption>> = items
        .iter()
        .enumerate()
        .map(|(i, _)| {
            vec![PathOption {
                path: DnnPath {
                    model: ModelId(0),
                    group: GroupId(i as u32),
                    config: PathConfig { config: Config::A, pruned: false },
                    blocks: vec![BlockId(i as u32)],
                },
                quality: QualityLevel { quality: 1.0, bits: 1.0 },
                accuracy: 1.0,
                proc_seconds: 0.0,
                training_seconds: 0.0,
                label: format!("item{i}"),
            }]
        })
        .collect();

    DotInstance {
        tasks,
        options,
        block_memory: items.iter().map(|i| i.weight as f64).collect(),
        block_training: vec![0.0; items.len()],
        rate: RateModel::table_iv(),
        budgets: Budgets {
            rbs: 1e9,
            compute_seconds: 1e9,
            training_seconds: 1.0,
            memory_bytes: capacity as f64,
        },
        alpha: 1.0,
    }
}

/// Recovers the knapsack value from a DOT solution of a
/// [`knapsack_to_dot`] instance.
pub fn knapsack_value(items: &[KnapsackItem], admission: &[f64]) -> f64 {
    items.iter().zip(admission).map(|(i, &z)| z * i.value).sum()
}

/// Textbook 0/1 knapsack dynamic program (for cross-checking).
pub fn knapsack_dp(items: &[KnapsackItem], capacity: u32) -> f64 {
    let cap = capacity as usize;
    let mut best = vec![0.0f64; cap + 1];
    for item in items {
        let w = item.weight as usize;
        for c in (w..=cap).rev() {
            let candidate = best[c - w] + item.value;
            if candidate > best[c] {
                best[c] = candidate;
            }
        }
    }
    best[cap]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSolver;
    use crate::heuristic::OffloadnnSolver;

    fn items_a() -> Vec<KnapsackItem> {
        vec![
            KnapsackItem { value: 60.0, weight: 10 },
            KnapsackItem { value: 100.0, weight: 20 },
            KnapsackItem { value: 120.0, weight: 30 },
        ]
    }

    #[test]
    fn dp_matches_textbook_example() {
        // Classic: capacity 50 -> 100 + 120 = 220.
        assert_eq!(knapsack_dp(&items_a(), 50), 220.0);
        assert_eq!(knapsack_dp(&items_a(), 10), 60.0);
        assert_eq!(knapsack_dp(&items_a(), 9), 0.0);
    }

    #[test]
    fn exact_dot_solves_knapsack() {
        let items = items_a();
        let dot = knapsack_to_dot(&items, 50);
        let sol = ExactSolver::new().solve(&dot).unwrap();
        let value = knapsack_value(&items, &sol.admission);
        assert!((value - 220.0).abs() < 1e-6, "DOT recovered {value}");
        // Optimal solutions are integral.
        for &z in &sol.admission {
            assert!(z < 1e-9 || (z - 1.0).abs() < 1e-9, "non-integral z {z}");
        }
    }

    #[test]
    fn heuristic_dot_is_a_knapsack_heuristic() {
        // Priority-greedy on the reduction = value-greedy knapsack: it may
        // be suboptimal but never infeasible nor better than the DP.
        let items = items_a();
        let dot = knapsack_to_dot(&items, 50);
        let sol = OffloadnnSolver::new().solve(&dot).unwrap();
        let value = knapsack_value(&items, &sol.admission);
        assert!(value <= 220.0 + 1e-6);
        let weight: f64 =
            items.iter().zip(&sol.admission).filter(|(_, &z)| z > 0.0).map(|(i, _)| i.weight as f64).sum();
        assert!(weight <= 50.0);
    }

    #[test]
    fn random_instances_agree_with_dp() {
        // Deterministic pseudo-random small instances.
        for seed in 0..10u64 {
            let items: Vec<KnapsackItem> = (0..8)
                .map(|i| {
                    let x = (seed * 7919 + i * 104729) % 97;
                    KnapsackItem { value: 1.0 + (x % 50) as f64, weight: 1 + (x % 13) as u32 }
                })
                .collect();
            let capacity = 25;
            let dp = knapsack_dp(&items, capacity);
            let dot = knapsack_to_dot(&items, capacity);
            let sol = ExactSolver::new().solve(&dot).unwrap();
            let got = knapsack_value(&items, &sol.admission);
            assert!((got - dp).abs() < 1e-6, "seed {seed}: DOT {got} vs DP {dp}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_items_panic() {
        knapsack_to_dot(&[], 10);
    }
}

//! The OffloaDNN controller of Fig. 4, run *over time*: mobile devices
//! submit task admission requests (step 1), the controller solves DOT
//! against the current residual capacity (steps 2–3), allocates slices and
//! deploys the selected blocks (steps 4–5), notifies admitted rates
//! (step 6) — and, beyond the paper's one-shot formulation, handles later
//! rounds of arrivals and departures through the incremental extension of
//! Sec. III-B.

use crate::error::DotError;
use crate::heuristic::OffloadnnSolver;
use crate::incremental::{residual_instance, DeployedState};
use crate::instance::{Budgets, DotInstance, PathOption};
use crate::objective::verify;
use crate::task::{Task, TaskId};
use offloadnn_dnn::block::BlockId;
use offloadnn_radio::RateModel;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One admission request: a task plus its candidate path options (the DNN
/// availability of step 2, already profiled).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionRequest {
    /// The requested task.
    pub task: Task,
    /// Candidate (path, quality) options for it.
    pub options: Vec<PathOption>,
}

/// A task currently served by the edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveTask {
    /// The task definition.
    pub task: Task,
    /// The deployed option.
    pub option: PathOption,
    /// Granted admission ratio.
    pub admission: f64,
    /// Granted RB allocation (real-valued; ceil for the physical slice).
    pub rbs: f64,
}

impl ActiveTask {
    /// Admission-weighted RB usage of this task.
    pub fn radio_usage(&self) -> f64 {
        self.admission * self.rbs
    }

    /// Compute usage of this task in GPU-s/s.
    pub fn compute_usage(&self) -> f64 {
        self.admission * self.task.request_rate * self.option.proc_seconds
    }
}

/// Outcome of one admission round.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionOutcome {
    /// Tasks admitted this round, with their grants.
    pub admitted: Vec<ActiveTask>,
    /// Tasks rejected this round.
    pub rejected: Vec<TaskId>,
}

impl AdmissionOutcome {
    /// Total number of requests this outcome decides.
    pub fn total(&self) -> usize {
        self.admitted.len() + self.rejected.len()
    }

    /// Conservation check: every one of `submitted` requests received
    /// exactly one verdict. Service runtimes assert this after each round
    /// so no request is ever silently dropped.
    pub fn accounts_for(&self, submitted: usize) -> bool {
        self.total() == submitted
    }
}

/// A cheap, single-pass summary of a [`Controller`]'s state, for hot
/// paths that previously had to clone [`Controller::active`] or
/// materialise [`Controller::deployed`] (which allocates a block set)
/// just to read a few aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerSnapshot {
    /// Number of tasks currently served.
    pub active_tasks: usize,
    /// Number of distinct blocks resident at the edge.
    pub deployed_blocks: usize,
    /// Memory those blocks occupy (bytes).
    pub memory_bytes: f64,
    /// Inference compute consumed by running tasks (GPU-s/s).
    pub compute_seconds: f64,
    /// Admission-weighted RBs consumed by running tasks.
    pub rbs: f64,
    /// Remaining capacity after the above consumption.
    pub headroom: Budgets,
}

/// The long-running controller state.
#[derive(Debug, Clone)]
pub struct Controller {
    /// Full platform budgets (not residual).
    budgets: Budgets,
    rate: RateModel,
    alpha: f64,
    block_memory: Vec<f64>,
    block_training: Vec<f64>,
    solver: OffloadnnSolver,
    active: Vec<ActiveTask>,
}

impl Controller {
    /// Creates a controller from a template instance (which supplies the
    /// budgets, the rate model and the per-block cost tables — the
    /// VIM/vRAN state of step 2).
    pub fn new(template: &DotInstance, solver: OffloadnnSolver) -> Self {
        Self {
            budgets: template.budgets,
            rate: template.rate,
            alpha: template.alpha,
            block_memory: template.block_memory.clone(),
            block_training: template.block_training.clone(),
            solver,
            active: Vec::new(),
        }
    }

    /// Tasks currently served.
    pub fn active(&self) -> &[ActiveTask] {
        &self.active
    }

    /// The blocks currently resident at the edge and the resources the
    /// running tasks consume.
    pub fn deployed(&self) -> DeployedState {
        let mut blocks: HashSet<BlockId> = HashSet::new();
        let (mut compute, mut rbs) = (0.0, 0.0);
        for a in &self.active {
            blocks.extend(a.option.path.blocks.iter().copied());
            compute += a.compute_usage();
            rbs += a.radio_usage();
        }
        let memory_bytes = blocks.iter().map(|b| self.block_memory[b.0 as usize]).sum();
        DeployedState { blocks, memory_bytes, compute_seconds: compute, rbs }
    }

    /// Single-pass state summary without handing out the block set or the
    /// active-task list. Cost is `O(active · blocks-per-path)` with one
    /// small scratch set and no per-call `Vec`/`String` clones.
    pub fn snapshot(&self) -> ControllerSnapshot {
        let mut blocks: HashSet<BlockId> = HashSet::new();
        let (mut compute, mut rbs) = (0.0, 0.0);
        for a in &self.active {
            blocks.extend(a.option.path.blocks.iter().copied());
            compute += a.compute_usage();
            rbs += a.radio_usage();
        }
        let memory_bytes: f64 = blocks.iter().map(|b| self.block_memory[b.0 as usize]).sum();
        ControllerSnapshot {
            active_tasks: self.active.len(),
            deployed_blocks: blocks.len(),
            memory_bytes,
            compute_seconds: compute,
            rbs,
            headroom: Budgets {
                rbs: (self.budgets.rbs - rbs).max(0.0),
                compute_seconds: (self.budgets.compute_seconds - compute).max(0.0),
                training_seconds: self.budgets.training_seconds,
                memory_bytes: (self.budgets.memory_bytes - memory_bytes).max(0.0),
            },
        }
    }

    /// Processes one round of admission requests against the residual
    /// capacity. Already-deployed blocks are free for the newcomers.
    ///
    /// # Errors
    ///
    /// Returns a [`DotError`] if the assembled instance is malformed, and
    /// panics never: an infeasible round admits nothing.
    pub fn submit(&mut self, requests: Vec<AdmissionRequest>) -> Result<AdmissionOutcome, DotError> {
        let _round = offloadnn_telemetry::span!("solver.round");
        let instance = DotInstance {
            tasks: requests.iter().map(|r| r.task.clone()).collect(),
            options: requests.iter().map(|r| r.options.clone()).collect(),
            block_memory: self.block_memory.clone(),
            block_training: self.block_training.clone(),
            rate: self.rate,
            budgets: self.budgets,
            alpha: self.alpha,
        };
        let residual = residual_instance(&instance, &self.deployed());
        let sol = self.solver.solve(&residual)?;
        debug_assert!(verify(&residual, &sol).is_empty());

        let mut admitted = Vec::new();
        let mut rejected = Vec::new();
        for (i, req) in requests.into_iter().enumerate() {
            match sol.choices[i] {
                Some(o) if sol.admission[i] > 0.0 => {
                    let active = ActiveTask {
                        option: req.options[o].clone(),
                        task: req.task,
                        admission: sol.admission[i],
                        rbs: sol.rbs[i],
                    };
                    self.active.push(active.clone());
                    admitted.push(active);
                }
                _ => rejected.push(req.task.id),
            }
        }
        Ok(AdmissionOutcome { admitted, rejected })
    }

    /// Attempts to admit `task` by re-validating a previously solved plan
    /// (`options[option]` at admission fraction `admission` with `rbs`
    /// radio blocks) against the *live* ledger, instead of running the
    /// solver. This is the validation-on-hit half of the plan cache: the
    /// cached plan is only a proposal, and every constraint the verifier
    /// checks for a fresh solve — accuracy (1f), rate support (1e),
    /// latency (1g) and the three budget caps with block sharing — is
    /// re-checked here against the current deployment before any budget
    /// moves.
    ///
    /// On success the task is activated exactly as [`Controller::submit`]
    /// would have activated it (same `ActiveTask`, same budget deltas) and
    /// the grant is returned. On any failed check the controller is left
    /// untouched and `None` is returned; the caller falls through to a
    /// full solve.
    pub fn try_apply_plan(
        &mut self,
        task: Task,
        options: &[PathOption],
        option: usize,
        admission: f64,
        rbs: f64,
    ) -> Option<ActiveTask> {
        let tol = crate::objective::TOLERANCE;
        let opt = options.get(option)?;
        // Malformed plans (stale across catalog changes) must not panic.
        if opt.path.blocks.iter().any(|b| (b.0 as usize) >= self.block_memory.len()) {
            return None;
        }
        if !(admission > 0.0 && admission <= 1.0 + tol && rbs.is_finite()) || rbs < 0.0 {
            return None;
        }
        // (1f) accuracy.
        if opt.accuracy < task.min_accuracy - tol {
            return None;
        }
        let bits_per_rb = self.rate.bits_per_rb(task.snr);
        // (1e) rate support: z * lambda * beta <= B * r.
        if admission * task.request_rate * opt.quality.bits > bits_per_rb * rbs * (1.0 + 1e-6) {
            return None;
        }
        // (1g) latency: beta/(B r) + P <= L.
        let latency = opt.quality.bits / (bits_per_rb * rbs.max(f64::MIN_POSITIVE)) + opt.proc_seconds;
        if latency > task.max_latency * (1.0 + 1e-6) {
            return None;
        }
        // Budget caps against the live deployment, counting shared blocks
        // once — exactly how `verify` scores a fresh solution.
        let deployed = self.deployed();
        if deployed.rbs + admission * rbs > self.budgets.rbs * (1.0 + tol) {
            return None;
        }
        let compute = admission * task.request_rate * opt.proc_seconds;
        if deployed.compute_seconds + compute > self.budgets.compute_seconds * (1.0 + tol) {
            return None;
        }
        let new_memory: f64 = opt
            .path
            .blocks
            .iter()
            .filter(|b| !deployed.blocks.contains(b))
            .map(|b| self.block_memory[b.0 as usize])
            .sum();
        if deployed.memory_bytes + new_memory > self.budgets.memory_bytes * (1.0 + tol) {
            return None;
        }
        let active = ActiveTask { option: opt.clone(), task, admission, rbs };
        self.active.push(active.clone());
        Some(active)
    }

    /// Removes departed tasks; their exclusive resources are freed (blocks
    /// still used by other tasks stay resident). Returns how many active
    /// tasks were actually removed, so callers can tell a real release
    /// from a departure for a task this controller never held (which a
    /// resharding service runtime needs to detect and buffer).
    pub fn release(&mut self, departed: &[TaskId]) -> usize {
        let before = self.active.len();
        self.active.retain(|a| !departed.contains(&a.task.id));
        before - self.active.len()
    }

    /// Replaces the full platform budgets (an elastic-scaling repartition:
    /// the shard's slice of the edge changed size). Already-active tasks
    /// keep their grants; only *future* rounds solve against the new
    /// capacity, so a shrink can leave the controller transiently above
    /// budget until tasks depart.
    pub fn set_budgets(&mut self, budgets: Budgets) {
        self.budgets = budgets;
    }

    /// Adopts tasks admitted by another controller (keyspace handoff
    /// during resharding). Their grants are preserved verbatim; they
    /// consume residual capacity here exactly as if this controller had
    /// admitted them.
    pub fn adopt(&mut self, tasks: Vec<ActiveTask>) {
        self.active.extend(tasks);
    }

    /// Extracts and returns every active task matching `predicate`,
    /// removing it from this controller (the outbound half of a keyspace
    /// handoff).
    pub fn extract_if(&mut self, mut predicate: impl FnMut(&ActiveTask) -> bool) -> Vec<ActiveTask> {
        let mut extracted = Vec::new();
        let mut kept = Vec::with_capacity(self.active.len());
        for task in self.active.drain(..) {
            if predicate(&task) {
                extracted.push(task);
            } else {
                kept.push(task);
            }
        }
        self.active = kept;
        extracted
    }

    /// Takes the whole active set, leaving the controller empty (a
    /// retiring shard hands everything over).
    pub fn take_active(&mut self) -> Vec<ActiveTask> {
        std::mem::take(&mut self.active)
    }

    /// Re-optimises *all* active tasks from scratch (a global re-plan, as
    /// opposed to the incremental admission of [`Controller::submit`]).
    /// Incremental rounds are cheap but path-committed; a periodic global
    /// re-plan can undo earlier commitments that have become suboptimal as
    /// the task mix changed.
    ///
    /// Requires the original option lists, which incremental admission does
    /// not retain in full; pass them per active task, aligned with
    /// [`Controller::active`].
    ///
    /// # Errors
    ///
    /// Returns a [`DotError`] if the assembled instance is malformed. On
    /// error the current deployment is left untouched.
    pub fn replan(&mut self, options: Vec<Vec<PathOption>>) -> Result<AdmissionOutcome, DotError> {
        let requests: Vec<AdmissionRequest> = self
            .active
            .iter()
            .zip(options)
            .map(|(a, opts)| AdmissionRequest { task: a.task.clone(), options: opts })
            .collect();
        let previous = std::mem::take(&mut self.active);
        match self.submit(requests) {
            Ok(outcome) => Ok(outcome),
            Err(e) => {
                self.active = previous;
                Err(e)
            }
        }
    }

    /// Residual capacity headroom, for observability dashboards.
    pub fn headroom(&self) -> Budgets {
        let dep = self.deployed();
        Budgets {
            rbs: (self.budgets.rbs - dep.rbs).max(0.0),
            compute_seconds: (self.budgets.compute_seconds - dep.compute_seconds).max(0.0),
            training_seconds: self.budgets.training_seconds,
            memory_bytes: (self.budgets.memory_bytes - dep.memory_bytes).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::small_scenario;

    fn requests(instance: &DotInstance, range: std::ops::Range<usize>) -> Vec<AdmissionRequest> {
        range
            .map(|t| AdmissionRequest {
                task: instance.tasks[t].clone(),
                options: instance.options[t].clone(),
            })
            .collect()
    }

    #[test]
    fn single_round_matches_direct_solve() {
        let s = small_scenario(5);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        let out = c.submit(requests(&s.instance, 0..5)).unwrap();
        assert_eq!(out.admitted.len(), 5);
        assert!(out.rejected.is_empty());
        assert_eq!(c.active().len(), 5);
    }

    #[test]
    fn two_rounds_accumulate_and_reuse() {
        let s = small_scenario(5);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        let first = c.submit(requests(&s.instance, 0..3)).unwrap();
        assert_eq!(first.admitted.len(), 3);
        let deployed_before = c.deployed();

        let second = c.submit(requests(&s.instance, 3..5)).unwrap();
        assert_eq!(second.admitted.len(), 2);
        assert_eq!(c.active().len(), 5);
        // Memory grew by at most the newcomers' exclusive blocks.
        let deployed_after = c.deployed();
        assert!(deployed_after.memory_bytes >= deployed_before.memory_bytes);
        assert!(deployed_after.blocks.len() >= deployed_before.blocks.len());
    }

    #[test]
    fn headroom_shrinks_and_recovers_on_release() {
        let s = small_scenario(4);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        let full = c.headroom();
        c.submit(requests(&s.instance, 0..4)).unwrap();
        let used = c.headroom();
        assert!(used.rbs < full.rbs);
        assert!(used.memory_bytes < full.memory_bytes);

        let ids: Vec<TaskId> = c.active().iter().map(|a| a.task.id).collect();
        c.release(&ids);
        assert!(c.active().is_empty());
        let recovered = c.headroom();
        assert!((recovered.rbs - full.rbs).abs() < 1e-9);
        assert!((recovered.memory_bytes - full.memory_bytes).abs() < 1e-6);
    }

    #[test]
    fn shared_blocks_survive_partial_release() {
        let s = small_scenario(5);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        c.submit(requests(&s.instance, 0..5)).unwrap();
        let all_blocks = c.deployed().blocks;
        // Release task 0 only; blocks shared with survivors must remain.
        let departed = vec![c.active()[0].task.id];
        c.release(&departed);
        let remaining = c.deployed().blocks;
        for b in &remaining {
            assert!(all_blocks.contains(b));
        }
        assert!(remaining.len() <= all_blocks.len());
        assert_eq!(c.active().len(), 4);
    }

    #[test]
    fn replan_never_serves_less_than_the_incremental_state() {
        let s = small_scenario(5);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        // Admit in two waves (path-committed), then re-plan globally.
        c.submit(requests(&s.instance, 0..3)).unwrap();
        c.submit(requests(&s.instance, 3..5)).unwrap();
        let incremental_adm: f64 = c.active().iter().map(|a| a.admission * a.task.priority).sum();
        let opts: Vec<_> =
            c.active().iter().map(|a| s.instance.options[a.task.id.0 as usize].clone()).collect();
        let out = c.replan(opts).unwrap();
        let replanned_adm: f64 = out.admitted.iter().map(|a| a.admission * a.task.priority).sum();
        assert!(replanned_adm >= incremental_adm - 1e-9);
        assert_eq!(c.active().len(), out.admitted.len());
    }

    #[test]
    fn failed_replan_preserves_deployment() {
        let s = small_scenario(3);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        c.submit(requests(&s.instance, 0..3)).unwrap();
        let before = c.active().len();
        // Malformed options: a block id with no cost entry.
        let mut bad =
            vec![s.instance.options[0].clone(), s.instance.options[1].clone(), s.instance.options[2].clone()];
        bad[0][0].path.blocks.push(offloadnn_dnn::BlockId(9_999_999));
        assert!(c.replan(bad).is_err());
        assert_eq!(c.active().len(), before, "deployment untouched on error");
    }

    #[test]
    fn snapshot_agrees_with_deployed_and_headroom() {
        let s = small_scenario(5);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        let out = c.submit(requests(&s.instance, 0..5)).unwrap();
        assert!(out.accounts_for(5));
        let snap = c.snapshot();
        let dep = c.deployed();
        let head = c.headroom();
        assert_eq!(snap.active_tasks, c.active().len());
        assert_eq!(snap.deployed_blocks, dep.blocks.len());
        assert!((snap.memory_bytes - dep.memory_bytes).abs() < 1e-9);
        assert!((snap.compute_seconds - dep.compute_seconds).abs() < 1e-12);
        assert!((snap.rbs - dep.rbs).abs() < 1e-12);
        assert!((snap.headroom.rbs - head.rbs).abs() < 1e-12);
        assert!((snap.headroom.memory_bytes - head.memory_bytes).abs() < 1e-6);
    }

    #[test]
    fn empty_controller_snapshot_is_all_headroom() {
        let s = small_scenario(3);
        let c = Controller::new(&s.instance, OffloadnnSolver::new());
        let snap = c.snapshot();
        assert_eq!(snap.active_tasks, 0);
        assert_eq!(snap.deployed_blocks, 0);
        assert_eq!(snap.rbs, 0.0);
        assert!((snap.headroom.rbs - s.instance.budgets.rbs).abs() < 1e-12);
    }

    #[test]
    fn outcome_conservation_helper_counts_both_verdicts() {
        let s = small_scenario(5);
        let mut inst = s.instance.clone();
        inst.budgets.rbs = 16.0;
        let mut c = Controller::new(&inst, OffloadnnSolver::new());
        let out = c.submit(requests(&inst, 0..5)).unwrap();
        assert!(out.accounts_for(5));
        assert_eq!(out.total(), 5);
        assert!(!out.accounts_for(4));
    }

    #[test]
    fn exhausted_capacity_rejects_newcomers() {
        let s = small_scenario(5);
        let mut inst = s.instance.clone();
        inst.budgets.rbs = 16.0; // roughly enough for three tasks' slices
        let mut c = Controller::new(&inst, OffloadnnSolver::new());
        let first = c.submit(requests(&inst, 0..3)).unwrap();
        assert!(!first.admitted.is_empty());
        // Flood with the remaining tasks; at least one must be rejected or
        // partially admitted due to the shrunken cell.
        let out = c.submit(requests(&inst, 3..5)).unwrap();
        let fully = out.admitted.iter().filter(|a| a.admission > 0.999).count();
        assert!(fully < 2 || !out.rejected.is_empty());
        // Invariant: total radio usage never exceeds the cell.
        assert!(c.deployed().rbs <= inst.budgets.rbs + 1e-9);
    }

    #[test]
    fn release_reports_how_many_tasks_it_removed() {
        let s = small_scenario(5);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        c.submit(requests(&s.instance, 0..3)).unwrap();
        let held = c.active()[0].task.id;
        assert_eq!(c.release(&[held, TaskId(999_999)]), 1, "one held, one unknown");
        assert_eq!(c.release(&[held]), 0, "already gone");
        assert_eq!(c.active().len(), 2);
    }

    #[test]
    fn extract_and_adopt_hand_tasks_over_losslessly() {
        let s = small_scenario(5);
        let mut a = Controller::new(&s.instance, OffloadnnSolver::new());
        a.submit(requests(&s.instance, 0..5)).unwrap();
        let total = a.active().len();
        let moved = a.extract_if(|t| t.task.id.0 % 2 == 0);
        assert!(!moved.is_empty());
        assert_eq!(a.active().len() + moved.len(), total);
        for t in a.active() {
            assert_eq!(t.task.id.0 % 2, 1, "extraction must be exact");
        }

        let mut b = Controller::new(&s.instance, OffloadnnSolver::new());
        let usage: f64 = moved.iter().map(ActiveTask::radio_usage).sum();
        b.adopt(moved);
        assert!((b.deployed().rbs - usage).abs() < 1e-9, "grants survive adoption verbatim");
        assert_eq!(a.active().len() + b.active().len(), total);
    }

    #[test]
    fn take_active_empties_the_controller() {
        let s = small_scenario(3);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        c.submit(requests(&s.instance, 0..3)).unwrap();
        let n = c.active().len();
        let all = c.take_active();
        assert_eq!(all.len(), n);
        assert!(c.active().is_empty());
        assert_eq!(c.snapshot().active_tasks, 0);
    }

    #[test]
    fn try_apply_plan_reproduces_the_cold_solve() {
        let s = small_scenario(5);
        let mut cold = Controller::new(&s.instance, OffloadnnSolver::new());
        let mut warm = cold.clone();
        let out = cold.submit(requests(&s.instance, 0..5)).unwrap();
        assert!(!out.admitted.is_empty());
        // Replay every grant through the validation path on the twin.
        for grant in &out.admitted {
            let t = grant.task.id.0 as usize;
            let opts = &s.instance.options[t];
            let o = opts.iter().position(|c| c == &grant.option).unwrap();
            let applied = warm
                .try_apply_plan(grant.task.clone(), opts, o, grant.admission, grant.rbs)
                .expect("fresh grant must re-validate");
            assert_eq!(&applied, grant);
        }
        let (a, b) = (cold.snapshot(), warm.snapshot());
        assert_eq!(a.active_tasks, b.active_tasks);
        assert!((a.rbs - b.rbs).abs() < 1e-12);
        assert!((a.compute_seconds - b.compute_seconds).abs() < 1e-12);
        assert!((a.memory_bytes - b.memory_bytes).abs() < 1e-6);
    }

    #[test]
    fn try_apply_plan_rejects_infeasible_proposals_untouched() {
        let s = small_scenario(3);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        let task = s.instance.tasks[0].clone();
        let opts = s.instance.options[0].clone();
        let before = c.snapshot();

        // Out-of-range option index.
        assert!(c.try_apply_plan(task.clone(), &opts, opts.len(), 1.0, 4.0).is_none());
        // Zero admission is not a plan.
        assert!(c.try_apply_plan(task.clone(), &opts, 0, 0.0, 4.0).is_none());
        // One RB cannot meet the latency bound for a full-quality image.
        assert!(c.try_apply_plan(task.clone(), &opts, 0, 1.0, 1e-3).is_none());
        // Unknown block id in a (corrupted) option must not panic.
        let mut bad = opts.clone();
        bad[0].path.blocks.push(offloadnn_dnn::BlockId(9_999_999));
        assert!(c.try_apply_plan(task.clone(), &bad, 0, 1.0, 4.0).is_none());

        assert_eq!(c.snapshot(), before, "failed applies must not move budgets");
    }

    #[test]
    fn try_apply_plan_respects_the_live_ledger() {
        let s = small_scenario(5);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        let out = c.submit(requests(&s.instance, 0..5)).unwrap();
        let grant = out.admitted[0].clone();
        let t = grant.task.id.0 as usize;
        let opts = &s.instance.options[t];
        let o = opts.iter().position(|x| x == &grant.option).unwrap();
        // Shrink the cell under the running load: the same plan that was
        // valid at mint time must now fail validation.
        let mut tight = s.instance.budgets;
        tight.rbs = c.deployed().rbs;
        c.set_budgets(tight);
        let mut fresh = grant.task.clone();
        fresh.id = TaskId(1_000);
        assert!(c.try_apply_plan(fresh, opts, o, grant.admission, grant.rbs).is_none());
    }

    #[test]
    fn set_budgets_rescopes_future_rounds() {
        let s = small_scenario(5);
        let mut c = Controller::new(&s.instance, OffloadnnSolver::new());
        let mut tight = s.instance.budgets;
        tight.rbs = 1e-6;
        tight.compute_seconds = 1e-9;
        c.set_budgets(tight);
        let out = c.submit(requests(&s.instance, 0..3)).unwrap();
        assert!(out.admitted.is_empty(), "no capacity after the shrink: {out:?}");
        assert_eq!(out.rejected.len(), 3);
    }
}

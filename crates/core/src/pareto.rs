//! Pareto analysis of a task's option space: which (path, quality)
//! configurations are efficient in the accuracy / compute-time / memory /
//! training-cost tradeoff the paper's Sec. II motivates. The weighted
//! tree only ever *selects* one option per task; this module explains the
//! shape of the space it selects from.

use crate::instance::DotInstance;
use serde::{Deserialize, Serialize};

/// One option's coordinates in the tradeoff space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Option index within the task's option list.
    pub option: usize,
    /// Attained accuracy (maximise).
    pub accuracy: f64,
    /// Inference compute time, seconds (minimise).
    pub proc_seconds: f64,
    /// Standalone path memory, bytes (minimise; sharing ignored here).
    pub memory_bytes: f64,
    /// Standalone path training cost, GPU-seconds (minimise).
    pub training_seconds: f64,
}

impl ParetoPoint {
    /// Whether `self` dominates `other`: at least as good on every axis
    /// and strictly better on one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let geq = self.accuracy >= other.accuracy
            && self.proc_seconds <= other.proc_seconds
            && self.memory_bytes <= other.memory_bytes
            && self.training_seconds <= other.training_seconds;
        let strict = self.accuracy > other.accuracy
            || self.proc_seconds < other.proc_seconds
            || self.memory_bytes < other.memory_bytes
            || self.training_seconds < other.training_seconds;
        geq && strict
    }
}

/// Extracts the tradeoff coordinates of every option of task `t`.
pub fn points(instance: &DotInstance, t: usize) -> Vec<ParetoPoint> {
    instance.options[t]
        .iter()
        .enumerate()
        .map(|(o, opt)| ParetoPoint {
            option: o,
            accuracy: opt.accuracy,
            proc_seconds: opt.proc_seconds,
            memory_bytes: opt.path.blocks.iter().map(|&b| instance.memory_of(b)).sum(),
            training_seconds: opt.training_seconds,
        })
        .collect()
}

/// The non-dominated subset, sorted by descending accuracy.
pub fn pareto_front(mut pts: Vec<ParetoPoint>) -> Vec<ParetoPoint> {
    let mut front: Vec<ParetoPoint> = Vec::new();
    pts.sort_by(|a, b| b.accuracy.total_cmp(&a.accuracy));
    for p in pts {
        if !front.iter().any(|q| q.dominates(&p)) {
            front.retain(|q| !p.dominates(q));
            front.push(p);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::small_scenario;

    fn pt(option: usize, acc: f64, proc: f64, mem: f64, train: f64) -> ParetoPoint {
        ParetoPoint { option, accuracy: acc, proc_seconds: proc, memory_bytes: mem, training_seconds: train }
    }

    #[test]
    fn dominance_is_strict_and_partial() {
        let a = pt(0, 0.9, 1.0, 1.0, 1.0);
        let b = pt(1, 0.8, 2.0, 2.0, 2.0);
        let c = pt(2, 0.95, 2.0, 1.0, 1.0); // better acc, worse proc: incomparable with a
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c) && !c.dominates(&a));
        assert!(!a.dominates(&a), "no self-domination");
    }

    #[test]
    fn front_removes_exactly_the_dominated() {
        let pts = vec![
            pt(0, 0.9, 1.0, 1.0, 1.0),
            pt(1, 0.8, 2.0, 2.0, 2.0), // dominated by 0
            pt(2, 0.95, 2.0, 1.0, 1.0),
            pt(3, 0.7, 0.5, 0.5, 0.5),
        ];
        let front = pareto_front(pts);
        let ids: Vec<usize> = front.iter().map(|p| p.option).collect();
        assert_eq!(ids, vec![2, 0, 3], "sorted by accuracy, option 1 gone");
    }

    #[test]
    fn front_of_real_task_is_nondominated_and_spans_extremes() {
        let s = small_scenario(3);
        for t in 0..3 {
            let all = points(&s.instance, t);
            let front = pareto_front(all.clone());
            assert!(!front.is_empty());
            // Pairwise non-domination within the front.
            for a in &front {
                for b in &front {
                    if a.option != b.option {
                        assert!(!a.dominates(b), "front contains dominated point");
                    }
                }
            }
            // The most accurate option is always on the front.
            let best_acc = all.iter().map(|p| p.accuracy).fold(0.0f64, f64::max);
            assert!(front.iter().any(|p| p.accuracy == best_acc));
            // And so is (some) fastest option.
            let best_proc = all.iter().map(|p| p.proc_seconds).fold(f64::INFINITY, f64::min);
            assert!(front.iter().any(|p| p.proc_seconds == best_proc));
        }
    }

    #[test]
    fn pruning_puts_points_on_the_front() {
        // The paper's Sec. II claim, executable: pruned configurations are
        // not dominated — they buy compute/memory with accuracy.
        let s = small_scenario(2);
        let front = pareto_front(points(&s.instance, 1));
        let any_pruned = front.iter().any(|p| s.instance.options[1][p.option].path.config.pruned);
        let any_unpruned = front.iter().any(|p| !s.instance.options[1][p.option].path.config.pruned);
        assert!(any_pruned && any_unpruned, "both pruned and unpruned options are efficient");
    }
}

//! The OffloaDNN heuristic (Sec. IV-B).
//!
//! Tasks are processed in descending priority order. At each layer the
//! solver takes the *leftmost* vertex of the clique — the feasible path
//! with the smallest inference compute time — that still fits the memory
//! budget given the blocks already selected (sharing counted once). The
//! admission ratios and RB allocations of the selected branch are then set
//! by the greedy priority allocator, and the DOT cost is evaluated.
//!
//! A beam-search generalisation (`beam_width > 1`) is provided as an
//! ablation of the paper's first-branch rule: it keeps the `k` partial
//! branches with the smallest accumulated inference compute time and picks
//! the cheapest complete branch by full DOT cost.

use crate::alloc::{self, AllocResult, AllocSettings, AllocTask, Order};
use crate::error::DotError;
use crate::instance::DotInstance;
use crate::objective::{evaluate, DotSolution};
use crate::tree::{BranchState, CliqueOrdering, WeightedTree};
use offloadnn_telemetry::span;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which inner allocator a solver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// Priority-ordered greedy (what the paper's OffloaDNN uses).
    GreedyPriority,
    /// Coordinate ascent to the optimum of the concave inner program.
    CoordinateAscent,
}

/// Configuration of the OffloaDNN heuristic.
///
/// ```
/// use offloadnn_core::{scenario::small_scenario, OffloadnnSolver, verify};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s = small_scenario(2);
/// let solution = OffloadnnSolver::new().solve(&s.instance)?;
/// assert!(verify(&s.instance, &solution).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadnnSolver {
    /// Number of partial branches kept per layer (1 = the paper's
    /// first-branch rule).
    pub beam_width: usize,
    /// Inner allocator.
    pub allocator: AllocatorKind,
    /// Clique vertex ordering (the paper sorts by inference compute time).
    pub ordering: CliqueOrdering,
}

impl OffloadnnSolver {
    /// The paper's configuration: first branch, compute-time ordering,
    /// greedy allocation.
    pub fn new() -> Self {
        Self {
            beam_width: 1,
            allocator: AllocatorKind::GreedyPriority,
            ordering: CliqueOrdering::ComputeTime,
        }
    }

    /// A beam-search variant keeping `k` branches.
    pub fn with_beam(k: usize) -> Self {
        Self { beam_width: k.max(1), ..Self::new() }
    }

    /// An ablation variant with a different clique ordering.
    pub fn with_ordering(ordering: CliqueOrdering) -> Self {
        Self { ordering, ..Self::new() }
    }

    /// Solves the instance.
    ///
    /// # Errors
    ///
    /// Returns a [`DotError`] if the instance is malformed.
    pub fn solve(&self, instance: &DotInstance) -> Result<DotSolution, DotError> {
        instance.validate()?;
        let start = Instant::now();
        let clique_span = span!("solver.clique");
        let tree = WeightedTree::build_with(instance, self.ordering);
        clique_span.finish();

        // Beam of partial branches: (choices per task, state, proc sum).
        struct Partial {
            choices: Vec<Option<usize>>,
            state: BranchState,
            proc_sum: f64,
        }
        let mut beam = vec![Partial {
            choices: vec![None; instance.num_tasks()],
            state: BranchState::new(),
            proc_sum: 0.0,
        }];

        let tree_span = span!("solver.tree");
        for (layer, &t) in tree.order.iter().enumerate() {
            let clique = &tree.cliques[layer];
            let mut next: Vec<Partial> = Vec::with_capacity(self.beam_width * 2);
            for partial in &beam {
                let mut extended = 0usize;
                for &o in clique {
                    let blocks = &instance.options[t][o].path.blocks;
                    let incr = partial.state.memory_increment(instance, blocks);
                    if partial.state.memory_bytes + incr > instance.budgets.memory_bytes {
                        continue; // vertex does not fit; try the next sibling
                    }
                    let mut choices = partial.choices.clone();
                    choices[t] = Some(o);
                    let mut state = partial.state.clone();
                    state.push(instance, blocks);
                    next.push(Partial {
                        choices,
                        state,
                        proc_sum: partial.proc_sum + instance.options[t][o].proc_seconds,
                    });
                    extended += 1;
                    if extended >= self.beam_width {
                        break; // the clique is sorted: further siblings only cost more
                    }
                }
                if extended == 0 {
                    // No vertex fits (or the clique is empty): reject the
                    // task on this branch and continue.
                    next.push(Partial {
                        choices: partial.choices.clone(),
                        state: partial.state.clone(),
                        proc_sum: partial.proc_sum,
                    });
                }
            }
            next.sort_by(|a, b| a.proc_sum.total_cmp(&b.proc_sum));
            next.truncate(self.beam_width);
            beam = next;
        }
        tree_span.finish();

        // Allocate and evaluate every surviving branch; keep the cheapest.
        let alloc_span = span!("solver.alloc");
        let mut best: Option<DotSolution> = None;
        for partial in &beam {
            let sol = finish_branch(instance, &partial.choices, self.allocator);
            if best.as_ref().is_none_or(|b| sol.cost.total() < b.cost.total()) {
                best = Some(sol);
            }
        }
        alloc_span.finish();
        let mut sol = best.unwrap_or_else(|| DotSolution::rejected(instance));
        sol.solve_seconds = start.elapsed().as_secs_f64();
        Ok(sol)
    }
}

impl Default for OffloadnnSolver {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds the inner-allocator inputs for the tasks that have a selected
/// option, runs the allocator, and assembles a full solution. Tasks whose
/// admission comes back zero have their choice cleared (no deployment).
pub(crate) fn finish_branch(
    instance: &DotInstance,
    choices: &[Option<usize>],
    allocator: AllocatorKind,
) -> DotSolution {
    let mut idx: Vec<usize> = Vec::new();
    let mut alloc_tasks: Vec<AllocTask> = Vec::new();
    for (t, choice) in choices.iter().enumerate() {
        if let Some(o) = choice {
            let task = &instance.tasks[t];
            let opt = &instance.options[t][*o];
            let r_lat = instance.min_rbs_latency(t, *o).expect("chosen option passed the latency filter");
            idx.push(t);
            alloc_tasks.push(AllocTask {
                priority: task.priority,
                lambda: task.request_rate,
                beta: opt.quality.bits,
                bits_per_rb: instance.bits_per_rb(t),
                r_lat,
                proc_seconds: opt.proc_seconds,
            });
        }
    }

    let settings = AllocSettings {
        alpha: instance.alpha,
        rbs: instance.budgets.rbs,
        compute: instance.budgets.compute_seconds,
    };
    let result: AllocResult = match allocator {
        AllocatorKind::GreedyPriority => alloc::greedy(&alloc_tasks, &settings, Order::Priority),
        AllocatorKind::CoordinateAscent => alloc::coordinate_ascent(&alloc_tasks, &settings),
    };

    let n = instance.num_tasks();
    let mut choices_out: Vec<Option<usize>> = vec![None; n];
    let mut admission = vec![0.0; n];
    let mut rbs = vec![0.0; n];
    for (slot, &t) in idx.iter().enumerate() {
        if result.z[slot] > 0.0 {
            choices_out[t] = choices[t];
            admission[t] = result.z[slot];
            rbs[t] = result.r[slot];
        }
    }
    let cost = evaluate(instance, &choices_out, &admission, &rbs);
    DotSolution { choices: choices_out, admission, rbs, cost, solve_seconds: 0.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::tiny_instance;
    use crate::objective::verify;

    #[test]
    fn solves_tiny_instance_feasibly() {
        let i = tiny_instance();
        let sol = OffloadnnSolver::new().solve(&i).unwrap();
        assert!(verify(&i, &sol).is_empty(), "violations: {:?}", verify(&i, &sol));
        // Plenty of resources: both tasks fully admitted.
        assert!((sol.admission[0] - 1.0).abs() < 1e-9);
        assert!((sol.admission[1] - 1.0).abs() < 1e-9);
        assert!(sol.solve_seconds >= 0.0);
    }

    #[test]
    fn picks_smallest_proc_time_vertex() {
        let i = tiny_instance();
        let sol = OffloadnnSolver::new().solve(&i).unwrap();
        // Task 1's options sorted by proc: option 1 (0.002s) first.
        assert_eq!(sol.choices[1], Some(1));
    }

    #[test]
    fn memory_pressure_forces_sibling_or_reject() {
        let mut i = tiny_instance();
        // Budget fits blocks {0,1} (3e9) but not {0,1,3} (3.25e9): task 1
        // must fall back from its preferred option 1 (block 3) to option 0
        // (blocks 0,1 - already resident, zero increment).
        i.budgets.memory_bytes = 3.1e9;
        let sol = OffloadnnSolver::new().solve(&i).unwrap();
        assert_eq!(sol.choices[0], Some(0));
        assert_eq!(sol.choices[1], Some(0), "sharing makes option 0 free");
        assert!(verify(&i, &sol).is_empty());
    }

    #[test]
    fn hopeless_memory_rejects_everything() {
        let mut i = tiny_instance();
        i.budgets.memory_bytes = 0.1e9;
        let sol = OffloadnnSolver::new().solve(&i).unwrap();
        assert_eq!(sol.admitted_tasks(), 0);
        assert!(verify(&i, &sol).is_empty());
    }

    #[test]
    fn beam_width_never_hurts() {
        let i = tiny_instance();
        let first = OffloadnnSolver::new().solve(&i).unwrap();
        let beam = OffloadnnSolver::with_beam(4).solve(&i).unwrap();
        assert!(beam.cost.total() <= first.cost.total() + 1e-9);
    }

    #[test]
    fn invalid_instance_rejected() {
        let mut i = tiny_instance();
        i.alpha = 2.0;
        assert!(OffloadnnSolver::new().solve(&i).is_err());
    }
}

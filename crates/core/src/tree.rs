//! The weighted-tree model of the DOT solution space (Sec. IV-A).
//!
//! Layers correspond to tasks in descending priority order; the clique of a
//! layer holds that task's *feasible* path options (accuracy and latency
//! honoured), sorted left-to-right by increasing inference compute time.
//! The memory and training-cost attributes are dynamic — they depend on the
//! blocks already selected by ancestor vertices — so they are tracked
//! during traversal ([`BranchState`]) rather than stored in the vertices.

use crate::instance::DotInstance;
use offloadnn_dnn::block::BlockId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How the vertices within each clique are ordered left-to-right — the
/// design choice Sec. IV-A motivates (OffloaDNN uses inference compute
/// time; the alternatives exist for the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CliqueOrdering {
    /// Increasing inference compute time (the paper's rule), with
    /// strictly-improving tie-breaks: lower training cost, then fewer
    /// input bits.
    #[default]
    ComputeTime,
    /// Increasing standalone memory footprint of the path.
    Memory,
    /// Increasing training cost.
    TrainingCost,
    /// Decreasing accuracy (most capable option first).
    AccuracyFirst,
    /// The order the options were generated in (no sorting).
    Unsorted,
}

/// The static structure of the tree: task processing order and per-layer
/// cliques.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedTree {
    /// Task indices in descending priority order (ties: input order).
    pub order: Vec<usize>,
    /// For each layer (aligned with `order`): feasible option indices of
    /// that task, ordered per the chosen [`CliqueOrdering`].
    pub cliques: Vec<Vec<usize>>,
}

impl WeightedTree {
    /// Builds the tree with the paper's compute-time clique ordering.
    pub fn build(instance: &DotInstance) -> Self {
        Self::build_with(instance, CliqueOrdering::ComputeTime)
    }

    /// Builds the tree with an explicit clique ordering.
    pub fn build_with(instance: &DotInstance, ordering: CliqueOrdering) -> Self {
        let mut order: Vec<usize> = (0..instance.num_tasks()).collect();
        order.sort_by(|&a, &b| instance.tasks[b].priority.total_cmp(&instance.tasks[a].priority));

        let path_memory = |t: usize, o: usize| -> f64 {
            instance.options[t][o].path.blocks.iter().map(|&b| instance.memory_of(b)).sum()
        };

        let cliques = order
            .iter()
            .map(|&t| {
                let mut feasible = instance.feasible_options(t);
                match ordering {
                    CliqueOrdering::ComputeTime => feasible.sort_by(|&a, &b| {
                        let (oa, ob) = (&instance.options[t][a], &instance.options[t][b]);
                        oa.proc_seconds
                            .total_cmp(&ob.proc_seconds)
                            .then(oa.training_seconds.total_cmp(&ob.training_seconds))
                            .then(oa.quality.bits.total_cmp(&ob.quality.bits))
                    }),
                    CliqueOrdering::Memory => {
                        feasible.sort_by(|&a, &b| path_memory(t, a).total_cmp(&path_memory(t, b)))
                    }
                    CliqueOrdering::TrainingCost => feasible.sort_by(|&a, &b| {
                        instance.options[t][a]
                            .training_seconds
                            .total_cmp(&instance.options[t][b].training_seconds)
                    }),
                    CliqueOrdering::AccuracyFirst => feasible.sort_by(|&a, &b| {
                        instance.options[t][b].accuracy.total_cmp(&instance.options[t][a].accuracy)
                    }),
                    CliqueOrdering::Unsorted => {}
                }
                feasible
            })
            .collect();

        Self { order, cliques }
    }

    /// Number of layers (= tasks).
    pub fn num_layers(&self) -> usize {
        self.order.len()
    }

    /// Total number of branches including the per-task "reject" choice
    /// (as a float, since it overflows quickly).
    pub fn num_branches(&self) -> f64 {
        self.cliques.iter().map(|c| c.len() as f64 + 1.0).product()
    }
}

/// Incremental memory/training accounting along one branch.
///
/// Blocks are reference-counted so the traversal can backtrack: `push`
/// charges only blocks not already used by ancestors, `pop` reverses it.
#[derive(Debug, Clone, Default)]
pub struct BranchState {
    refcount: HashMap<BlockId, u32>,
    /// Memory (bytes) of the union of blocks on the branch.
    pub memory_bytes: f64,
    /// Training cost (GPU-seconds) of the union of blocks on the branch.
    pub training_seconds: f64,
}

impl BranchState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memory the branch would grow by if `blocks` were added.
    pub fn memory_increment(&self, instance: &DotInstance, blocks: &[BlockId]) -> f64 {
        // A path never repeats a block, so no intra-path dedup is needed.
        blocks.iter().filter(|b| !self.refcount.contains_key(b)).map(|&b| instance.memory_of(b)).sum()
    }

    /// Adds a path's blocks to the branch.
    pub fn push(&mut self, instance: &DotInstance, blocks: &[BlockId]) {
        for &b in blocks {
            let count = self.refcount.entry(b).or_insert(0);
            if *count == 0 {
                self.memory_bytes += instance.memory_of(b);
                self.training_seconds += instance.training_of(b);
            }
            *count += 1;
        }
    }

    /// Removes a path's blocks from the branch (reverse of [`push`]).
    ///
    /// # Panics
    ///
    /// Panics if a block was never pushed.
    ///
    /// [`push`]: BranchState::push
    pub fn pop(&mut self, instance: &DotInstance, blocks: &[BlockId]) {
        for &b in blocks {
            let count = self.refcount.get_mut(&b).expect("pop of block that was never pushed");
            *count -= 1;
            if *count == 0 {
                self.refcount.remove(&b);
                self.memory_bytes -= instance.memory_of(b);
                self.training_seconds -= instance.training_of(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::tests::tiny_instance;
    use offloadnn_dnn::BlockId;

    #[test]
    fn order_is_by_descending_priority() {
        let i = tiny_instance();
        let t = WeightedTree::build(&i);
        assert_eq!(t.order, vec![0, 1], "task 0 has priority 0.8 > 0.5");
        assert_eq!(t.num_layers(), 2);
    }

    #[test]
    fn cliques_filter_and_sort_by_proc_time() {
        let i = tiny_instance();
        let t = WeightedTree::build(&i);
        // Task 0 (layer 0): only option 0 meets accuracy 0.85.
        assert_eq!(t.cliques[0], vec![0]);
        // Task 1: both feasible; option 1 has smaller proc time -> first.
        assert_eq!(t.cliques[1], vec![1, 0]);
    }

    #[test]
    fn branch_count_includes_reject() {
        let i = tiny_instance();
        let t = WeightedTree::build(&i);
        assert_eq!(t.num_branches(), 2.0 * 3.0);
    }

    #[test]
    fn branch_state_dedups_and_backtracks() {
        let i = tiny_instance();
        let mut st = BranchState::new();
        let a = [BlockId(0), BlockId(1)];
        let b = [BlockId(0), BlockId(2)];

        assert_eq!(st.memory_increment(&i, &a), 3e9);
        st.push(&i, &a);
        assert_eq!(st.memory_bytes, 3e9);
        assert_eq!(st.training_seconds, 100.0);

        // Block 0 already present: only block 2 counts.
        assert_eq!(st.memory_increment(&i, &b), 0.5e9);
        st.push(&i, &b);
        assert_eq!(st.memory_bytes, 3.5e9);

        st.pop(&i, &b);
        assert_eq!(st.memory_bytes, 3e9);
        st.pop(&i, &a);
        assert_eq!(st.memory_bytes, 0.0);
        assert_eq!(st.training_seconds, 0.0);
    }

    #[test]
    #[should_panic(expected = "never pushed")]
    fn pop_unknown_block_panics() {
        let i = tiny_instance();
        let mut st = BranchState::new();
        st.pop(&i, &[BlockId(0)]);
    }
}

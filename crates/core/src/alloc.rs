//! The inner allocation problem: admission ratios `z` and RB counts `r`
//! for a *fixed* choice of DNN paths (Sec. IV-B).
//!
//! Once paths are fixed, each task `t` is described by a priority `p`, a
//! request rate `lambda`, an input size `beta`, a link rate `B`, a latency
//! RB floor `r_lat` and a processing time `P`. Because the objective is
//! monotone increasing in `r`, the optimal allocation is always
//! `r(z) = max(r_lat, z*lambda*beta/B)`; substituting it leaves a
//! one-dimensional *concave* utility per task
//!
//! ```text
//! U_t(z) = alpha*p*z - (1-alpha) * ( z*r(z)/R + z*lambda*P/C )
//! ```
//!
//! coupled only through the compute budget `sum z*lambda*P <= C` (1c) and
//! the radio budget `sum z*r(z) <= R` (1d). Two solvers are provided:
//!
//! * [`greedy`] — processes tasks in a given order, giving each the
//!   largest utility-positive `z` the remaining budgets allow. With
//!   priority order this is exactly what OffloaDNN does.
//! * [`coordinate_ascent`] — iteratively re-optimises each task's `z`
//!   against the others until a fixed point; since the program is concave
//!   with convex constraints, this converges to the global optimum and is
//!   used inside the exact DOT solver.

use serde::{Deserialize, Serialize};

/// Per-task inputs of the inner problem (for its chosen path option).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocTask {
    /// Priority `p` in `[0, 1]`.
    pub priority: f64,
    /// Request rate `lambda` (requests/s).
    pub lambda: f64,
    /// Input bits per request `beta(q)`.
    pub beta: f64,
    /// Link rate per RB `B(sigma)` (bits/s).
    pub bits_per_rb: f64,
    /// Minimum RBs meeting the latency bound (`r_lat`).
    pub r_lat: f64,
    /// Processing time `P` (s/request) of the chosen path.
    pub proc_seconds: f64,
}

impl AllocTask {
    /// Compute usage per unit admission (`g = lambda * P`).
    pub fn compute_per_z(&self) -> f64 {
        self.lambda * self.proc_seconds
    }

    /// The admission level where the throughput requirement overtakes the
    /// latency floor (`z_knee = r_lat * B / (lambda * beta)`).
    pub fn knee(&self) -> f64 {
        self.r_lat * self.bits_per_rb / (self.lambda * self.beta)
    }

    /// Optimal RB count at admission `z`.
    pub fn rbs_at(&self, z: f64) -> f64 {
        if z <= 0.0 {
            return 0.0;
        }
        (z * self.lambda * self.beta / self.bits_per_rb).max(self.r_lat)
    }

    /// Admission-weighted RB usage `z * r(z)` (the (1d) term).
    pub fn radio_usage(&self, z: f64) -> f64 {
        z * self.rbs_at(z)
    }
}

/// Global parameters of the inner problem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocSettings {
    /// Objective weight `alpha`.
    pub alpha: f64,
    /// RB budget `R`.
    pub rbs: f64,
    /// Compute budget `C` (GPU-s/s).
    pub compute: f64,
}

/// Result of an inner allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocResult {
    /// Admission ratio per task, in `[0, 1]`.
    pub z: Vec<f64>,
    /// RB allocation per task (`r(z)`, zero for rejected tasks).
    pub r: Vec<f64>,
}

impl AllocResult {
    /// The allocation's contribution to the DOT objective (rejection +
    /// radio + inference terms; training/memory are fixed by the paths).
    pub fn partial_cost(&self, tasks: &[AllocTask], s: &AllocSettings) -> f64 {
        let mut cost = 0.0;
        for (t, &z) in tasks.iter().zip(&self.z) {
            cost += s.alpha * (1.0 - z) * t.priority
                + (1.0 - s.alpha) * (t.radio_usage(z) / s.rbs + z * t.compute_per_z() / s.compute);
        }
        cost
    }

    /// Total admission-weighted RB usage.
    pub fn radio_usage(&self, tasks: &[AllocTask]) -> f64 {
        tasks.iter().zip(&self.z).map(|(t, &z)| t.radio_usage(z)).sum()
    }

    /// Total compute usage.
    pub fn compute_usage(&self, tasks: &[AllocTask]) -> f64 {
        tasks.iter().zip(&self.z).map(|(t, &z)| z * t.compute_per_z()).sum()
    }
}

/// Task processing orders for [`greedy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Order {
    /// Descending priority (what OffloaDNN uses); ties keep input order.
    Priority,
    /// Descending marginal utility at `z = 0+`.
    UtilityDensity,
    /// The order the tasks were given in.
    Input,
}

/// Marginal utility of admission at `z = 0+` (regime 1, `r = r_lat`).
pub(crate) fn marginal_at_zero(t: &AllocTask, s: &AllocSettings) -> f64 {
    s.alpha * t.priority - (1.0 - s.alpha) * (t.r_lat / s.rbs + t.compute_per_z() / s.compute)
}

/// The unconstrained utility-maximising admission for one task.
pub(crate) fn best_unconstrained_z(t: &AllocTask, s: &AllocSettings) -> f64 {
    if marginal_at_zero(t, s) <= 0.0 {
        return 0.0;
    }
    let knee = t.knee();
    if knee >= 1.0 {
        // Latency floor dominates throughout: utility linear, push to 1.
        return 1.0;
    }
    // Regime 2 marginal: alpha*p - (1-alpha)*(2 z lambda beta/(B R) + g/C).
    let quad = 2.0 * t.lambda * t.beta / (t.bits_per_rb * s.rbs);
    let m2 = |z: f64| s.alpha * t.priority - (1.0 - s.alpha) * (quad * z + t.compute_per_z() / s.compute);
    if m2(knee) <= 0.0 {
        return knee.min(1.0);
    }
    let z_star = (s.alpha * t.priority / (1.0 - s.alpha) - t.compute_per_z() / s.compute) / quad;
    z_star.clamp(knee, 1.0)
}

/// Largest `z` such that `z * r(z) <= rem_r` and `z * g <= rem_c`.
pub(crate) fn budget_cap(t: &AllocTask, rem_r: f64, rem_c: f64) -> f64 {
    let g = t.compute_per_z();
    let z_c = if g > 0.0 { rem_c / g } else { f64::INFINITY };
    let knee = t.knee();
    let knee_usage = knee * t.r_lat;
    let z_r = if rem_r <= 0.0 {
        0.0
    } else if rem_r <= knee_usage {
        rem_r / t.r_lat
    } else {
        // z^2 * lambda * beta / B <= rem_r.
        (rem_r * t.bits_per_rb / (t.lambda * t.beta)).sqrt()
    };
    z_c.min(z_r).clamp(0.0, 1.0)
}

/// Greedy allocation in the given order.
///
/// Each task receives `min(best_unconstrained, budget_cap)`; budgets are
/// then decremented. Tasks whose marginal utility is negative, or whose
/// latency floor no longer fits the remaining RBs, are rejected (`z = 0`).
pub fn greedy(tasks: &[AllocTask], s: &AllocSettings, order: Order) -> AllocResult {
    let mut idx: Vec<usize> = (0..tasks.len()).collect();
    match order {
        Order::Priority => idx.sort_by(|&a, &b| tasks[b].priority.total_cmp(&tasks[a].priority)),
        Order::UtilityDensity => {
            idx.sort_by(|&a, &b| marginal_at_zero(&tasks[b], s).total_cmp(&marginal_at_zero(&tasks[a], s)))
        }
        Order::Input => {}
    }

    let mut z = vec![0.0; tasks.len()];
    let mut r = vec![0.0; tasks.len()];
    let (mut rem_r, mut rem_c) = (s.rbs, s.compute);

    for &t in &idx {
        let task = &tasks[t];
        // A slice larger than the whole cell can never be allocated: the
        // latency bound is physically unreachable.
        if task.r_lat > s.rbs {
            continue;
        }
        let zi = best_unconstrained_z(task, s).min(budget_cap(task, rem_r, rem_c));
        if zi <= 0.0 {
            continue;
        }
        z[t] = zi;
        r[t] = task.rbs_at(zi);
        rem_r -= task.radio_usage(zi);
        rem_c -= zi * task.compute_per_z();
    }
    AllocResult { z, r }
}

/// Coordinate ascent on the concave inner program: starting from the
/// priority-greedy point, repeatedly re-optimises each task's `z` holding
/// the others fixed, until no coordinate moves more than `tol`.
pub fn coordinate_ascent(tasks: &[AllocTask], s: &AllocSettings) -> AllocResult {
    let mut best = greedy(tasks, s, Order::Priority);
    let alt = greedy(tasks, s, Order::UtilityDensity);
    if alt.partial_cost(tasks, s) < best.partial_cost(tasks, s) {
        best = alt;
    }

    let tol = 1e-10;
    for _ in 0..200 {
        let mut moved = false;
        for t in 0..tasks.len() {
            let task = &tasks[t];
            let rem_r = s.rbs - (best.radio_usage(tasks) - task.radio_usage(best.z[t]));
            let rem_c = s.compute - (best.compute_usage(tasks) - best.z[t] * task.compute_per_z());
            let zi = if task.r_lat > s.rbs {
                0.0
            } else {
                best_unconstrained_z(task, s).min(budget_cap(task, rem_r, rem_c))
            };
            if (zi - best.z[t]).abs() > tol {
                best.z[t] = zi;
                best.r[t] = task.rbs_at(zi);
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_iv_task(priority: f64, lambda: f64, max_latency: f64, proc: f64) -> AllocTask {
        let beta = 350e3;
        let b = 0.35e6;
        AllocTask {
            priority,
            lambda,
            beta,
            bits_per_rb: b,
            r_lat: beta / (b * (max_latency - proc)),
            proc_seconds: proc,
        }
    }

    fn settings() -> AllocSettings {
        AllocSettings { alpha: 0.5, rbs: 50.0, compute: 2.5 }
    }

    #[test]
    fn plentiful_resources_admit_everything() {
        let tasks: Vec<AllocTask> =
            (0..5).map(|i| table_iv_task(0.8 - 0.1 * i as f64, 5.0, 0.2 + 0.1 * i as f64, 0.008)).collect();
        let res = greedy(&tasks, &settings(), Order::Priority);
        for &z in &res.z {
            assert!((z - 1.0).abs() < 1e-9, "all tasks fully admitted, got {z}");
        }
        assert!(res.radio_usage(&tasks) <= 50.0 + 1e-9);
        assert!(res.compute_usage(&tasks) <= 2.5 + 1e-9);
    }

    #[test]
    fn rbs_at_full_admission_meets_rate() {
        // At z=1 with lambda=5, each image 350kb at 0.35Mb/s: need 5 RBs.
        let t = table_iv_task(0.8, 5.0, 0.5, 0.008);
        let r = t.rbs_at(1.0);
        assert!(r >= 5.0 - 1e-12, "throughput requirement: {r}");
    }

    #[test]
    fn radio_saturation_gives_diminishing_admission() {
        // 20 tasks at 7.5 req/s need 150 admission-weighted RBs; only 100
        // available: low-priority tasks must shrink or vanish (Fig. 9).
        let tasks: Vec<AllocTask> = (0..20)
            .map(|i| table_iv_task(1.0 - 0.05 * i as f64, 7.5, 0.2 + 0.02 * i as f64, 0.008))
            .collect();
        let s = AllocSettings { alpha: 0.5, rbs: 100.0, compute: 10.0 };
        let res = greedy(&tasks, &s, Order::Priority);
        assert!(res.z[0] > 0.99, "top priority fully admitted");
        assert!(res.z[19] < res.z[0], "lowest priority squeezed");
        assert!(res.radio_usage(&tasks) <= 100.0 + 1e-6);
        // Admission must be non-increasing in priority order here (same
        // lambda, similar floors).
        for w in res.z.windows(2) {
            assert!(w[1] <= w[0] + 1e-6);
        }
    }

    #[test]
    fn compute_saturation_respected() {
        let tasks: Vec<AllocTask> = (0..4).map(|_| table_iv_task(0.9, 5.0, 0.5, 0.2)).collect();
        // Each task needs z*1.0 GPU-s/s; budget 2.0 -> only ~2 fully fit.
        let s = AllocSettings { alpha: 0.9, rbs: 1000.0, compute: 2.0 };
        let res = greedy(&tasks, &s, Order::Priority);
        assert!(res.compute_usage(&tasks) <= 2.0 + 1e-9);
        let total_z: f64 = res.z.iter().sum();
        assert!((total_z - 2.0).abs() < 1e-6, "compute-limited admission mass {total_z}");
    }

    #[test]
    fn negative_marginal_utility_rejects() {
        // Worthless task (priority ~0) with a huge resource appetite.
        let t = AllocTask {
            priority: 0.01,
            lambda: 50.0,
            beta: 350e3,
            bits_per_rb: 0.35e6,
            r_lat: 10.0,
            proc_seconds: 0.05,
        };
        let res = greedy(&[t], &settings(), Order::Priority);
        assert_eq!(res.z[0], 0.0, "admission would cost more than it gains");
    }

    #[test]
    fn coordinate_ascent_never_worse_than_greedy() {
        // Random-ish instances; ascent must match or beat greedy.
        for seed in 0..20u64 {
            let tasks: Vec<AllocTask> = (0..8)
                .map(|i| {
                    let x = ((seed * 31 + i * 17) % 97) as f64 / 97.0;
                    table_iv_task(0.2 + 0.8 * x, 2.0 + 6.0 * x, 0.2 + 0.4 * x, 0.004 + 0.02 * x)
                })
                .collect();
            let s = AllocSettings { alpha: 0.5, rbs: 40.0, compute: 0.8 };
            let g = greedy(&tasks, &s, Order::Priority);
            let c = coordinate_ascent(&tasks, &s);
            assert!(
                c.partial_cost(&tasks, &s) <= g.partial_cost(&tasks, &s) + 1e-9,
                "seed {seed}: ascent {} worse than greedy {}",
                c.partial_cost(&tasks, &s),
                g.partial_cost(&tasks, &s)
            );
            assert!(c.radio_usage(&tasks) <= s.rbs + 1e-6);
            assert!(c.compute_usage(&tasks) <= s.compute + 1e-6);
        }
    }

    #[test]
    fn latency_floor_honoured() {
        // Tight latency: needs 20 RBs minimum; only 10 available -> reject.
        let t = AllocTask {
            priority: 1.0,
            lambda: 1.0,
            beta: 350e3,
            bits_per_rb: 0.35e6,
            r_lat: 20.0,
            proc_seconds: 0.001,
        };
        let s = AllocSettings { alpha: 0.5, rbs: 10.0, compute: 10.0 };
        let res = greedy(&[t], &s, Order::Priority);
        assert_eq!(res.z[0], 0.0);
        assert_eq!(res.r[0], 0.0);
    }

    #[test]
    fn allocated_rbs_meet_both_floors() {
        let tasks: Vec<AllocTask> =
            (0..5).map(|i| table_iv_task(0.8 - 0.1 * i as f64, 5.0, 0.2 + 0.1 * i as f64, 0.008)).collect();
        let res = greedy(&tasks, &settings(), Order::Priority);
        for (t, (&z, &r)) in tasks.iter().zip(res.z.iter().zip(&res.r)) {
            if z > 0.0 {
                assert!(r >= t.r_lat - 1e-12, "latency floor");
                assert!(r * t.bits_per_rb >= z * t.lambda * t.beta - 1e-6, "rate support (1e)");
            }
        }
    }

    #[test]
    fn knee_math_is_consistent() {
        let t = table_iv_task(0.8, 5.0, 0.4, 0.01);
        let knee = t.knee();
        // At the knee both regimes give the same r.
        assert!((t.rbs_at(knee) - t.r_lat).abs() < 1e-9);
        // Just above it, throughput dominates.
        assert!(t.rbs_at(knee * 1.01) > t.r_lat);
    }
}

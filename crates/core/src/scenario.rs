//! The paper's evaluation scenarios (Table IV), built end-to-end: models →
//! repository → paths → cost profiling → DOT instance.

use crate::instance::{Budgets, DotInstance, PathOption};
use crate::task::{QualityLevel, Task, TaskId};
use offloadnn_dnn::block::{GroupId, ModelId, Precision};
use offloadnn_dnn::config::{Config, PathConfig};
use offloadnn_dnn::models::{mobilenet_v2, resnet18};
use offloadnn_dnn::repository::Repository;
use offloadnn_dnn::TensorShape;
use offloadnn_profiler::cost::{path_accuracy, CostTable, ProfileConfig};
use offloadnn_profiler::dataset;
use offloadnn_radio::{RateModel, SnrDb};
use serde::{Deserialize, Serialize};

/// Everything a benchmark needs: the built repository and the instance.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The DNN repository backing the instance's paths.
    pub repo: Repository,
    /// The DOT instance.
    pub instance: DotInstance,
    /// The profile used to derive costs.
    pub profile: ProfileConfig,
}

/// Task request-rate level of the large-scale scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadLevel {
    /// 2.5 requests/s per task.
    Low,
    /// 5 requests/s per task.
    Medium,
    /// 7.5 requests/s per task.
    High,
}

impl LoadLevel {
    /// All levels in Table IV order.
    pub const ALL: [LoadLevel; 3] = [LoadLevel::Low, LoadLevel::Medium, LoadLevel::High];

    /// Requests per second per task.
    pub fn rate_hz(&self) -> f64 {
        match self {
            LoadLevel::Low => 2.5,
            LoadLevel::Medium => 5.0,
            LoadLevel::High => 7.5,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            LoadLevel::Low => "low",
            LoadLevel::Medium => "medium",
            LoadLevel::High => "high",
        }
    }
}

/// The prune ratio used throughout the evaluation (Sec. II: 80 %).
pub const PRUNE_RATIO: f64 = 0.8;

/// The five path configurations of the small-scale scenario
/// (`|Pi^d_tau| = 5` in Table IV): a spread over sharing splits with two
/// pruned variants. From-scratch training (CONFIG A) is excluded — the
/// edge deploys pretrained-and-fine-tuned structures, as in Sec. V.
pub const SMALL_CONFIGS: [PathConfig; 5] = [
    PathConfig { config: Config::B, pruned: false },
    PathConfig { config: Config::C, pruned: false },
    PathConfig { config: Config::D, pruned: false },
    PathConfig { config: Config::C, pruned: true },
    PathConfig { config: Config::D, pruned: true },
];

/// Builds the small-scale scenario with `t` tasks (Table IV: `T` in 1..=5,
/// three DNNs, five paths each).
///
/// # Panics
///
/// Panics if `t` is outside `1..=5`.
pub fn small_scenario(t: usize) -> Scenario {
    assert!((1..=5).contains(&t), "small scenario supports 1..=5 tasks");
    let profile = ProfileConfig::reference();
    let mut repo = Repository::new();

    let input = TensorShape::new(3, 224, 224);
    let models = vec![
        repo.add_model(resnet18(60, 1000, input)),
        repo.add_model(resnet18(60, 750, input)),
        repo.add_model(mobilenet_v2(60, 1000, input)),
    ];

    let priorities = [0.8, 0.7, 0.6, 0.5, 0.4];
    let accuracies = [0.9, 0.8, 0.7, 0.6, 0.5];
    let latencies = [0.2, 0.3, 0.4, 0.5, 0.6];
    let names = ["cars", "trains", "koalas", "toasters", "green snakes"];

    let tasks: Vec<Task> = (0..t)
        .map(|i| Task {
            id: TaskId(i as u32),
            name: names[i].to_owned(),
            group: GroupId(i as u32),
            priority: priorities[i],
            request_rate: 5.0,
            min_accuracy: accuracies[i],
            max_latency: latencies[i],
            snr: SnrDb(0.0),
            qualities: vec![QualityLevel::table_iv()],
            difficulty: 0.0,
        })
        .collect();

    let budgets = Budgets { rbs: 50.0, compute_seconds: 2.5, training_seconds: 1000.0, memory_bytes: 8e9 };
    build_scenario(repo, models, &SMALL_CONFIGS, tasks, budgets, profile)
}

/// Builds the large-scale scenario (Table IV: `T = 20`, `|D| = 125`
/// dynamic DNN structures, ten paths each) at the given load level.
pub fn large_scenario(load: LoadLevel) -> Scenario {
    let profile = ProfileConfig::reference();
    let mut repo = Repository::new();

    // The repository of dynamic DNN structures: ResNet-18 backbones over
    // a coarse grid of width multipliers and input resolutions. The coarse
    // capacity steps make tasks with similar accuracy requirements land on
    // the *same* backbone, which is what lets them share base blocks (the
    // paper's |D| = 125 counts structures, i.e. backbone x configuration
    // combinations: 25 backbones x 5 sharing splits; each then offers the
    // pruned/unpruned pair per quality level as its paths).
    let mut models = Vec::with_capacity(25);
    for &width in &[500u32, 650, 800, 1000, 1200] {
        for &res in &[160usize, 176, 192, 208, 224] {
            models.push(repo.add_model(resnet18(60, width, TensorShape::new(3, res, res))));
        }
    }

    let categories: Vec<String> = dataset::base_dataset().categories().map(str::to_owned).collect();

    let tasks: Vec<Task> = (0..20)
        .map(|i| {
            let tau = (i + 1) as f64;
            let name = categories[i * 3 % categories.len()].clone();
            Task {
                id: TaskId(i as u32),
                name: name.clone(),
                group: GroupId(i as u32),
                priority: 1.0 - 0.05 * (tau - 1.0),
                request_rate: load.rate_hz(),
                min_accuracy: 0.8 - 0.015 * tau,
                max_latency: 0.2 + 0.02 * tau,
                snr: SnrDb(0.0),
                // The quality dimension Q_tau of the formulation: full
                // sensor quality plus three semantic-compression levels.
                qualities: vec![1.0, 0.85, 0.7, 0.55]
                    .into_iter()
                    .map(|q| QualityLevel { quality: q, bits: 350e3 * q })
                    .collect(),
                difficulty: 0.09 + dataset::category_difficulty(&name),
            }
        })
        .collect();

    let budgets = Budgets { rbs: 100.0, compute_seconds: 10.0, training_seconds: 1000.0, memory_bytes: 16e9 };
    let configs = PathConfig::all();
    build_scenario(repo, models, &configs, tasks, budgets, profile)
}

/// Builds a heterogeneous-SNR variant of the small-scale scenario: same
/// tasks and budgets, but the devices of different tasks experience
/// different channel qualities and the per-RB rate follows the 3GPP CQI
/// table instead of Table IV's constant. Exercises the `B(sigma_tau)`
/// dimension of the formulation: low-SNR tasks need larger slices for the
/// same latency bound.
pub fn heterogeneous_snr_scenario(t: usize) -> Scenario {
    let mut s = small_scenario(t);
    // Deterministic spread: strongest devices first (matching priority),
    // from 14 dB down to about 2 dB.
    let snrs = [14.0, 11.0, 8.0, 5.0, 2.0];
    for (i, task) in s.instance.tasks.iter_mut().enumerate() {
        task.snr = SnrDb(snrs[i % snrs.len()]);
    }
    s.instance.rate = RateModel::CqiTable;
    s
}

/// The small-scale scenario with INT8 deployment variants of every path —
/// quantisation as a second compression axis next to pruning (an extension
/// in the Deep Compression lineage the paper cites).
pub fn quantized_small_scenario(t: usize) -> Scenario {
    assert!((1..=5).contains(&t), "small scenario supports 1..=5 tasks");
    let profile = ProfileConfig::reference();
    let mut repo = Repository::new();
    let input = TensorShape::new(3, 224, 224);
    let models = vec![
        repo.add_model(resnet18(60, 1000, input)),
        repo.add_model(resnet18(60, 750, input)),
        repo.add_model(mobilenet_v2(60, 1000, input)),
    ];
    let base = small_scenario(t);
    let tasks = base.instance.tasks.clone();
    let budgets = base.instance.budgets;
    build_scenario_at(
        repo,
        models,
        &SMALL_CONFIGS,
        tasks,
        budgets,
        profile,
        &[Precision::Fp32, Precision::Int8],
    )
}

/// Assembles an instance: instantiates all paths, profiles costs, rescales
/// training costs so each model's full from-scratch training equals the
/// `Ct` budget (Table IV normalises `ct` to the full DNN training cost),
/// and precomputes every option's accuracy and processing time.
pub fn build_scenario(
    repo: Repository,
    models: Vec<ModelId>,
    configs: &[PathConfig],
    tasks: Vec<Task>,
    budgets: Budgets,
    profile: ProfileConfig,
) -> Scenario {
    build_scenario_at(repo, models, configs, tasks, budgets, profile, &[Precision::Fp32])
}

/// [`build_scenario`] with an explicit set of deployment precisions: the
/// option space becomes (model x config x precision x quality).
pub fn build_scenario_at(
    mut repo: Repository,
    models: Vec<ModelId>,
    configs: &[PathConfig],
    tasks: Vec<Task>,
    budgets: Budgets,
    profile: ProfileConfig,
    precisions: &[Precision],
) -> Scenario {
    // Instantiate every (model, group, config, precision) path.
    let mut per_task_paths: Vec<Vec<offloadnn_dnn::DnnPath>> = Vec::with_capacity(tasks.len());
    for task in &tasks {
        let mut paths = Vec::with_capacity(models.len() * configs.len() * precisions.len());
        for &m in &models {
            for &cfg in configs {
                for &pr in precisions {
                    let p = repo
                        .instantiate_path_at(m, task.group, cfg, PRUNE_RATIO, pr)
                        .expect("scenario prune ratio is valid");
                    paths.push(p);
                }
            }
        }
        per_task_paths.push(paths);
    }

    // Per-model training normaliser: the full from-scratch path (interned
    // against a group that may or may not exist among the tasks; interning
    // is idempotent either way).
    let norm_group = tasks.first().map(|t| t.group).unwrap_or(GroupId(0));
    let scratch_cfg = PathConfig { config: Config::A, pruned: false };
    let scratch_paths: Vec<offloadnn_dnn::DnnPath> = models
        .iter()
        .map(|&m| repo.instantiate_path(m, norm_group, scratch_cfg, PRUNE_RATIO).expect("valid ratio"))
        .collect();

    // Accuracies per (path, quality level), interning any missing unpruned
    // siblings first so the final cost table covers every block. The
    // effective quality folds in the model's input resolution: a structure
    // trained for 160x160 inputs sees less of the scene than a 224x224 one.
    let mut accuracies: Vec<Vec<Vec<f64>>> = Vec::with_capacity(tasks.len());
    for (t, task) in tasks.iter().enumerate() {
        let mut per_path = Vec::with_capacity(per_task_paths[t].len());
        for p in &per_task_paths[t] {
            let res_factor = repo.model(p.model).input.height as f64 / 224.0;
            let per_quality = task
                .qualities
                .iter()
                .map(|q| {
                    let q_eff = (q.quality * res_factor).min(1.0);
                    path_accuracy(&mut repo, &profile.accuracy, p, q_eff, task.difficulty)
                })
                .collect();
            per_path.push(per_quality);
        }
        accuracies.push(per_path);
    }

    // One profiling pass over the final repository state. Training costs
    // are normalised by a single reference — the most expensive model's
    // full from-scratch training — scaled to `Ct`, matching Table IV's
    // "normalised to the full DNN training cost" with one `Ct` budget.
    let table = CostTable::profile(&repo, &profile);
    let reference_ct = scratch_paths.iter().map(|p| table.path_training_seconds(p)).fold(1e-9f64, f64::max);
    let scale = budgets.training_seconds / reference_ct;

    let mut block_memory = vec![0.0; repo.num_blocks()];
    let mut block_training = vec![0.0; repo.num_blocks()];
    for (i, _entry) in repo.blocks().iter().enumerate() {
        let costs = table.get(offloadnn_dnn::BlockId(i as u32));
        block_memory[i] = costs.memory_bytes;
        block_training[i] = costs.training_seconds * scale;
    }

    // Build the per-task options: one per (path, quality level).
    let options: Vec<Vec<PathOption>> = tasks
        .iter()
        .enumerate()
        .map(|(t, task)| {
            let mut opts = Vec::with_capacity(per_task_paths[t].len() * task.qualities.len());
            for (p, accs) in per_task_paths[t].iter().zip(&accuracies[t]) {
                let proc_seconds = table.path_compute_seconds(p);
                // Rescaled training cost, used as the clique tie-break.
                let training_seconds: f64 = p.blocks.iter().map(|&b| block_training[b.0 as usize]).sum();
                let precision = repo.block(p.blocks[0]).key.precision;
                let precision_tag = match precision {
                    Precision::Fp32 => String::new(),
                    other => format!(" {other}"),
                };
                for (quality, &accuracy) in task.qualities.iter().zip(accs) {
                    opts.push(PathOption {
                        quality: *quality,
                        accuracy,
                        proc_seconds,
                        training_seconds,
                        label: format!(
                            "{}/{}{} @q{:.2}",
                            p.model,
                            p.config.label(),
                            precision_tag,
                            quality.quality
                        ),
                        path: p.clone(),
                    });
                }
            }
            opts
        })
        .collect();

    let instance = DotInstance {
        tasks,
        options,
        block_memory,
        block_training,
        rate: RateModel::table_iv(),
        budgets,
        alpha: 0.5,
    };
    Scenario { repo, instance, profile }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_dimensions() {
        let s = small_scenario(3);
        assert_eq!(s.instance.num_tasks(), 3);
        // 3 DNNs x 5 paths = 15 options per task.
        for t in 0..3 {
            assert_eq!(s.instance.options[t].len(), 15);
        }
        assert!(s.instance.validate().is_ok());
    }

    #[test]
    fn every_small_task_has_a_feasible_option() {
        let s = small_scenario(5);
        for t in 0..5 {
            let feasible = s.instance.feasible_options(t);
            assert!(!feasible.is_empty(), "task {t} has no feasible path");
        }
    }

    #[test]
    fn strictest_task_filters_hardest() {
        let s = small_scenario(5);
        let f0 = s.instance.feasible_options(0).len();
        let f4 = s.instance.feasible_options(4).len();
        assert!(f0 < f4, "0.9 accuracy bound must filter more than 0.5 ({f0} vs {f4})");
    }

    #[test]
    fn training_costs_normalised_to_ct() {
        let s = small_scenario(1);
        // The from-scratch normaliser path was interned during the build:
        // re-instantiating it is a lookup, and its total cost must be ~Ct.
        let mut repo = s.repo.clone();
        let scratch = repo
            .instantiate_path(
                offloadnn_dnn::ModelId(0),
                s.instance.tasks[0].group,
                PathConfig { config: Config::A, pruned: false },
                PRUNE_RATIO,
            )
            .unwrap();
        let ct: f64 = scratch.blocks.iter().map(|&b| s.instance.training_of(b)).sum();
        assert!((ct - 1000.0).abs() < 1.0, "scratch training {ct} should equal Ct");
        // Base blocks are free; every fine-tuned path costs less than Ct.
        for (idx, entry) in s.repo.blocks().iter().enumerate() {
            if matches!(entry.key.variant, offloadnn_dnn::BlockVariant::Base) {
                assert_eq!(s.instance.block_training[idx], 0.0);
            }
        }
        for opt in &s.instance.options[0] {
            let path_ct: f64 = opt.path.blocks.iter().map(|&b| s.instance.training_of(b)).sum();
            assert!(path_ct < 1000.0, "{} costs {path_ct}", opt.label);
        }
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn oversized_small_scenario_panics() {
        small_scenario(6);
    }

    #[test]
    fn load_levels() {
        assert_eq!(LoadLevel::Low.rate_hz(), 2.5);
        assert_eq!(LoadLevel::Medium.rate_hz(), 5.0);
        assert_eq!(LoadLevel::High.rate_hz(), 7.5);
        assert_eq!(LoadLevel::ALL.len(), 3);
        assert_eq!(LoadLevel::High.name(), "high");
    }

    #[test]
    fn quantized_scenario_doubles_options_and_prefers_int8() {
        use crate::heuristic::OffloadnnSolver;
        let q = quantized_small_scenario(3);
        let plain = small_scenario(3);
        assert_eq!(q.instance.options[0].len(), 2 * plain.instance.options[0].len());
        let sol = OffloadnnSolver::new().solve(&q.instance).unwrap();
        assert!(crate::objective::verify(&q.instance, &sol).is_empty());
        // Somebody picks INT8: it is strictly faster where accuracy allows.
        let picked_int8 = sol
            .choices
            .iter()
            .enumerate()
            .any(|(t, c)| c.map(|o| q.instance.options[t][o].label.contains("int8")).unwrap_or(false));
        assert!(picked_int8, "INT8 variants should win for slack-accuracy tasks");
        // And memory drops vs the FP32-only scenario.
        let plain_sol = OffloadnnSolver::new().solve(&plain.instance).unwrap();
        let m_q = crate::objective::memory_bytes(&q.instance, &sol.choices, &sol.admission);
        let m_p = crate::objective::memory_bytes(&plain.instance, &plain_sol.choices, &plain_sol.admission);
        assert!(m_q < m_p, "quantisation must shrink the deployment: {m_q} vs {m_p}");
    }

    #[test]
    fn heterogeneous_snr_low_snr_needs_more_rbs() {
        use crate::heuristic::OffloadnnSolver;
        let s = heterogeneous_snr_scenario(5);
        let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
        assert!(crate::objective::verify(&s.instance, &sol).is_empty());
        // Per admitted bit, the low-SNR tasks pay more RBs: compare RBs
        // normalised by the latency budget (beta and lambda are equal).
        let per_rate: Vec<f64> = (0..5)
            .filter(|&t| sol.admission[t] > 0.0)
            .map(|t| {
                let opt = &s.instance.options[t][sol.choices[t].unwrap()];
                sol.rbs[t] * s.instance.bits_per_rb(t) / opt.quality.bits
            })
            .collect();
        // Link capacity demanded (bits/s) is similar across tasks, but the
        // RB count to deliver it must grow as SNR drops.
        let rbs: Vec<f64> = (0..5).map(|t| sol.rbs[t]).collect();
        assert!(rbs[4] > rbs[0], "2 dB task needs more RBs than 14 dB task: {rbs:?}");
        assert!(!per_rate.is_empty());
    }

    #[test]
    fn heterogeneous_snr_rates_match_cqi_table() {
        let s = heterogeneous_snr_scenario(3);
        // 14 dB maps to a higher CQI rate than 8 dB.
        assert!(s.instance.bits_per_rb(0) > s.instance.bits_per_rb(2));
    }

    // The large scenario is exercised by integration tests and benches; a
    // smoke test here keeps unit runs fast but still builds the catalog.
    #[test]
    fn large_scenario_smoke() {
        let s = large_scenario(LoadLevel::Low);
        assert_eq!(s.instance.num_tasks(), 20);
        assert_eq!(s.repo.models().len(), 25);
        assert_eq!(s.instance.options[0].len(), 25 * 10 * 4, "backbones x configs x quality levels");
        assert!(s.instance.validate().is_ok());
        for t in 0..20 {
            assert!(!s.instance.feasible_options(t).is_empty(), "task {t} infeasible");
        }
    }
}

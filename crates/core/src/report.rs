//! Human-readable solution reports: what an operator of the OffloaDNN
//! controller would want on a dashboard after each admission round.

use crate::instance::DotInstance;
use crate::metrics::SolutionSummary;
use crate::objective::DotSolution;
use std::fmt::Write as _;

/// Renders a full multi-line report of a solution against its instance.
pub fn render(instance: &DotInstance, sol: &DotSolution) -> String {
    let mut out = String::new();
    let sum = SolutionSummary::of(instance, sol);

    let _ = writeln!(
        out,
        "DOT solution: {} of {} tasks admitted, weighted admission {:.2}, cost {:.4}",
        sol.admitted_tasks(),
        instance.num_tasks(),
        sum.weighted_admission,
        sum.total_cost
    );
    let _ = writeln!(
        out,
        "resources: radio {:.1}% | memory {:.1}% | inference {:.2}% | training {:.1}% of Ct",
        sum.radio_utilisation * 100.0,
        sum.memory_utilisation * 100.0,
        sum.compute_utilisation * 100.0,
        sum.training_utilisation * 100.0
    );
    let _ = writeln!(
        out,
        "cost breakdown: rejection {:.4} + training {:.4} + radio {:.4} + inference {:.4}",
        sol.cost.rejection, sol.cost.training, sol.cost.radio, sol.cost.inference
    );

    for (t, task) in instance.tasks.iter().enumerate() {
        match sol.choices[t] {
            Some(o) => {
                let opt = &instance.options[t][o];
                let latency = opt.quality.bits
                    / (instance.bits_per_rb(t) * sol.rbs[t].max(f64::MIN_POSITIVE))
                    + opt.proc_seconds;
                let _ = writeln!(
                    out,
                    "  {} {:16} p={:.2} -> {:32} z={:.2} r={:5.1} RBs  e2e {:.0} ms / {:.0} ms  acc {:.3} / {:.3}",
                    task.id,
                    task.name,
                    task.priority,
                    opt.label,
                    sol.admission[t],
                    sol.rbs[t],
                    latency * 1e3,
                    task.max_latency * 1e3,
                    opt.accuracy,
                    task.min_accuracy
                );
            }
            None => {
                let _ = writeln!(out, "  {} {:16} p={:.2} -> rejected", task.id, task.name, task.priority);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::OffloadnnSolver;
    use crate::scenario::small_scenario;

    #[test]
    fn report_contains_every_task_and_the_headline() {
        let s = small_scenario(4);
        let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
        let r = render(&s.instance, &sol);
        assert!(r.contains("4 of 4 tasks admitted"));
        for task in &s.instance.tasks {
            assert!(r.contains(&task.name), "missing {}", task.name);
        }
        assert!(r.contains("cost breakdown"));
    }

    #[test]
    fn rejected_tasks_are_labelled() {
        let s = small_scenario(2);
        let sol = crate::objective::DotSolution::rejected(&s.instance);
        let r = render(&s.instance, &sol);
        assert_eq!(r.matches("rejected").count(), 2);
    }
}

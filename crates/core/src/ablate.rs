//! Instance transformations that switch off one of OffloaDNN's three
//! innovations at a time — block sharing, structured pruning, quality
//! adaptation — so their individual contributions to the headline gains
//! can be decomposed (the executable version of the paper's Sec. I claims
//! about what sharing/pruning each buy).

use crate::instance::DotInstance;

/// Disables cross-task block sharing: every task's options are rewired to
/// private copies of their blocks (same costs, fresh ids), so the memory
/// and training union degenerates to a per-task sum.
pub fn without_sharing(instance: &DotInstance) -> DotInstance {
    let mut out = instance.clone();
    let mut next_id = out.block_memory.len() as u32;
    for t in 0..out.options.len() {
        // One remap per task: blocks shared *within* a task's own options
        // (e.g. its pruned and unpruned variants of the same base prefix)
        // stay shared — only cross-task sharing is severed, mirroring a
        // per-task model store.
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for opt in &mut out.options[t] {
            for b in &mut opt.path.blocks {
                let new = *remap.entry(b.0).or_insert_with(|| {
                    let id = next_id;
                    next_id += 1;
                    id
                });
                *b = offloadnn_dnn::BlockId(new);
            }
        }
    }
    // Extend the cost tables for the fresh ids.
    let old_mem = instance.block_memory.clone();
    let old_train = instance.block_training.clone();
    out.block_memory.resize(next_id as usize, 0.0);
    out.block_training.resize(next_id as usize, 0.0);
    for t in 0..out.options.len() {
        for (opt, old_opt) in out.options[t].iter().zip(&instance.options[t]) {
            for (b, old_b) in opt.path.blocks.iter().zip(&old_opt.path.blocks) {
                out.block_memory[b.0 as usize] = old_mem[old_b.0 as usize];
                out.block_training[b.0 as usize] = old_train[old_b.0 as usize];
            }
        }
    }
    out
}

/// Removes every pruned path option.
pub fn without_pruning(instance: &DotInstance) -> DotInstance {
    let mut out = instance.clone();
    for opts in &mut out.options {
        opts.retain(|o| !o.path.config.pruned);
    }
    out
}

/// Removes every reduced-quality option (tasks transmit at full sensor
/// quality only).
pub fn without_quality_adaptation(instance: &DotInstance) -> DotInstance {
    let mut out = instance.clone();
    for opts in &mut out.options {
        let max_q = opts.iter().map(|o| o.quality.quality).fold(0.0f64, f64::max);
        opts.retain(|o| o.quality.quality >= max_q - 1e-12);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::OffloadnnSolver;
    use crate::objective::{memory_bytes, verify};
    use crate::scenario::small_scenario;

    #[test]
    fn without_sharing_duplicates_memory() {
        let s = small_scenario(4);
        let shared = OffloadnnSolver::new().solve(&s.instance).unwrap();
        let unshared_inst = without_sharing(&s.instance);
        assert!(unshared_inst.validate().is_ok());
        let unshared = OffloadnnSolver::new().solve(&unshared_inst).unwrap();
        assert!(verify(&unshared_inst, &unshared).is_empty());
        let m_shared = memory_bytes(&s.instance, &shared.choices, &shared.admission);
        let m_unshared = memory_bytes(&unshared_inst, &unshared.choices, &unshared.admission);
        assert!(m_unshared > m_shared, "severing sharing must cost memory: {m_unshared} vs {m_shared}");
    }

    #[test]
    fn without_sharing_preserves_per_option_costs() {
        let s = small_scenario(3);
        let u = without_sharing(&s.instance);
        for t in 0..3 {
            for (a, b) in s.instance.options[t].iter().zip(&u.options[t]) {
                let ma: f64 = a.path.blocks.iter().map(|&x| s.instance.memory_of(x)).sum();
                let mb: f64 = b.path.blocks.iter().map(|&x| u.memory_of(x)).sum();
                assert!((ma - mb).abs() < 1.0, "standalone path memory unchanged");
                assert_eq!(a.proc_seconds, b.proc_seconds);
            }
        }
    }

    #[test]
    fn without_pruning_slows_inference() {
        let s = small_scenario(5);
        let base = OffloadnnSolver::new().solve(&s.instance).unwrap();
        let np_inst = without_pruning(&s.instance);
        for opts in &np_inst.options {
            assert!(opts.iter().all(|o| !o.path.config.pruned));
            assert!(!opts.is_empty());
        }
        let np = OffloadnnSolver::new().solve(&np_inst).unwrap();
        assert!(verify(&np_inst, &np).is_empty());
        let proc = |inst: &DotInstance, sol: &crate::objective::DotSolution| -> f64 {
            sol.choices
                .iter()
                .enumerate()
                .filter_map(|(t, c)| c.map(|o| inst.options[t][o].proc_seconds))
                .sum()
        };
        assert!(
            proc(&np_inst, &np) > proc(&s.instance, &base),
            "removing pruned paths must increase total inference time"
        );
    }

    #[test]
    fn without_quality_keeps_only_full_quality() {
        let s = crate::scenario::large_scenario(crate::scenario::LoadLevel::Low);
        let q = without_quality_adaptation(&s.instance);
        for opts in &q.options {
            assert!(opts.iter().all(|o| (o.quality.quality - 1.0).abs() < 1e-9));
            assert_eq!(opts.len() * 4, s.instance.options[0].len(), "one of four levels kept");
        }
    }
}

//! Failure injection: hostile and degenerate instances must produce clean
//! errors or empty-but-feasible solutions — never panics, never
//! constraint-violating output.

use offloadnn_core::exact::ExactSolver;
use offloadnn_core::heuristic::OffloadnnSolver;
use offloadnn_core::objective::verify;
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::{DotError, SolutionSummary};

#[test]
fn unreachable_accuracy_rejects_cleanly() {
    let mut s = small_scenario(3);
    for t in &mut s.instance.tasks {
        t.min_accuracy = 0.999; // above every option's accuracy
    }
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    assert_eq!(sol.admitted_tasks(), 0);
    assert!(verify(&s.instance, &sol).is_empty());
    let opt = ExactSolver::new().solve(&s.instance).unwrap();
    assert_eq!(opt.admitted_tasks(), 0);
}

#[test]
fn impossible_latency_rejects_cleanly() {
    let mut s = small_scenario(3);
    for t in &mut s.instance.tasks {
        t.max_latency = 1e-6; // below every path's processing time
    }
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    assert_eq!(sol.admitted_tasks(), 0);
    assert!(verify(&s.instance, &sol).is_empty());
}

#[test]
fn starved_memory_rejects_cleanly() {
    let mut s = small_scenario(5);
    s.instance.budgets.memory_bytes = 1.0; // one byte
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    assert_eq!(sol.admitted_tasks(), 0);
    assert!(verify(&s.instance, &sol).is_empty());
}

#[test]
fn starved_radio_degrades_gracefully() {
    let mut s = small_scenario(5);
    s.instance.budgets.rbs = 3.0;
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    assert!(verify(&s.instance, &sol).is_empty());
    let sum = SolutionSummary::of(&s.instance, &sol);
    assert!(sum.radio_utilisation <= 1.0 + 1e-9);
    // Partial service beats nothing when a latency floor fits 3 RBs.
    assert!(sol.weighted_admission(&s.instance) >= 0.0);
}

#[test]
fn starved_compute_degrades_gracefully() {
    let mut s = small_scenario(5);
    s.instance.budgets.compute_seconds = 0.02;
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    assert!(verify(&s.instance, &sol).is_empty());
    let sum = SolutionSummary::of(&s.instance, &sol);
    assert!(sum.compute_utilisation <= 1.0 + 1e-9);
}

#[test]
fn zero_budgets_are_rejected_by_validation() {
    let mut s = small_scenario(1);
    s.instance.budgets.rbs = 0.0;
    assert!(matches!(OffloadnnSolver::new().solve(&s.instance).unwrap_err(), DotError::InvalidBudget("rbs")));
    let mut s = small_scenario(1);
    s.instance.budgets.compute_seconds = -1.0;
    assert!(matches!(ExactSolver::new().solve(&s.instance).unwrap_err(), DotError::InvalidBudget("compute")));
}

#[test]
fn malformed_tasks_are_rejected_by_validation() {
    let mut s = small_scenario(2);
    s.instance.tasks[1].priority = 2.0;
    assert!(matches!(OffloadnnSolver::new().solve(&s.instance).unwrap_err(), DotError::InvalidTask(_)));
    let mut s = small_scenario(2);
    s.instance.tasks[0].request_rate = 0.0;
    assert!(OffloadnnSolver::new().solve(&s.instance).is_err());
}

#[test]
fn empty_option_lists_mean_rejection_not_panic() {
    let mut s = small_scenario(3);
    s.instance.options[1].clear();
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    assert!(sol.choices[1].is_none());
    assert_eq!(sol.admission[1], 0.0);
    assert!(verify(&s.instance, &sol).is_empty());
    // The other two tasks are unaffected.
    assert_eq!(sol.admitted_tasks(), 2);
}

#[test]
fn mixed_extreme_priorities_stay_feasible() {
    let mut s = small_scenario(5);
    s.instance.tasks[0].priority = 1.0;
    s.instance.tasks[4].priority = 0.0; // zero-value task
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    assert!(verify(&s.instance, &sol).is_empty());
    // A zero-priority task has no admission benefit: the allocator must
    // not spend resources on it.
    assert_eq!(sol.admission[4], 0.0);
}

#[test]
fn duplicate_submission_of_same_group_shares_everything() {
    // Two tasks in the same fine-tuning group with the same requirements:
    // serving the second must not double the memory.
    let mut s = small_scenario(2);
    s.instance.tasks[1].group = s.instance.tasks[0].group;
    s.instance.tasks[1].min_accuracy = s.instance.tasks[0].min_accuracy;
    s.instance.tasks[1].max_latency = s.instance.tasks[0].max_latency;
    s.instance.options[1] = s.instance.options[0].clone();
    let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
    assert_eq!(sol.admitted_tasks(), 2);
    let mem = offloadnn_core::objective::memory_bytes(&s.instance, &sol.choices, &sol.admission);
    let single: f64 = s.instance.options[0][sol.choices[0].unwrap()]
        .path
        .blocks
        .iter()
        .map(|&b| s.instance.memory_of(b))
        .sum();
    assert!((mem - single).abs() < 1.0, "identical paths must be fully shared: {mem} vs {single}");
}

//! Property-based tests of the inner allocation solvers: feasibility,
//! floors, monotonicity and optimality relations on random instances.

use offloadnn_core::alloc::{coordinate_ascent, greedy, AllocSettings, AllocTask, Order};
use offloadnn_core::dual::{dual_bound, total_utility};
use proptest::prelude::*;

fn arb_task() -> impl Strategy<Value = AllocTask> {
    (
        0.05f64..1.0,   // priority
        0.5f64..10.0,   // lambda
        50e3f64..800e3, // beta
        0.1e6f64..1e6,  // bits per rb
        0.2f64..8.0,    // r_lat
        0.001f64..0.05, // proc seconds
    )
        .prop_map(|(priority, lambda, beta, bits_per_rb, r_lat, proc_seconds)| AllocTask {
            priority,
            lambda,
            beta,
            bits_per_rb,
            r_lat,
            proc_seconds,
        })
}

fn arb_settings() -> impl Strategy<Value = AllocSettings> {
    (0.1f64..0.9, 5.0f64..200.0, 0.05f64..5.0).prop_map(|(alpha, rbs, compute)| AllocSettings {
        alpha,
        rbs,
        compute,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn greedy_respects_all_budgets_and_floors(
        tasks in proptest::collection::vec(arb_task(), 1..12),
        s in arb_settings(),
    ) {
        for order in [Order::Priority, Order::UtilityDensity, Order::Input] {
            let res = greedy(&tasks, &s, order);
            prop_assert!(res.radio_usage(&tasks) <= s.rbs * (1.0 + 1e-9));
            prop_assert!(res.compute_usage(&tasks) <= s.compute * (1.0 + 1e-9));
            for (t, (&z, &r)) in tasks.iter().zip(res.z.iter().zip(&res.r)) {
                prop_assert!((0.0..=1.0).contains(&z));
                if z > 0.0 {
                    prop_assert!(r >= t.r_lat - 1e-9, "latency floor");
                    prop_assert!(r * t.bits_per_rb >= z * t.lambda * t.beta - 1e-6, "rate support");
                } else {
                    prop_assert_eq!(r, 0.0);
                }
            }
        }
    }

    #[test]
    fn ascent_feasible_and_never_worse(
        tasks in proptest::collection::vec(arb_task(), 1..12),
        s in arb_settings(),
    ) {
        let g = greedy(&tasks, &s, Order::Priority);
        let c = coordinate_ascent(&tasks, &s);
        prop_assert!(c.radio_usage(&tasks) <= s.rbs * (1.0 + 1e-6));
        prop_assert!(c.compute_usage(&tasks) <= s.compute * (1.0 + 1e-6));
        prop_assert!(
            c.partial_cost(&tasks, &s) <= g.partial_cost(&tasks, &s) + 1e-9,
            "ascent {} vs greedy {}",
            c.partial_cost(&tasks, &s),
            g.partial_cost(&tasks, &s)
        );
    }

    #[test]
    fn ascent_is_a_fixed_point(
        tasks in proptest::collection::vec(arb_task(), 1..10),
        s in arb_settings(),
    ) {
        // Re-running the ascent from its own output must not move: the
        // result is a coordinate-wise optimum of the concave program.
        let first = coordinate_ascent(&tasks, &s);
        let again = coordinate_ascent(&tasks, &s);
        for (a, b) in first.z.iter().zip(&again.z) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn ample_budgets_admit_every_worthwhile_task(
        tasks in proptest::collection::vec(arb_task(), 1..10),
        alpha in 0.5f64..0.9,
    ) {
        // With budgets far above any possible demand, every task whose
        // marginal utility is positive is admitted at its unconstrained
        // optimum; none is left at zero because of another task.
        let s = AllocSettings { alpha, rbs: 1e9, compute: 1e9 };
        let res = greedy(&tasks, &s, Order::Priority);
        for (t, &z) in tasks.iter().zip(&res.z) {
            let marginal = alpha * t.priority
                - (1.0 - alpha) * (t.r_lat / s.rbs + t.compute_per_z() / s.compute);
            if marginal > 1e-9 {
                prop_assert!(z > 0.0, "worthwhile task rejected");
            }
        }
    }

    #[test]
    fn weak_duality_always_holds(
        tasks in proptest::collection::vec(arb_task(), 1..10),
        s in arb_settings(),
    ) {
        // The Lagrangian dual upper-bounds the utility of *any* feasible
        // primal allocation, for any random instance.
        let bound = dual_bound(&tasks, &s, 250);
        for order in [Order::Priority, Order::UtilityDensity, Order::Input] {
            let res = greedy(&tasks, &s, order);
            let u = total_utility(&tasks, &s, &res.z);
            prop_assert!(u <= bound.utility_bound + 1e-7,
                "utility {u} exceeds dual bound {}", bound.utility_bound);
        }
        let c = coordinate_ascent(&tasks, &s);
        prop_assert!(total_utility(&tasks, &s, &c.z) <= bound.utility_bound + 1e-7);
    }

    #[test]
    fn single_task_kkt_stationarity(task in arb_task(), s in arb_settings()) {
        // For one task with ample budgets, the chosen z must be a maximiser
        // of its concave utility: nudging z in either direction must not
        // improve it.
        let big = AllocSettings { alpha: s.alpha, rbs: 1e6, compute: 1e6 };
        let res = coordinate_ascent(&[task], &big);
        let z = res.z[0];
        let util = |z: f64| {
            big.alpha * task.priority * z
                - (1.0 - big.alpha) * (task.radio_usage(z) / big.rbs + z * task.compute_per_z() / big.compute)
        };
        let eps = 1e-6;
        let u0 = util(z);
        prop_assert!(util((z - eps).max(0.0)) <= u0 + 1e-9);
        prop_assert!(util((z + eps).min(1.0)) <= u0 + 1e-9);
    }
}

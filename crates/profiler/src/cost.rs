//! Per-block cost tables: the bridge from DNN structure to the scalars the
//! DOT problem consumes — `c(s^d)` (inference compute time), `mu(s^d)`
//! (memory) and `ct(s^d)` (training cost).

use crate::accuracy::AccuracyModel;
use crate::hardware::HardwareModel;
use crate::training::TrainingSetup;
use offloadnn_dnn::block::BlockId;
use offloadnn_dnn::config::PathConfig;
use offloadnn_dnn::repository::{DnnPath, Repository};
use serde::{Deserialize, Serialize};

/// Bundle of all profiling models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Edge inference hardware.
    pub inference: HardwareModel,
    /// Training setup for fine-tuning costs.
    pub training: TrainingSetup,
    /// Accuracy model.
    pub accuracy: AccuracyModel,
    /// Multiplier on raw weight bytes (allocator slack, cuDNN algorithm
    /// workspaces proportional to the kernels present).
    pub weights_factor: f64,
    /// Batch the serving runtime sizes its activation arenas for; resident
    /// memory of a block includes `activation_elements * 4 * batch` bytes.
    /// This is what makes a deployed DNN occupy GBs rather than just its
    /// weights, and therefore what block sharing actually saves.
    pub serving_batch: f64,
    /// Fixed VRAM overhead per resident *feature* block (execution
    /// context, stream descriptors).
    pub feature_block_overhead_bytes: f64,
    /// Fixed VRAM overhead per resident classifier-head micro-block.
    pub head_block_overhead_bytes: f64,
}

impl ProfileConfig {
    /// The reproduction's reference profile.
    pub fn reference() -> Self {
        Self {
            inference: HardwareModel::edge_gpu(),
            training: TrainingSetup::reference(),
            accuracy: AccuracyModel::reference(),
            weights_factor: 1.25,
            serving_batch: 18.0,
            feature_block_overhead_bytes: 24.0 * 1024.0 * 1024.0,
            head_block_overhead_bytes: 4.0 * 1024.0 * 1024.0,
        }
    }
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self::reference()
    }
}

/// The three DOT cost scalars of one block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockCosts {
    /// Inference compute time `c(s^d)` in seconds per sample.
    pub compute_seconds: f64,
    /// Resident memory `mu(s^d)` in bytes.
    pub memory_bytes: f64,
    /// Training cost `ct(s^d)` in GPU-seconds (zero for base blocks).
    pub training_seconds: f64,
}

/// Cost scalars for every interned block of a repository, indexed by
/// [`BlockId`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostTable {
    costs: Vec<BlockCosts>,
}

impl CostTable {
    /// Profiles every block currently interned in `repo`.
    ///
    /// Call again after interning more paths; the table is positional, so
    /// it must always be rebuilt from (or cover) the same repository state
    /// it is used with.
    pub fn profile(repo: &Repository, cfg: &ProfileConfig) -> Self {
        let costs = repo
            .blocks()
            .iter()
            .map(|b| {
                let overhead = if b.key.variant.is_head() {
                    cfg.head_block_overhead_bytes
                } else {
                    cfg.feature_block_overhead_bytes
                };
                // Precision scales the resident footprint (weights and
                // activation arenas shrink with the element size) and the
                // compute time (INT8 paths); training happens at FP32
                // regardless (quantisation-aware or post-training).
                let p = b.key.precision;
                let elem = p.bytes_per_param();
                let weights = b.metrics.params as f64 * elem * cfg.weights_factor;
                let arenas = b.metrics.activation_elements as f64 * elem * cfg.serving_batch;
                BlockCosts {
                    compute_seconds: cfg.inference.block_latency(&b.metrics) * p.compute_factor(),
                    memory_bytes: weights + arenas + overhead,
                    training_seconds: cfg.training.block_training_seconds(&b.metrics, &b.key.variant),
                }
            })
            .collect();
        Self { costs }
    }

    /// Costs of one block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not covered by this table (stale table).
    pub fn get(&self, id: BlockId) -> &BlockCosts {
        &self.costs[id.0 as usize]
    }

    /// Number of profiled blocks.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Total inference compute time of a path, in seconds per sample
    /// (the `sum_{s in pi} c(s)` term of the latency constraint).
    pub fn path_compute_seconds(&self, path: &DnnPath) -> f64 {
        path.blocks.iter().map(|&b| self.get(b).compute_seconds).sum()
    }

    /// Total training cost of a path in GPU-seconds, *ignoring sharing*
    /// (the shared-once accounting happens in the DOT objective).
    pub fn path_training_seconds(&self, path: &DnnPath) -> f64 {
        path.blocks.iter().map(|&b| self.get(b).training_seconds).sum()
    }

    /// Total memory of a path in bytes, ignoring sharing.
    pub fn path_memory_bytes(&self, path: &DnnPath) -> f64 {
        path.blocks.iter().map(|&b| self.get(b).memory_bytes).sum()
    }
}

/// Deployed accuracy of a path at a given input quality and task
/// difficulty.
///
/// Needs `&mut Repository` because capacity is measured against the path's
/// *unpruned sibling*, which is interned on demand (a no-op if already
/// present).
pub fn path_accuracy(
    repo: &mut Repository,
    model: &AccuracyModel,
    path: &DnnPath,
    quality: f64,
    difficulty: f64,
) -> f64 {
    let ratio =
        path.blocks.iter().filter_map(|&b| repo.block(b).key.variant.prune_ratio()).fold(0.0f64, f64::max);
    let quantized =
        path.blocks.iter().any(|&b| repo.block(b).key.precision == offloadnn_dnn::Precision::Int8);
    let sibling_cfg = PathConfig { config: path.config.config, pruned: false };
    let sibling = repo
        .instantiate_path(path.model, path.group, sibling_cfg, ratio.max(0.001))
        .expect("unpruned sibling instantiation cannot fail");
    let unpruned_params = repo.path_params(&sibling);
    // The penalty scales with the *compute* removed, not the parameters:
    // pruning the wide-but-cheap last stage hurts far less than gutting
    // the early feature extractor, even though the last stage holds most
    // of the weights.
    let unpruned_flops = repo.path_flops(&sibling);
    let flops = repo.path_flops(path);
    let pruned_fraction = 1.0 - flops as f64 / unpruned_flops.max(1) as f64;
    let acc =
        model.deployed(unpruned_params, path.config.config, ratio, pruned_fraction, quality, difficulty);
    if quantized {
        acc - model.quantization_penalty
    } else {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_dnn::config::Config;
    use offloadnn_dnn::models::resnet18;
    use offloadnn_dnn::shape::TensorShape;
    use offloadnn_dnn::GroupId;

    fn setup() -> (Repository, Vec<DnnPath>, CostTable) {
        let mut repo = Repository::new();
        let m = repo.add_model(resnet18(60, 1000, TensorShape::new(3, 224, 224)));
        let paths = repo.all_paths(m, GroupId(0), 0.8).unwrap();
        let table = CostTable::profile(&repo, &ProfileConfig::reference());
        (repo, paths, table)
    }

    #[test]
    fn table_covers_all_blocks() {
        let (repo, _, table) = setup();
        assert_eq!(table.len(), repo.num_blocks());
        assert!(!table.is_empty());
    }

    #[test]
    fn figure3_compute_time_ordering() {
        // Unpruned paths all cost about the same (same structure); pruned
        // ones order B > C > D > E >= A (less is pruned away going left).
        let (_, paths, table) = setup();
        let t = |cfg: Config, pruned: bool| -> f64 {
            let p = paths.iter().find(|p| p.config.config == cfg && p.config.pruned == pruned).unwrap();
            table.path_compute_seconds(p)
        };
        assert!(t(Config::B, true) > t(Config::C, true));
        assert!(t(Config::C, true) > t(Config::D, true));
        assert!(t(Config::D, true) > t(Config::E, true));
        assert!(t(Config::E, true) >= t(Config::A, true));
        for cfg in Config::ALL {
            assert!(t(cfg, true) < t(cfg, false), "{cfg:?}-pruned must be faster");
        }
    }

    #[test]
    fn base_blocks_have_zero_training_cost() {
        let (repo, _, table) = setup();
        for (i, b) in repo.blocks().iter().enumerate() {
            let cost = table.get(offloadnn_dnn::BlockId(i as u32));
            if matches!(b.key.variant, offloadnn_dnn::BlockVariant::Base) {
                assert_eq!(cost.training_seconds, 0.0);
            } else {
                assert!(cost.training_seconds > 0.0, "trainable block {i} must cost something");
            }
        }
    }

    #[test]
    fn memory_is_weights_plus_arenas_plus_overhead() {
        let (repo, _, table) = setup();
        let cfg = ProfileConfig::reference();
        for (i, b) in repo.blocks().iter().enumerate() {
            let c = table.get(offloadnn_dnn::BlockId(i as u32));
            let overhead = if b.key.variant.is_head() {
                cfg.head_block_overhead_bytes
            } else {
                cfg.feature_block_overhead_bytes
            };
            let elem = b.key.precision.bytes_per_param();
            let expected = b.metrics.params as f64 * elem * cfg.weights_factor
                + b.metrics.activation_elements as f64 * elem * cfg.serving_batch
                + overhead;
            assert!((c.memory_bytes - expected).abs() < 1.0);
            // Memory always exceeds raw weights: the runtime is not free.
            assert!(c.memory_bytes > b.metrics.params as f64 * 4.0);
        }
    }

    #[test]
    fn path_accuracy_pruned_below_unpruned() {
        let (mut repo, paths, _) = setup();
        let acc = AccuracyModel::reference();
        for cfg in Config::ALL {
            let full = paths.iter().find(|p| p.config.config == cfg && !p.config.pruned).unwrap().clone();
            let pruned = paths.iter().find(|p| p.config.config == cfg && p.config.pruned).unwrap().clone();
            let af = path_accuracy(&mut repo, &acc, &full, 1.0, 0.0);
            let ap = path_accuracy(&mut repo, &acc, &pruned, 1.0, 0.0);
            assert!(ap < af, "{cfg:?}");
        }
    }

    #[test]
    fn int8_blocks_are_smaller_faster_slightly_less_accurate() {
        let mut repo = Repository::new();
        let m = repo.add_model(resnet18(60, 1000, TensorShape::new(3, 224, 224)));
        let cfg = offloadnn_dnn::PathConfig { config: Config::C, pruned: false };
        let fp32 = repo.instantiate_path(m, GroupId(0), cfg, 0.8).unwrap();
        let int8 = repo.instantiate_path_at(m, GroupId(0), cfg, 0.8, offloadnn_dnn::Precision::Int8).unwrap();
        assert_ne!(fp32.blocks, int8.blocks, "distinct artifacts");
        let table = CostTable::profile(&repo, &ProfileConfig::reference());
        assert!(table.path_compute_seconds(&int8) < table.path_compute_seconds(&fp32));
        assert!(table.path_memory_bytes(&int8) < 0.5 * table.path_memory_bytes(&fp32));
        let acc = AccuracyModel::reference();
        let a32 = path_accuracy(&mut repo, &acc, &fp32, 1.0, 0.0);
        let a8 = path_accuracy(&mut repo, &acc, &int8, 1.0, 0.0);
        assert!(a8 < a32, "quantisation costs accuracy");
        assert!(a32 - a8 < 0.01, "but well under a point");
    }

    #[test]
    fn figure3_accuracy_b_pruned_drops_least() {
        let (mut repo, paths, _) = setup();
        let acc = AccuracyModel::reference();
        let mut drop = |cfg: Config| -> f64 {
            let full = paths.iter().find(|p| p.config.config == cfg && !p.config.pruned).unwrap().clone();
            let pruned = paths.iter().find(|p| p.config.config == cfg && p.config.pruned).unwrap().clone();
            path_accuracy(&mut repo, &acc, &full, 1.0, 0.0)
                - path_accuracy(&mut repo, &acc, &pruned, 1.0, 0.0)
        };
        let db = drop(Config::B);
        for cfg in [Config::A, Config::C, Config::D, Config::E] {
            assert!(db < drop(cfg), "B's pruning drop must be smallest (vs {cfg:?})");
        }
    }
}

//! Training cost and training memory models.
//!
//! Substitutes the paper's measured fine-tuning runs: per-block training
//! cost `ct(s^d)` in GPU-seconds and the peak training-memory curve of
//! Fig. 2 (right). The memory model separates the four quantities real
//! frameworks allocate — weights, gradients + optimizer states (Adam keeps
//! two moments), activations retained for the backward pass, and transient
//! forward buffers — so frozen (shared) blocks visibly stop paying the
//! gradient/activation bill, exactly the effect the paper measures.

use crate::hardware::{HardwareModel, BYTES_PER_ELEMENT};
use offloadnn_dnn::block::{BlockEntry, BlockMetrics, BlockVariant};
use serde::{Deserialize, Serialize};

/// One mebibyte.
pub const MIB: f64 = 1024.0 * 1024.0;

/// Fine-tuning setup (hyper-parameters from Sec. II: batch 256, Adam).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingSetup {
    /// GPU used for fine-tuning.
    pub hardware: HardwareModel,
    /// Mini-batch size.
    pub batch_size: u32,
    /// Optimiser steps per epoch (dataset size / batch size).
    pub steps_per_epoch: u32,
    /// Epochs used when fine-tuning from the pretrained base (Sec. II's
    /// second experiment fine-tunes for 100 epochs before pruning).
    pub epochs_finetune: u32,
    /// Epochs needed when training from scratch (CONFIG A needs more than
    /// 200 epochs in Fig. 2 to reach target accuracy).
    pub epochs_scratch: u32,
    /// Fixed framework/context overhead in bytes (CUDA context, cuDNN
    /// workspaces, allocator slack).
    pub framework_overhead_bytes: f64,
    /// Fraction of activation elements actually retained for backward
    /// (in-place ReLU/BN folding and buffer reuse).
    pub inplace_factor: f64,
}

impl TrainingSetup {
    /// The reproduction's reference setup.
    pub fn reference() -> Self {
        Self {
            hardware: HardwareModel::training_gpu(),
            batch_size: 256,
            steps_per_epoch: 200,
            epochs_finetune: 100,
            epochs_scratch: 250,
            framework_overhead_bytes: 800.0 * MIB,
            inplace_factor: 0.35,
        }
    }

    /// Epochs a block of the given variant trains for (zero for frozen
    /// base blocks).
    pub fn epochs_for(&self, variant: &BlockVariant) -> u32 {
        match variant {
            BlockVariant::Base => 0,
            BlockVariant::Head { .. } | BlockVariant::PrunedHead { .. } => self.epochs_finetune,
            BlockVariant::FineTuned { from_scratch, .. } | BlockVariant::Pruned { from_scratch, .. } => {
                if *from_scratch {
                    self.epochs_scratch
                } else {
                    self.epochs_finetune
                }
            }
        }
    }

    /// Training cost `ct(s^d)` in GPU-seconds for one block.
    ///
    /// A trainable block pays forward + backward (~3x forward FLOPs, the
    /// standard estimate) for every sample of every epoch. Pruned variants
    /// are fine-tuned *before* pruning (single-shot pruning, Sec. II), so
    /// they pay the cost of their unpruned FLOPs; we approximate that with
    /// the pruned structure's parent cost via the head-block convention:
    /// the cost charged is that of the block as stored, which for pruned
    /// blocks slightly underestimates — acceptable because the paper's `ct`
    /// is itself an offline-profiled scalar input.
    pub fn block_training_seconds(&self, m: &BlockMetrics, variant: &BlockVariant) -> f64 {
        let epochs = self.epochs_for(variant) as f64;
        if epochs == 0.0 || m.trainable_params == 0 {
            return 0.0;
        }
        // Head-only variants backprop through the head alone; fully
        // trainable blocks through everything they contain.
        let trainable_fraction = m.trainable_params as f64 / m.params.max(1) as f64;
        let train_flops = 3.0 * m.flops as f64 * trainable_fraction;
        let samples = self.batch_size as f64 * self.steps_per_epoch as f64;
        epochs * samples * train_flops / self.hardware.flops_per_sec
    }

    /// Wall-clock seconds for one fine-tuning epoch of a whole path
    /// (forward through every block, backward through trainable ones).
    pub fn epoch_seconds(&self, blocks: &[&BlockEntry]) -> f64 {
        let samples = self.batch_size as f64 * self.steps_per_epoch as f64;
        let flops: f64 = blocks
            .iter()
            .map(|b| {
                let fwd = b.metrics.flops as f64;
                let trainable_fraction = b.metrics.trainable_params as f64 / b.metrics.params.max(1) as f64;
                fwd * (1.0 + 2.0 * trainable_fraction)
            })
            .sum();
        samples * flops / self.hardware.flops_per_sec
    }

    /// Peak GPU memory in bytes while fine-tuning a path composed of the
    /// given blocks (Fig. 2 right).
    pub fn peak_training_bytes(&self, blocks: &[&BlockEntry]) -> f64 {
        let batch = self.batch_size as f64;

        let weights: f64 = blocks.iter().map(|b| b.metrics.params as f64).sum::<f64>() * BYTES_PER_ELEMENT;
        // Gradient + two Adam moments per trainable parameter.
        let optimizer: f64 =
            blocks.iter().map(|b| b.metrics.trainable_params as f64).sum::<f64>() * 3.0 * BYTES_PER_ELEMENT;
        // Activations retained for backward: all activations of blocks with
        // trainable *features*; head-only blocks retain just the pooled
        // feature vector, which is negligible.
        let stored: f64 = blocks
            .iter()
            .filter(|b| b.metrics.trainable_params > 0 && !b.key.variant.frozen_features())
            .map(|b| b.metrics.activation_elements as f64)
            .sum::<f64>()
            * batch
            * BYTES_PER_ELEMENT
            * self.inplace_factor;
        // Transient forward double-buffer sized by the largest activation.
        let peak_act = blocks.iter().map(|b| b.metrics.peak_activation_elements).max().unwrap_or(0) as f64;
        let transient = 2.0 * peak_act * batch * BYTES_PER_ELEMENT;

        self.framework_overhead_bytes + weights + optimizer + stored + transient
    }
}

impl Default for TrainingSetup {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_dnn::config::{Config, PathConfig};
    use offloadnn_dnn::models::resnet18;
    use offloadnn_dnn::repository::Repository;
    use offloadnn_dnn::shape::TensorShape;
    use offloadnn_dnn::GroupId;

    fn path_blocks(cfg: Config, pruned: bool) -> (Repository, Vec<offloadnn_dnn::BlockId>) {
        let mut r = Repository::new();
        let m = r.add_model(resnet18(60, 1000, TensorShape::new(3, 224, 224)));
        let p = r.instantiate_path(m, GroupId(0), PathConfig { config: cfg, pruned }, 0.8).unwrap();
        (r, p.blocks)
    }

    fn peak_mib(cfg: Config) -> f64 {
        let setup = TrainingSetup::reference();
        let (r, ids) = path_blocks(cfg, false);
        let blocks: Vec<&offloadnn_dnn::BlockEntry> = ids.iter().map(|&b| r.block(b)).collect();
        setup.peak_training_bytes(&blocks) / MIB
    }

    #[test]
    fn figure2_memory_ordering() {
        // Fig. 2 (right): A highest; B and C markedly lower ("1.8x less
        // than baseline"); D and E in between.
        let (a, b, c, d, e) = (
            peak_mib(Config::A),
            peak_mib(Config::B),
            peak_mib(Config::C),
            peak_mib(Config::D),
            peak_mib(Config::E),
        );
        assert!(a > e && e > d && d > c && c > b, "ordering A>{e}>{d}>{c}>{b} violated: {a} {e} {d} {c} {b}");
        let ratio = a / b;
        assert!((1.5..2.6).contains(&ratio), "A/B memory ratio {ratio} outside the paper's ~1.8x band");
    }

    #[test]
    fn figure2_memory_scale() {
        // The paper's axis runs ~2000..5000 MiB; stay in the same decade.
        let a = peak_mib(Config::A);
        let b = peak_mib(Config::B);
        assert!((3000.0..8000.0).contains(&a), "CONFIG A peak {a} MiB");
        assert!((1500.0..4000.0).contains(&b), "CONFIG B peak {b} MiB");
    }

    #[test]
    fn base_blocks_cost_nothing_to_train() {
        let setup = TrainingSetup::reference();
        let (r, ids) = path_blocks(Config::C, false);
        for &id in &ids[..3] {
            let b = r.block(id);
            assert_eq!(setup.block_training_seconds(&b.metrics, &b.key.variant), 0.0);
        }
        let last = r.block(ids[3]);
        assert!(setup.block_training_seconds(&last.metrics, &last.key.variant) > 0.0);
    }

    #[test]
    fn scratch_training_costs_more_than_finetuning() {
        let setup = TrainingSetup::reference();
        let (ra, ids_a) = path_blocks(Config::A, false);
        let (rc, ids_c) = path_blocks(Config::C, false);
        let cost = |r: &Repository, ids: &[offloadnn_dnn::BlockId]| -> f64 {
            ids.iter()
                .map(|&id| {
                    let b = r.block(id);
                    setup.block_training_seconds(&b.metrics, &b.key.variant)
                })
                .sum()
        };
        assert!(cost(&ra, &ids_a) > 2.0 * cost(&rc, &ids_c));
    }

    #[test]
    fn head_only_training_is_cheap() {
        let setup = TrainingSetup::reference();
        let (r, ids) = path_blocks(Config::B, false);
        let head = r.block(ids[3]);
        let head_cost = setup.block_training_seconds(&head.metrics, &head.key.variant);
        let (r2, ids2) = path_blocks(Config::C, false);
        let ft = r2.block(ids2[3]);
        let ft_cost = setup.block_training_seconds(&ft.metrics, &ft.key.variant);
        assert!(head_cost < 0.05 * ft_cost, "head-only {head_cost} vs fine-tuned {ft_cost}");
    }

    #[test]
    fn epoch_seconds_grows_with_trainable_fraction() {
        let setup = TrainingSetup::reference();
        let (ra, ids_a) = path_blocks(Config::A, false);
        let (rb, ids_b) = path_blocks(Config::B, false);
        let ea = setup.epoch_seconds(&ids_a.iter().map(|&b| ra.block(b)).collect::<Vec<_>>());
        let eb = setup.epoch_seconds(&ids_b.iter().map(|&b| rb.block(b)).collect::<Vec<_>>());
        assert!(ea > eb, "full training epoch {ea} must exceed head-only epoch {eb}");
    }
}

//! Analytic profiling models for the OffloaDNN reproduction.
//!
//! The paper derives per-block inference time, memory, training cost and
//! accuracy "experimentally" on real GPUs and datasets; this crate replaces
//! those measurements with calibrated analytic models (see `DESIGN.md` for
//! the substitution rationale):
//!
//! * [`hardware`] — roofline latency + memory model of the edge GPU.
//! * [`training`] — fine-tuning cost and peak-training-memory (Fig. 2).
//! * [`accuracy`] — learning curves and deployed path accuracy.
//! * [`dataset`] — the Table II base dataset and extension tasks.
//! * [`cost`] — per-[`BlockId`](offloadnn_dnn::BlockId) cost tables, the
//!   direct input of the DOT problem.
//!
//! # Example
//!
//! ```
//! use offloadnn_profiler::cost::{CostTable, ProfileConfig};
//! use offloadnn_dnn::{models::resnet18, repository::Repository, GroupId, TensorShape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut repo = Repository::new();
//! let m = repo.add_model(resnet18(60, 1000, TensorShape::new(3, 224, 224)));
//! let paths = repo.all_paths(m, GroupId(0), 0.8)?;
//! let table = CostTable::profile(&repo, &ProfileConfig::reference());
//! let latency = table.path_compute_seconds(&paths[0]);
//! assert!(latency > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accuracy;
pub mod cost;
pub mod curves;
pub mod dataset;
pub mod hardware;
pub mod training;

pub use accuracy::AccuracyModel;
pub use cost::{path_accuracy, BlockCosts, CostTable, ProfileConfig};
pub use curves::{CurveSimulator, TrainingRun};
pub use hardware::HardwareModel;
pub use training::TrainingSetup;

//! Parametric edge-hardware model mapping structural DNN metrics to time
//! and memory.
//!
//! The paper derives per-block inference compute time `c(s^d)` and memory
//! `mu(s^d)` "experimentally" on real GPUs. We substitute a roofline-style
//! analytic model: a block's latency is its kernel-launch overhead plus the
//! max of its compute time (FLOPs / effective throughput) and its memory
//! time (bytes moved / bandwidth). The default profile is calibrated so a
//! full ResNet-18 inference lands in the 8–9 ms range of Fig. 3 and an 80 %
//! pruned one near 2 ms, preserving every ordering the evaluation relies on.

use offloadnn_dnn::block::BlockMetrics;
use offloadnn_dnn::graph::LayerGraph;
use serde::{Deserialize, Serialize};

/// Bytes per parameter / activation element (fp32).
pub const BYTES_PER_ELEMENT: f64 = 4.0;

/// A GPU (or accelerator) performance profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareModel {
    /// Sustained effective throughput in FLOP/s (already derated for
    /// utilisation; not the datasheet peak).
    pub flops_per_sec: f64,
    /// Sustained memory bandwidth in bytes/s.
    pub bytes_per_sec: f64,
    /// Fixed per-kernel launch/dispatch overhead in seconds.
    pub kernel_overhead_sec: f64,
}

impl HardwareModel {
    /// The edge-server GPU profile used throughout the reproduction
    /// (calibrated to Fig. 3's inference-time range).
    pub fn edge_gpu() -> Self {
        Self { flops_per_sec: 600e9, bytes_per_sec: 100e9, kernel_overhead_sec: 30e-6 }
    }

    /// A training-class GPU (used for fine-tuning cost, which the paper
    /// normalises by `Ct` anyway).
    pub fn training_gpu() -> Self {
        Self { flops_per_sec: 5e12, bytes_per_sec: 600e9, kernel_overhead_sec: 10e-6 }
    }

    /// A deliberately slow profile, handy in tests that need compute-bound
    /// behaviour.
    pub fn slow() -> Self {
        Self { flops_per_sec: 50e9, bytes_per_sec: 20e9, kernel_overhead_sec: 50e-6 }
    }

    /// Inference latency in seconds for one sample through a block with the
    /// given structural metrics.
    pub fn block_latency(&self, m: &BlockMetrics) -> f64 {
        let compute = m.flops as f64 / self.flops_per_sec;
        // Bytes moved: weights once + activations written once (reads of
        // activations overlap with compute on real hardware; the factor is
        // absorbed by the calibrated bandwidth).
        let bytes = (m.params as f64 + m.activation_elements as f64) * BYTES_PER_ELEMENT;
        let memory = bytes / self.bytes_per_sec;
        m.kernel_launches as f64 * self.kernel_overhead_sec + compute.max(memory)
    }

    /// Inference latency in seconds for one sample through a whole graph.
    pub fn graph_latency(&self, g: &LayerGraph) -> f64 {
        let m = BlockMetrics {
            params: g.params(),
            trainable_params: 0,
            flops: g.flops(),
            activation_elements: g.activation_elements(),
            peak_activation_elements: g.peak_activation_elements(),
            kernel_launches: g.kernel_launches(),
        };
        self.block_latency(&m)
    }

    /// Resident inference memory in bytes for a set of block parameter
    /// counts (weights only; transient activation workspace is charged
    /// separately by the server model).
    pub fn weights_bytes(&self, params: u64) -> f64 {
        params as f64 * BYTES_PER_ELEMENT
    }
}

impl Default for HardwareModel {
    fn default() -> Self {
        Self::edge_gpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_dnn::models::resnet18;
    use offloadnn_dnn::shape::TensorShape;

    #[test]
    fn resnet18_latency_in_figure3_range() {
        let hw = HardwareModel::edge_gpu();
        let m = resnet18(60, 1000, TensorShape::new(3, 224, 224));
        let total: f64 = m.blocks.iter().map(|b| hw.graph_latency(b)).sum();
        let ms = total * 1e3;
        assert!((5.0..12.0).contains(&ms), "full ResNet-18 latency {ms} ms out of calibration range");
    }

    #[test]
    fn pruned_path_latency_drops_substantially() {
        use offloadnn_dnn::config::{Config, PathConfig};
        use offloadnn_dnn::repository::Repository;
        use offloadnn_dnn::GroupId;

        let hw = HardwareModel::edge_gpu();
        let mut r = Repository::new();
        let m = r.add_model(resnet18(60, 1000, TensorShape::new(3, 224, 224)));
        let full =
            r.instantiate_path(m, GroupId(0), PathConfig { config: Config::A, pruned: false }, 0.8).unwrap();
        let pruned =
            r.instantiate_path(m, GroupId(0), PathConfig { config: Config::A, pruned: true }, 0.8).unwrap();
        let lat = |p: &offloadnn_dnn::DnnPath| -> f64 {
            p.blocks.iter().map(|&b| hw.block_latency(&r.block(b).metrics)).sum()
        };
        let (lf, lp) = (lat(&full), lat(&pruned));
        assert!(lp < 0.55 * lf, "80% pruning should cut latency by roughly half or more: {lp} vs {lf}");
        assert!(lp > 0.05 * lf, "overheads keep pruned latency from collapsing to zero");
    }

    #[test]
    fn latency_monotone_in_throughput() {
        let m = resnet18(60, 1000, TensorShape::new(3, 224, 224));
        let fast = HardwareModel::edge_gpu();
        let slow = HardwareModel::slow();
        for b in &m.blocks {
            assert!(slow.graph_latency(b) > fast.graph_latency(b));
        }
    }

    #[test]
    fn weights_bytes_is_fp32() {
        let hw = HardwareModel::default();
        assert_eq!(hw.weights_bytes(1_000_000), 4_000_000.0);
    }
}

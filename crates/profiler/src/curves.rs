//! Stochastic training runs: the deterministic learning curves of
//! [`crate::accuracy::AccuracyModel::curve`] plus seeded epoch-to-epoch
//! noise, giving the simulator the texture of real fine-tuning logs —
//! multi-seed mean/std bands, time-to-target measurements and
//! early-stopping decisions (what a practitioner would actually deploy).

use crate::accuracy::AccuracyModel;
use offloadnn_dnn::config::Config;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One simulated fine-tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingRun {
    /// The Table I configuration trained.
    pub config: Config,
    /// RNG seed of the run.
    pub seed: u64,
    /// Validation accuracy after each epoch (`accuracy[e]` = epoch `e+1`).
    pub accuracy: Vec<f64>,
}

impl TrainingRun {
    /// Epoch (1-based) with the best validation accuracy.
    pub fn best_epoch(&self) -> usize {
        self.accuracy.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i + 1).unwrap_or(0)
    }

    /// Best validation accuracy seen.
    pub fn best_accuracy(&self) -> f64 {
        self.accuracy.iter().copied().fold(0.0, f64::max)
    }

    /// First epoch (1-based) reaching `target`, if any.
    pub fn epochs_to_reach(&self, target: f64) -> Option<usize> {
        self.accuracy.iter().position(|&a| a >= target).map(|i| i + 1)
    }

    /// The epoch early stopping with the given patience would keep: the
    /// best epoch seen before `patience` consecutive non-improving epochs.
    pub fn early_stop_epoch(&self, patience: usize) -> usize {
        let mut best = 0.0f64;
        let mut best_epoch = 0usize;
        let mut stale = 0usize;
        for (i, &a) in self.accuracy.iter().enumerate() {
            if a > best {
                best = a;
                best_epoch = i + 1;
                stale = 0;
            } else {
                stale += 1;
                if stale >= patience {
                    break;
                }
            }
        }
        best_epoch
    }
}

/// The simulator: deterministic curve + AR(1) validation noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurveSimulator {
    /// The underlying accuracy model.
    pub model: AccuracyModel,
    /// Standard deviation of the per-epoch validation noise.
    pub noise_std: f64,
    /// AR(1) correlation of consecutive epochs' noise.
    pub noise_rho: f64,
}

impl CurveSimulator {
    /// Reference noise level (~0.8 accuracy points epoch-to-epoch).
    pub fn reference() -> Self {
        Self { model: AccuracyModel::reference(), noise_std: 0.008, noise_rho: 0.7 }
    }

    /// Simulates one run of `epochs` epochs.
    pub fn run(&self, config: Config, epochs: usize, seed: u64) -> TrainingRun {
        let mut rng = StdRng::seed_from_u64(seed ^ (config as u64) << 32);
        let mut noise = 0.0f64;
        let innovation = self.noise_std * (1.0 - self.noise_rho * self.noise_rho).sqrt();
        let accuracy = (1..=epochs)
            .map(|e| {
                let eps: f64 = rng.random_range(-1.732..1.732); // unit-variance uniform
                noise = self.noise_rho * noise + innovation * eps;
                (self.model.curve(config, e as u32) + noise).clamp(0.0, 1.0)
            })
            .collect();
        TrainingRun { config, seed, accuracy }
    }

    /// Mean and standard deviation over `seeds` runs, per epoch.
    pub fn mean_band(&self, config: Config, epochs: usize, seeds: u64) -> (Vec<f64>, Vec<f64>) {
        let runs: Vec<TrainingRun> = (0..seeds).map(|s| self.run(config, epochs, s)).collect();
        let mut mean = vec![0.0; epochs];
        let mut std = vec![0.0; epochs];
        for e in 0..epochs {
            let vals: Vec<f64> = runs.iter().map(|r| r.accuracy[e]).collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            let v = vals.iter().map(|x| (x - m).powi(2)).sum::<f64>() / vals.len() as f64;
            mean[e] = m;
            std[e] = v.sqrt();
        }
        (mean, std)
    }
}

impl Default for CurveSimulator {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_reproducible_and_distinct_across_seeds() {
        let sim = CurveSimulator::reference();
        let a = sim.run(Config::C, 100, 1);
        let b = sim.run(Config::C, 100, 1);
        let c = sim.run(Config::C, 100, 2);
        assert_eq!(a, b);
        assert_ne!(a.accuracy, c.accuracy);
    }

    #[test]
    fn mean_band_brackets_deterministic_curve() {
        let sim = CurveSimulator::reference();
        let (mean, std) = sim.mean_band(Config::D, 150, 32);
        for (e, (&m, &s)) in mean.iter().zip(&std).enumerate() {
            let det = sim.model.curve(Config::D, (e + 1) as u32);
            assert!(
                (m - det).abs() < 0.01 + 3.0 * s / (32f64).sqrt(),
                "epoch {}: mean {m} vs deterministic {det}",
                e + 1
            );
        }
    }

    #[test]
    fn early_stopping_beats_training_to_the_bitter_end_for_config_b() {
        // CONFIG B overfits: stopping at the peak must beat epoch 250.
        let sim = CurveSimulator::reference();
        let run = sim.run(Config::B, 250, 7);
        let stop = run.early_stop_epoch(20);
        assert!(stop < 200, "early stopping must trigger before the end: {stop}");
        let final_acc = *run.accuracy.last().unwrap();
        assert!(run.accuracy[stop - 1] > final_acc, "stopped model beats the overtrained one");
    }

    #[test]
    fn time_to_target_ordering_survives_noise() {
        // Even with noise, B reaches 75% long before A, on every seed.
        let sim = CurveSimulator::reference();
        for seed in 0..10 {
            let b = sim.run(Config::B, 300, seed).epochs_to_reach(0.75).expect("B reaches 75%");
            let a = sim.run(Config::A, 300, seed).epochs_to_reach(0.75).expect("A reaches 75%");
            assert!(b < a, "seed {seed}: B {b} vs A {a}");
        }
    }

    #[test]
    fn best_epoch_and_accuracy_consistent() {
        let sim = CurveSimulator::reference();
        let run = sim.run(Config::E, 120, 3);
        let be = run.best_epoch();
        assert!((run.accuracy[be - 1] - run.best_accuracy()).abs() < 1e-12);
        assert!(run.best_accuracy() > 0.7);
    }
}

//! The paper's datasets: the 60-category base dataset (Table II) and the
//! new-task extensions used in Sec. II's motivating experiments.
//!
//! Categories also carry a deterministic per-class difficulty offset so the
//! accuracy model can differentiate tasks without any randomness.

use serde::{Deserialize, Serialize};

/// One thematic section of the base dataset (a row of Table II).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Section {
    /// Section name ("Vehicle", "Snakes", ...).
    pub name: String,
    /// Category names in the section.
    pub categories: Vec<String>,
}

/// The whole base dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// Thematic sections.
    pub sections: Vec<Section>,
}

impl Dataset {
    /// Total category count (60 for the base dataset).
    pub fn num_categories(&self) -> usize {
        self.sections.iter().map(|s| s.categories.len()).sum()
    }

    /// Flat iterator over all category names.
    pub fn categories(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().flat_map(|s| s.categories.iter().map(String::as_str))
    }
}

fn section(name: &str, exemplar: &str, count: usize) -> Section {
    let mut categories = Vec::with_capacity(count);
    categories.push(exemplar.to_owned());
    for i in 1..count {
        categories.push(format!("{} #{i}", name.trim_end_matches('s').to_lowercase()));
    }
    Section { name: name.to_owned(), categories }
}

/// The Table II base dataset: 60 object categories in five sections.
pub fn base_dataset() -> Dataset {
    Dataset {
        sections: vec![
            section("Vehicle", "bus", 12),
            section("Wild animals", "koala", 18),
            section("Snakes", "green snake", 10),
            section("Cats", "Persian cat", 6),
            section("Household Objects", "toaster", 14),
        ],
    }
}

/// A new task arriving at the edge, requiring fine-tuning on extra classes
/// (Sec. II's motivating experiments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtensionTask {
    /// Task name.
    pub name: String,
    /// Exemplar target class.
    pub target_class: String,
    /// Difficulty offset fed to the accuracy model (0 = average).
    pub difficulty: f64,
}

/// The two extension tasks the paper's motivation section uses.
pub fn extension_tasks() -> Vec<ExtensionTask> {
    vec![
        ExtensionTask { name: "Grocery items".into(), target_class: "mushroom".into(), difficulty: 0.01 },
        ExtensionTask {
            name: "Musical instruments".into(),
            target_class: "electric guitar".into(),
            difficulty: 0.005,
        },
    ]
}

/// A deterministic per-category difficulty offset in `[0, 0.03)`, derived
/// from the category name (an FNV-1a hash), so repeated runs agree.
pub fn category_difficulty(category: &str) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in category.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % 1000) as f64 / 1000.0 * 0.03
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_dataset_has_sixty_categories() {
        let d = base_dataset();
        assert_eq!(d.num_categories(), 60);
        assert_eq!(d.sections.len(), 5);
    }

    #[test]
    fn table_ii_section_sizes() {
        let d = base_dataset();
        let sizes: Vec<(&str, usize)> =
            d.sections.iter().map(|s| (s.name.as_str(), s.categories.len())).collect();
        assert_eq!(
            sizes,
            vec![
                ("Vehicle", 12),
                ("Wild animals", 18),
                ("Snakes", 10),
                ("Cats", 6),
                ("Household Objects", 14)
            ]
        );
    }

    #[test]
    fn exemplars_match_paper() {
        let d = base_dataset();
        let all: Vec<&str> = d.categories().collect();
        for exemplar in ["bus", "koala", "green snake", "Persian cat", "toaster"] {
            assert!(all.contains(&exemplar), "{exemplar} missing");
        }
    }

    #[test]
    fn difficulty_is_deterministic_and_bounded() {
        let a = category_difficulty("electric guitar");
        let b = category_difficulty("electric guitar");
        assert_eq!(a, b);
        for c in base_dataset().categories() {
            let d = category_difficulty(c);
            assert!((0.0..0.03).contains(&d));
        }
    }

    #[test]
    fn extension_tasks_present() {
        let t = extension_tasks();
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].target_class, "electric guitar");
    }
}

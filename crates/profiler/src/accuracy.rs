//! Parametric accuracy models.
//!
//! Two related models substitute the paper's measured accuracies:
//!
//! * [`AccuracyModel::curve`] — a learning curve (accuracy vs. training
//!   epoch) per Table I configuration, calibrated to reproduce every
//!   qualitative feature of Fig. 2 (left): shared configurations converge
//!   much faster; heavily-shared ones (B, C) eventually overfit and end
//!   below the from-scratch baseline; the baseline needs >200 epochs to
//!   approach 80 % but wins given enough epochs.
//! * [`AccuracyModel::deployed`] — the accuracy `a_tau(q, pi)` a *deployed*
//!   path achieves, as a function of model capacity, sharing split, pruned
//!   parameter fraction and input quality. This is the DOT constraint (1f)
//!   input.
//!
//! All outputs are top-1 accuracies in `[0, 1]`.

use offloadnn_dnn::config::Config;
use serde::{Deserialize, Serialize};

/// Accuracy model parameters (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyModel {
    /// Parameter count of the reference model (ResNet-18, width 1.0).
    pub reference_params: f64,
    /// Deployed accuracy of the reference model, fully fine-tuned, on
    /// full-quality input.
    pub reference_accuracy: f64,
    /// Accuracy gained per doubling of parameters (the paper's intro:
    /// ResNet-152 is 8.7x larger than MobileNetV2 and +5.2 % top-1).
    pub capacity_per_doubling: f64,
    /// Coefficient of the pruning penalty `coef * ratio^1.5 * fraction`.
    pub prune_coefficient: f64,
    /// Accuracy lost per unit of quality reduction (linear in `1 - q`).
    pub quality_slope: f64,
    /// Top-1 accuracy lost by INT8 quantisation of a CNN (post-training
    /// quantisation of ResNets typically costs well under a point).
    pub quantization_penalty: f64,
}

impl AccuracyModel {
    /// The reproduction's reference calibration.
    pub fn reference() -> Self {
        Self {
            reference_params: 11.7e6,
            reference_accuracy: 0.92,
            capacity_per_doubling: 0.02,
            prune_coefficient: 0.18,
            quality_slope: 0.12,
            quantization_penalty: 0.006,
        }
    }

    /// Learning-curve accuracy after `epoch` epochs of training the given
    /// Table I configuration on a new task (Fig. 2 left).
    pub fn curve(&self, config: Config, epoch: u32) -> f64 {
        let e = epoch as f64;
        let (a_inf, tau, overfit_start, overfit_rate) = match config {
            // (asymptote, time constant, overfit onset epoch, decline/epoch)
            Config::A => (0.90, 80.0, f64::INFINITY, 0.0),
            Config::E => (0.855, 40.0, f64::INFINITY, 0.0),
            Config::D => (0.845, 28.0, f64::INFINITY, 0.0),
            Config::C => (0.840, 18.0, 120.0, 0.0004),
            Config::B => (0.800, 10.0, 80.0, 0.0003),
        };
        let rise = a_inf * (1.0 - (-e / tau).exp());
        let decline = if e > overfit_start { (e - overfit_start) * overfit_rate } else { 0.0 };
        (rise - decline).clamp(0.0, 1.0)
    }

    /// Accuracy penalty for pruning `fraction` of a path's parameters at
    /// the given channel ratio.
    pub fn prune_penalty(&self, ratio: f64, pruned_fraction: f64) -> f64 {
        self.prune_coefficient * ratio.powf(1.5) * pruned_fraction.clamp(0.0, 1.0)
    }

    /// Accuracy adjustment for input quality `q` in `(0, 1]` (1 = full
    /// sensor quality); zero at full quality, negative below.
    pub fn quality_adjust(&self, quality: f64) -> f64 {
        self.quality_slope * (quality.clamp(0.05, 1.0) - 1.0)
    }

    /// Per-configuration adjustment of *deployed* accuracy. Fine-tuning
    /// from the pretrained base with one frozen block (E) ends best —
    /// pretrained low-level features transfer and regularise (He et al.,
    /// "Rethinking ImageNet pre-training": training from scratch catches
    /// up but rarely surpasses on modest datasets, which is why A sits
    /// marginally below D/E); freezing everything (B) costs the most.
    pub fn share_adjust(&self, config: Config) -> f64 {
        match config {
            Config::E => 0.0,
            Config::D => -0.004,
            Config::A => -0.006,
            Config::C => -0.008,
            Config::B => -0.020,
        }
    }

    /// Deployed accuracy of a path (DOT constraint (1f) input).
    ///
    /// * `unpruned_params` — parameter count of the path's *unpruned*
    ///   sibling (capacity proxy).
    /// * `config` — the Table I configuration the path realises.
    /// * `prune_ratio` / `pruned_fraction` — channel ratio and the fraction
    ///   of path parameters removed (0 for unpruned paths).
    /// * `quality` — input quality level `q` in `(0, 1]`.
    /// * `difficulty` — task-specific offset (0 for an average task).
    pub fn deployed(
        &self,
        unpruned_params: u64,
        config: Config,
        prune_ratio: f64,
        pruned_fraction: f64,
        quality: f64,
        difficulty: f64,
    ) -> f64 {
        let capacity = self.capacity_per_doubling * (unpruned_params as f64 / self.reference_params).log2();
        let acc = self.reference_accuracy + capacity + self.share_adjust(config)
            - self.prune_penalty(prune_ratio, pruned_fraction)
            + self.quality_adjust(quality)
            - difficulty;
        acc.clamp(0.02, 0.98)
    }
}

impl Default for AccuracyModel {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: AccuracyModel = AccuracyModel {
        reference_params: 11.7e6,
        reference_accuracy: 0.92,
        capacity_per_doubling: 0.02,
        prune_coefficient: 0.18,
        quality_slope: 0.12,
        quantization_penalty: 0.006,
    };

    #[test]
    fn curve_shared_configs_converge_faster() {
        // Fig. 2: B and C reach ~80 % much earlier than A.
        let epoch_to_reach = |cfg: Config, target: f64| -> u32 {
            (1..=400).find(|&e| M.curve(cfg, e) >= target).unwrap_or(400)
        };
        let a = epoch_to_reach(Config::A, 0.78);
        let b = epoch_to_reach(Config::B, 0.78);
        let c = epoch_to_reach(Config::C, 0.78);
        assert!(a > 150, "A must need >150 epochs for ~80%: took {a}");
        assert!(b < 60 && c < 80, "B ({b}) and C ({c}) converge fast");
    }

    #[test]
    fn curve_c_outperforms_d_and_e_early() {
        for e in [20, 40, 60, 80, 100] {
            assert!(M.curve(Config::C, e) > M.curve(Config::D, e));
            assert!(M.curve(Config::D, e) > M.curve(Config::E, e));
        }
    }

    #[test]
    fn curve_baseline_wins_after_250_epochs() {
        let a = M.curve(Config::A, 250);
        for cfg in [Config::B, Config::C, Config::D, Config::E] {
            assert!(a > M.curve(cfg, 250), "A must beat {cfg:?} at 250 epochs");
        }
    }

    #[test]
    fn curve_b_and_c_overfit() {
        // Their accuracy at 250 epochs is below their own peak.
        for cfg in [Config::B, Config::C] {
            let peak = (1..=250).map(|e| M.curve(cfg, e)).fold(0.0f64, f64::max);
            assert!(M.curve(cfg, 250) < peak - 1e-6, "{cfg:?} must decline from its peak");
        }
        // D and E do not decline.
        for cfg in [Config::D, Config::E] {
            let peak = (1..=250).map(|e| M.curve(cfg, e)).fold(0.0f64, f64::max);
            assert!(M.curve(cfg, 250) >= peak - 1e-9);
        }
    }

    #[test]
    fn deployed_ordering_by_share_split() {
        let acc = |cfg| M.deployed(11_700_000, cfg, 0.0, 0.0, 1.0, 0.0);
        assert!(acc(Config::E) > acc(Config::D));
        assert!(acc(Config::D) > acc(Config::A), "pretraining helps at deployment");
        assert!(acc(Config::A) > acc(Config::C));
        assert!(acc(Config::C) > acc(Config::B), "fully frozen features cost the most");
    }

    #[test]
    fn deployed_tops_small_scenario_requirement() {
        // The small scenario's strictest task needs 0.9 top-1; a fully
        // fine-tuned reference path must satisfy it.
        let acc = M.deployed(11_700_000, Config::E, 0.0, 0.0, 1.0, 0.0);
        assert!(acc >= 0.9, "got {acc}");
    }

    #[test]
    fn pruning_always_costs_accuracy() {
        for cfg in Config::ALL {
            let full = M.deployed(11_700_000, cfg, 0.0, 0.0, 1.0, 0.0);
            let pruned = M.deployed(11_700_000, cfg, 0.8, 0.5, 1.0, 0.0);
            assert!(pruned < full);
        }
    }

    #[test]
    fn b_pruned_loses_least() {
        // Fig. 3 (right): CONFIG B's pruned fraction is tiny (head only),
        // so its penalty is smallest.
        let pen_b = M.prune_penalty(0.8, 0.003);
        let pen_a = M.prune_penalty(0.8, 0.95);
        assert!(pen_b < 0.01 * pen_a);
    }

    #[test]
    fn capacity_matches_intro_claim() {
        // 8.7x more params ~ +5-6 % accuracy with 0.02/doubling.
        let small = M.deployed(6_900_000, Config::A, 0.0, 0.0, 1.0, 0.0);
        let large = M.deployed(60_000_000, Config::A, 0.0, 0.0, 1.0, 0.0);
        let gain = large - small;
        assert!((0.04..0.08).contains(&gain), "gain {gain}");
    }

    #[test]
    fn quality_degrades_accuracy() {
        let hi = M.deployed(11_700_000, Config::C, 0.0, 0.0, 1.0, 0.0);
        let lo = M.deployed(11_700_000, Config::C, 0.0, 0.0, 0.5, 0.0);
        assert!(lo < hi);
        assert_eq!(M.quality_adjust(1.0), 0.0);
    }

    #[test]
    fn deployed_clamped() {
        let floor = M.deployed(1_000, Config::B, 0.9, 1.0, 0.05, 0.9);
        assert!(floor >= 0.02);
        let ceil = M.deployed(u64::MAX / 2, Config::A, 0.0, 0.0, 1.0, -10.0);
        assert!(ceil <= 0.98);
    }
}

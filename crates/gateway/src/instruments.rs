//! Gateway telemetry handles.
//!
//! The cluster tier reports these instruments into the global registry:
//!
//! * `gw.nodes.healthy` — gauge of nodes currently eligible for routing;
//! * `gw.membership.size` — gauge of the whole pool (probing, ejected
//!   and departed members included);
//! * `gw.joins` — accepted announces (new nodes and restarts);
//! * `gw.leaves` — accepted graceful leaves;
//! * `gw.failover` — tickets re-routed to a survivor after their node
//!   failed mid-flight;
//! * `gw.hedges` — duplicate submits launched by the deadline-aware
//!   hedger;
//! * `gw.hedge_wins` — hedged tickets whose duplicate delivered the
//!   winning verdict;
//! * `gw.peers.healthy` — gauge of federated peer gateways currently
//!   answering load digests;
//! * `gw.forwards` — tickets the local cluster would have shed that
//!   were forwarded to a federated peer;
//! * `gw.forward_wins` — forwarded tickets the peer cluster admitted.
//!
//! Plus the `gw.route` span histogram around every rendezvous-routing
//! decision (recorded via the `span!` macro at the call site). As in
//! `offloadnn-net`, the handles are resolved once at gateway start and
//! only when telemetry is enabled; with it off (runtime switch or the
//! `disabled` feature) the whole struct is `None`.

use offloadnn_telemetry::{Counter, Gauge};
use std::sync::Arc;

/// Cached instrument handles, held by the gateway's shared state.
pub(crate) struct GwInstruments {
    /// Level gauge of nodes currently routable.
    pub nodes_healthy: Arc<Gauge>,
    /// Level gauge of the whole membership pool.
    pub membership_size: Arc<Gauge>,
    /// Accepted announces (joins and restarts).
    pub joins: Arc<Counter>,
    /// Accepted graceful leaves.
    pub leaves: Arc<Counter>,
    /// Tickets retried on a survivor after a node failure.
    pub failover: Arc<Counter>,
    /// Duplicate submits launched by the hedger.
    pub hedges: Arc<Counter>,
    /// Hedged tickets won by the duplicate.
    pub hedge_wins: Arc<Counter>,
    /// Level gauge of federated peers currently answering digests.
    pub peers_healthy: Arc<Gauge>,
    /// Tickets forwarded to a federated peer instead of shed locally.
    pub forwards: Arc<Counter>,
    /// Forwarded tickets admitted by the peer cluster.
    pub forward_wins: Arc<Counter>,
}

impl GwInstruments {
    /// Resolves the handles from the global registry, or `None` while
    /// telemetry is off (so disabled builds never touch the registry).
    pub(crate) fn new() -> Option<Self> {
        if !offloadnn_telemetry::enabled() {
            return None;
        }
        let registry = offloadnn_telemetry::global();
        Some(Self {
            nodes_healthy: registry.gauge("gw.nodes.healthy"),
            membership_size: registry.gauge("gw.membership.size"),
            joins: registry.counter("gw.joins"),
            leaves: registry.counter("gw.leaves"),
            failover: registry.counter("gw.failover"),
            hedges: registry.counter("gw.hedges"),
            hedge_wins: registry.counter("gw.hedge_wins"),
            peers_healthy: registry.gauge("gw.peers.healthy"),
            forwards: registry.counter("gw.forwards"),
            forward_wins: registry.counter("gw.forward_wins"),
        })
    }
}

//! The gateway proper: the node pool, the submit path with failover and
//! hedging, and the [`Backend`] implementation that puts the whole
//! cluster tier behind an `offloadnn-net` frontend.
//!
//! # Verdict conservation
//!
//! The gateway maintains the same invariant its backends do: every
//! counted submit resolves to exactly one of admitted / rejected / shed
//! / expired ([`offloadnn_serve::MetricsSnapshot::is_conserved`]).
//! Cluster-level events map onto the verdict classes:
//!
//! * a ticket that exhausts its retry budget, or finds no healthy node,
//!   resolves **Shed** (cluster backpressure);
//! * a ticket whose deadline (plus `verdict_grace`) passes before any
//!   backend answers resolves **Expired**;
//! * everything else relays the winning backend verdict verbatim.
//!
//! Hedging introduces *duplicate* backend submits, which threatens
//! double-counting: the dedup rule is that exactly one attempt — the
//! first to deliver a verdict — settles the ticket, and every other
//! outstanding attempt is handed to the reaper, which waits out its
//! verdict and sends a [`offloadnn_net::Client::depart`] iff the loser
//! was *admitted* on its node. So the cluster-wide ledger stays
//! balanced: the winner's admission is owned by the caller (departed via
//! [`Gateway`] depart like any admission), the loser's admission is
//! departed by the reaper, and loser rejections/sheds/expiries need no
//! compensation. Synthesized gateway verdicts carry `shard: 0`.
//!
//! # Plan caching
//!
//! With [`GatewayConfig::plan_cache`] set, the gateway keeps an
//! [`offloadnn_plancache::PlanCache`] over task-shape fingerprints. The
//! cluster tier cannot replay a solver plan (the backends own their
//! ledgers), so the cached value is weaker than serve's: an **affinity**
//! entry remembers which node last admitted the shape (that node is
//! routed first, skipping the rendezvous pick), and a **negative** entry
//! remembers the cluster rejected the shape (the submit resolves
//! Rejected locally under the short negative TTL, without burning a
//! backend round trip). Affinity is only a routing hint — failover,
//! hedging and the conservation ledger are unchanged — so no
//! single-flight is used here: every admission consumes backend
//! capacity, and duplicate suppression is the hedging reaper's job.
//! The epoch is bumped whenever the pool changes underneath the cache
//! (node ejected, node readmitted, cluster reshard), and the ring
//! generation from the last reshard is part of every key.

use crate::config::{GatewayConfig, GatewayError};
use crate::health;
use crate::instruments::GwInstruments;
use crate::membership::{AnnounceOutcome, LeaveOutcome, Membership};
use crate::peer::{self, PeerSet};
use crate::router::{self, Candidate};
use crossbeam::channel::{self, Receiver, Sender};
use offloadnn_core::instance::PathOption;
use offloadnn_core::task::{Task, TaskId};
use offloadnn_net::codec::ErrorCode;
use offloadnn_net::{
    Backend, ForwardInfo, MemberInfo, MembershipAck, MembershipDecision, NetError, PeerDigest,
    PendingOutcome, PendingVerdict,
};
use offloadnn_plancache::{shape_fingerprint, PlanCache, PlanCacheStats, PlanKey};
use offloadnn_serve::{
    Admitter, DrainReport, MetricsSnapshot, Outcome, ReshardReport, ServeError, ServiceMetrics, SubmitError,
    VerdictError, VerdictHandle,
};
use offloadnn_telemetry::{event, span, Severity};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Polling slice while racing two in-flight attempts (no `select` over
/// verdict channels, so the ticket alternates bounded waits).
const RACE_SLICE: Duration = Duration::from_micros(500);

/// What the cluster tier memoizes per task shape: a routing affinity
/// (positive entries) or a cluster-level rejection (negative entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GwPlan {
    /// The pool index of the node that last admitted this shape.
    Affinity { node: usize },
    /// The cluster rejected this shape (cached under the negative TTL).
    Rejected,
}

/// Where an admitted task lives, so its depart routes back there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// Admitted on a local backend node (pool index).
    Node(usize),
    /// Admitted on a federated peer's cluster (peer index) after an
    /// overflow forward.
    Peer(usize),
}

/// Always-on federation counters, independent of telemetry gating, so
/// harnesses and loadgens can assert overflow behaviour even in
/// telemetry-disabled builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ForwardStats {
    /// Tickets the local cluster would have shed that were forwarded to
    /// a federated peer instead.
    pub forwards: u64,
    /// Forwarded tickets the peer cluster admitted.
    pub forward_wins: u64,
}

/// State shared between the gateway handle, its tickets and its threads.
pub(crate) struct GatewayInner {
    pub(crate) membership: Membership,
    pub(crate) config: GatewayConfig,
    /// The gateway's own conservation ledger (one verdict per submit).
    pub(crate) metrics: ServiceMetrics,
    draining: AtomicBool,
    /// Where each live admitted task went, so departs route back there.
    routes: Mutex<HashMap<TaskId, Route>>,
    /// Federated peer gateways (`None` without [`GatewayConfig::federation`]).
    pub(crate) peers: Option<PeerSet>,
    /// This gateway process's incarnation stamp, sent in `PeerHello`.
    pub(crate) incarnation: u64,
    /// Always-on forward counter (see [`ForwardStats`]).
    forwards: AtomicU64,
    /// Always-on forward-win counter (see [`ForwardStats`]).
    forward_wins: AtomicU64,
    /// Hand-off to the reaper thread; `None` once drain has begun (late
    /// losers are then reaped inline).
    reaper_tx: Mutex<Option<Sender<Loser>>>,
    instruments: Option<GwInstruments>,
    /// Cluster-level plan cache (`None` leaves the submit path as-is).
    pub(crate) plan_cache: Option<PlanCache<GwPlan>>,
}

impl GatewayInner {
    /// Routable candidates: healthy nodes minus the `exclude`d indices.
    fn healthy_candidates(&self, exclude: &[usize]) -> Vec<Candidate> {
        self.membership.healthy_candidates(exclude)
    }

    /// Publishes the `gw.nodes.healthy` and `gw.membership.size` gauges.
    pub(crate) fn publish_membership_gauges(&self) {
        if let Some(ins) = &self.instruments {
            ins.nodes_healthy.set(self.membership.healthy_count() as u64);
            ins.membership_size.set(self.membership.len() as u64);
        }
    }

    /// Ejects a node from the data path (dropped connection or failed
    /// send — stronger evidence than a missed probe).
    fn eject_node(&self, index: usize, why: &NetError) {
        let node = self.membership.node(index);
        if node.eject(self.config.probation) {
            event!(Severity::Warn, "gw.failover", "ejected {}: {why}", node.addr);
            // Affinity entries pointing at the dead node are now routing
            // lies; resident entries are dropped lazily via the epoch.
            self.invalidate_plans();
        }
        self.publish_membership_gauges();
    }

    /// Bumps the plan-cache epoch after a pool change (ejection,
    /// readmission, reshard); a no-op without a cache.
    pub(crate) fn invalidate_plans(&self) {
        if let Some(cache) = &self.plan_cache {
            cache.bump_epoch();
        }
    }

    /// Bumps a federated peer's plan-cache scope epoch (the peer's
    /// cluster state moved, or the peer went down): entries minted while
    /// serving that peer's forwarded overflow are orphaned without
    /// touching local or other-peer entries.
    pub(crate) fn bump_peer_scope(&self, scope: u64) {
        if let Some(cache) = &self.plan_cache {
            cache.bump_scope_epoch(scope);
        }
    }

    /// Publishes the `gw.peers.healthy` gauge.
    pub(crate) fn publish_peer_gauges(&self) {
        if let (Some(ins), Some(peers)) = (&self.instruments, &self.peers) {
            ins.peers_healthy.set(peers.healthy_count() as u64);
        }
    }

    /// Counts an overflow forward handed to a peer.
    fn count_forward(&self) {
        self.forwards.fetch_add(1, Ordering::Relaxed);
        if let Some(ins) = &self.instruments {
            ins.forwards.inc();
        }
    }

    /// Counts a forwarded ticket the peer admitted.
    fn count_forward_win(&self) {
        self.forward_wins.fetch_add(1, Ordering::Relaxed);
        if let Some(ins) = &self.instruments {
            ins.forward_wins.inc();
        }
    }

    /// The cache key for a submit, or `None` when caching is off. The
    /// bucket is the healthy-node count (coarse cluster capacity — a
    /// different pool size must not reuse plans minted for another) and
    /// the generation is the ring generation from the last reshard.
    /// Forwarded-in traffic passes the origin gateway's `scope`: its
    /// entries key under that peer's scope epoch so they can be dropped
    /// wholesale when the origin's cluster state moves
    /// ([`GatewayInner::bump_peer_scope`]).
    fn plan_key(&self, task: &Task, options: &[PathOption], scope: Option<u64>) -> Option<PlanKey> {
        let cache = self.plan_cache.as_ref()?;
        let healthy = self.membership.healthy_count();
        let key = PlanKey {
            shape: shape_fingerprint(task, options),
            bucket: u16::try_from(healthy).unwrap_or(u16::MAX),
            generation: self.metrics.generation.get(),
        };
        Some(match scope {
            Some(scope) => cache.scoped_key(key, scope),
            None => key,
        })
    }

    /// Hands a losing attempt to the reaper thread (inline once the
    /// reaper is gone, i.e. during drain).
    fn hand_to_reaper(&self, loser: Loser) {
        let sent = {
            let guard = self.reaper_tx.lock().expect("reaper tx lock poisoned");
            match guard.as_ref() {
                Some(tx) => tx.send(loser).map_err(|e| e.0).err(),
                None => Some(loser),
            }
        };
        if let Some(loser) = sent {
            reap(self, &loser);
        }
    }
}

/// A duplicate or abandoned in-flight attempt whose verdict must still
/// be accounted for (see the conservation notes in the module docs).
struct Loser {
    node: usize,
    task: TaskId,
    pv: PendingVerdict,
    /// How long the reaper waits for the verdict before giving up.
    deadline: Instant,
}

/// Waits out a loser's verdict; an admitted duplicate is departed on its
/// node so the cluster doesn't leak the capacity.
fn reap(inner: &GatewayInner, loser: &Loser) {
    let wait = loser.deadline.saturating_duration_since(Instant::now()) + Duration::from_millis(10);
    if let Some(Ok(Outcome::Admitted { .. })) = loser.pv.poll_wait(wait) {
        if let Ok(client) = inner.membership.node(loser.node).client(&inner.config.client) {
            let _ = client.depart(loser.task);
        }
    }
}

/// The reaper thread body: drains losers until the gateway closes the
/// channel at drain time.
fn reaper_loop(inner: &Arc<GatewayInner>, rx: &Receiver<Loser>) {
    while let Ok(loser) = rx.recv() {
        reap(inner, &loser);
    }
}

/// One in-flight backend submit owned by a [`GwPending`].
struct Attempt {
    node: usize,
    pv: PendingVerdict,
    started: Instant,
    is_hedge: bool,
}

/// What [`GwPending::launch`] did.
enum Launch {
    /// An attempt is in flight.
    Launched,
    /// No healthy untried node remains.
    NoCandidate,
    /// The send failed (the node was ejected); the caller retries.
    Failed,
}

/// Mutable ticket state behind the [`GwPending`] lock.
struct PendState {
    task: Task,
    options: Vec<PathOption>,
    born: Instant,
    deadline: Instant,
    /// Failover submits launched (hedges excluded); bounded by
    /// [`GatewayConfig::retry_limit`].
    attempts: u32,
    /// Node indices already attempted (never re-tried for this ticket).
    tried: Vec<usize>,
    /// Cached-affinity node to try before consulting the router.
    preferred: Option<usize>,
    /// Plan-cache key for this submit (`None` with caching off).
    key: Option<PlanKey>,
    primary: Option<Attempt>,
    hedge: Option<Attempt>,
    /// The one-shot hedge has fired (or been forfeited).
    hedged: bool,
    /// Forward hops this ticket may still take (0 = must resolve here).
    fwd_hops: u8,
    /// The originating gateway's identity when this ticket arrived via a
    /// `Forward` frame; `None` for locally submitted tickets.
    origin: Option<String>,
    /// Gateway identities this task has already visited (seeded from the
    /// incoming `Forward` frame's tried-set, grown per forward attempt);
    /// a cluster in this set is never forwarded to again.
    tried_peers: Vec<String>,
    /// A node relayed Shed during a *non-blocking* poll: the verdict was
    /// consumed but settling is deferred so the next blocking wait can
    /// try an overflow forward first (dialling a peer must not happen on
    /// the poll path).
    shed_pending: bool,
    done: Option<Outcome>,
}

/// A pending cluster verdict: the gateway-side analogue of
/// [`offloadnn_serve::Ticket`]. Resolution (including failover retries
/// and hedging) happens lazily inside [`PendingOutcome::wait`] /
/// [`PendingOutcome::try_wait`], on the caller's thread.
pub struct GwPending {
    inner: Arc<GatewayInner>,
    state: Mutex<PendState>,
}

impl GwPending {
    /// Routes and launches one backend submit. `try_wait` never calls
    /// this (dialling blocks); `wait` does.
    fn launch(&self, st: &mut PendState, now: Instant, is_hedge: bool) -> Launch {
        // A cached affinity short-circuits the rendezvous pick once (the
        // node that admitted this shape most recently very likely still
        // can); on failover the router takes over as usual.
        let preferred = st
            .preferred
            .take()
            .filter(|&p| !st.tried.contains(&p) && self.inner.membership.node(p).is_healthy());
        let pick = preferred.or_else(|| {
            let _route = span!("gw.route");
            router::route(u64::from(st.task.id.0), &self.inner.healthy_candidates(&st.tried))
        });
        let Some(index) = pick else {
            return Launch::NoCandidate;
        };
        st.tried.push(index);
        if is_hedge {
            st.hedged = true;
            if let Some(ins) = &self.inner.instruments {
                ins.hedges.inc();
            }
        } else {
            if st.attempts > 0 {
                // A prior attempt failed and this ticket moves to a
                // survivor with whatever deadline budget remains.
                if let Some(ins) = &self.inner.instruments {
                    ins.failover.inc();
                }
            }
            st.attempts += 1;
        }
        let remaining = st.deadline.saturating_duration_since(now);
        let node = self.inner.membership.node(index);
        match node
            .client(&self.inner.config.client)
            .and_then(|c| c.submit(st.task.clone(), st.options.clone(), Some(remaining)))
        {
            Ok(pv) => {
                let attempt = Attempt { node: index, pv, started: now, is_hedge };
                if is_hedge {
                    st.hedge = Some(attempt);
                } else {
                    st.primary = Some(attempt);
                }
                Launch::Launched
            }
            Err(err) => {
                self.inner.eject_node(index, &err);
                Launch::Failed
            }
        }
    }

    /// Whether the deadline-aware hedger should fire now: the primary
    /// node's observed p99 (once trustworthy) projects past the
    /// ticket's deadline, i.e. waiting out another p99 would blow it.
    fn hedge_due(&self, st: &PendState, now: Instant) -> bool {
        let config = &self.inner.config;
        if !config.hedge.enabled || st.hedged || st.hedge.is_some() {
            return false;
        }
        let Some(primary) = &st.primary else {
            return false;
        };
        let rtt = self.inner.membership.node(primary.node).rtt.snapshot();
        if rtt.count < config.hedge.min_samples {
            return false;
        }
        now + rtt.quantile(0.99) >= st.deadline
    }

    /// Books the final verdict: counts it on the gateway ledger, records
    /// the admission route for departs, and hands every other
    /// outstanding attempt to the reaper.
    fn settle(&self, st: &mut PendState, outcome: Outcome, winner: Option<&Attempt>) -> Outcome {
        let reap_deadline = st.deadline + self.inner.config.verdict_grace;
        for attempt in st.primary.take().into_iter().chain(st.hedge.take()) {
            self.inner.hand_to_reaper(Loser {
                node: attempt.node,
                task: st.task.id,
                pv: attempt.pv,
                deadline: reap_deadline,
            });
        }
        let metrics = &self.inner.metrics;
        match outcome {
            Outcome::Admitted { .. } => {
                metrics.admitted.inc();
                if let Some(winner) = winner {
                    self.inner
                        .routes
                        .lock()
                        .expect("routes lock poisoned")
                        .insert(st.task.id, Route::Node(winner.node));
                    if winner.is_hedge {
                        if let Some(ins) = &self.inner.instruments {
                            ins.hedge_wins.inc();
                        }
                    }
                }
            }
            Outcome::Rejected { .. } => metrics.rejected.inc(),
            Outcome::Shed { .. } => metrics.shed.inc(),
            Outcome::Expired { .. } => metrics.expired.inc(),
        }
        if let (Some(cache), Some(key)) = (&self.inner.plan_cache, st.key) {
            match outcome {
                // Remember where this shape fits so the next submit
                // routes straight there.
                Outcome::Admitted { .. } => {
                    if let Some(winner) = winner {
                        cache.insert(key, GwPlan::Affinity { node: winner.node }, false);
                    }
                }
                // A backend said "infeasible here, now": cacheable only
                // under the short negative TTL. Shed/expired verdicts are
                // transient gateway-side conditions and are never cached.
                Outcome::Rejected { .. } => cache.insert(key, GwPlan::Rejected, true),
                Outcome::Shed { .. } | Outcome::Expired { .. } => {}
            }
        }
        metrics.latency.record(st.born.elapsed());
        st.done = Some(outcome);
        outcome
    }

    /// Whether an overflow forward could still rescue this ticket: the
    /// gateway is federated, hops remain, and an untried live peer
    /// exists. Cheap (no I/O) — used to decide between shedding now and
    /// deferring to a blocking wait that can actually forward.
    fn could_forward(&self, st: &PendState) -> bool {
        match &self.inner.peers {
            Some(peers) => st.fwd_hops > 0 && peers.pick(&st.tried_peers).is_some(),
            None => false,
        }
    }

    /// Attempts to rescue a ticket the local cluster would shed by
    /// forwarding it to the least-loaded untried peer with the
    /// *remaining* deadline budget. `Some(outcome)` settled the ticket
    /// with the peer's verdict (counted on this gateway's ledger — a
    /// forwarded ticket still resolves exactly one verdict at its
    /// origin); `None` means no peer could take it — federation off, no
    /// hops or budget left, every eligible peer tried, or the chosen
    /// peer crashed mid-forward — and the caller sheds locally.
    fn try_forward(&self, st: &mut PendState) -> Option<Outcome> {
        let peers = self.inner.peers.as_ref()?;
        if st.fwd_hops == 0 {
            return None;
        }
        loop {
            let remaining = st.deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (index, chosen) = peers.pick(&st.tried_peers)?;
            st.tried_peers.push(chosen.addr_string.clone());
            let origin = st.origin.clone().unwrap_or_else(|| peers.identity.clone());
            // The wire tried-set names every cluster this task has
            // touched — this gateway and the origin included — so the
            // receiving peer can never bounce the task back around a
            // cycle, whatever its own peer list looks like.
            let mut tried = st.tried_peers.clone();
            if !tried.contains(&peers.identity) {
                tried.push(peers.identity.clone());
            }
            if !tried.contains(&origin) {
                tried.push(origin.clone());
            }
            let sent = chosen.client(&self.inner.config.client).and_then(|c| {
                c.forward(
                    st.task.clone(),
                    st.options.clone(),
                    Some(remaining),
                    st.fwd_hops - 1,
                    &origin,
                    &tried,
                )
            });
            match sent {
                Ok(pv) => {
                    self.inner.count_forward();
                    event!(Severity::Info, "gw.federation", "forwarded {:?} to {}", st.task.id, chosen.addr);
                    let horizon = st.deadline + self.inner.config.verdict_grace;
                    let wait = horizon.saturating_duration_since(Instant::now());
                    match pv.poll_wait(wait) {
                        Some(Ok(outcome)) => return Some(self.settle_forwarded(st, outcome, index)),
                        Some(Err(_)) | None => {
                            // The peer died (or went silent) mid-forward:
                            // fall back to a local Shed so the ticket is
                            // never lost to federation. If the peer did
                            // admit before crashing, that admission lives
                            // and dies with the peer's own ledger.
                            chosen.note_forward_failed();
                            return None;
                        }
                    }
                }
                Err(_) => {
                    // Could not even hand the task over; nothing is in
                    // flight there, so the next-best peer may be tried.
                    chosen.note_forward_failed();
                }
            }
        }
    }

    /// Books a peer-delivered verdict: reaps any outstanding local
    /// attempts, counts the verdict on this gateway's ledger (verdict
    /// conservation is per-gateway: the forward still resolves exactly
    /// one verdict here, while the peer counts its own submit + verdict
    /// on its own ledger), and records a peer route so a later depart
    /// reaches the admitting cluster. Peer verdicts are never fed to the
    /// local plan cache — they describe the peer's capacity, not ours.
    fn settle_forwarded(&self, st: &mut PendState, outcome: Outcome, peer: usize) -> Outcome {
        let reap_deadline = st.deadline + self.inner.config.verdict_grace;
        for attempt in st.primary.take().into_iter().chain(st.hedge.take()) {
            self.inner.hand_to_reaper(Loser {
                node: attempt.node,
                task: st.task.id,
                pv: attempt.pv,
                deadline: reap_deadline,
            });
        }
        let metrics = &self.inner.metrics;
        match outcome {
            Outcome::Admitted { .. } => {
                metrics.admitted.inc();
                self.inner.count_forward_win();
                self.inner.routes.lock().expect("routes lock poisoned").insert(st.task.id, Route::Peer(peer));
            }
            Outcome::Rejected { .. } => metrics.rejected.inc(),
            Outcome::Shed { .. } => metrics.shed.inc(),
            Outcome::Expired { .. } => metrics.expired.inc(),
        }
        metrics.latency.record(st.born.elapsed());
        st.done = Some(outcome);
        outcome
    }

    /// Handles a completed attempt. `Some(outcome)` settles the ticket;
    /// `None` means the attempt failed in a retryable way and was
    /// cleared (the resolve loop re-routes), or — for a node-relayed
    /// Shed during a non-blocking poll — settling was deferred behind
    /// `shed_pending` so a blocking wait can try a forward first.
    fn absorb(
        &self,
        st: &mut PendState,
        winner_is_hedge: bool,
        result: Result<Outcome, NetError>,
        block: bool,
    ) -> Option<Outcome> {
        let taken = if winner_is_hedge { st.hedge.take() } else { st.primary.take() };
        let attempt = taken.expect("absorbed attempt must exist");
        match result {
            Ok(outcome) => {
                self.inner.membership.node(attempt.node).rtt.record(attempt.started.elapsed());
                // A node-relayed Shed is the cluster saying "saturated":
                // the one signal overflow forwarding exists for.
                if matches!(outcome, Outcome::Shed { .. }) && self.could_forward(st) {
                    if block {
                        if let Some(out) = self.try_forward(st) {
                            return Some(out);
                        }
                    } else {
                        st.shed_pending = true;
                        return None;
                    }
                }
                Some(self.settle(st, outcome, Some(&attempt)))
            }
            Err(err) => {
                match &err {
                    // The node refused deliberately (draining) or died
                    // mid-request: stop routing to it and retry the
                    // ticket elsewhere.
                    NetError::Server(e) if e.code == ErrorCode::Draining => {
                        self.inner.eject_node(attempt.node, &err);
                    }
                    NetError::Server(_) => {
                        // Node-local request failure (e.g. a chaos-killed
                        // worker): retry elsewhere, leave node health to
                        // the prober.
                    }
                    _ => self.inner.eject_node(attempt.node, &err),
                }
                None
            }
        }
    }

    /// The resolution engine. With `block` false this is a cheap poll
    /// (no dialling, no sleeping) that may leave the ticket mid-failover
    /// for the next `wait` to finish. A `limit` bounds how long a
    /// blocking resolve may run before giving the caller back an
    /// unresolved `None` (the [`VerdictHandle::wait_timeout`] contract);
    /// every ticket still resolves by deadline + grace without one.
    fn resolve(&self, block: bool, limit: Option<Instant>) -> Option<Outcome> {
        let mut st = self.state.lock().expect("pending state lock poisoned");
        loop {
            if let Some(done) = st.done {
                return Some(done);
            }
            let now = Instant::now();
            if block && limit.is_some_and(|l| now >= l) {
                return None;
            }
            // A node relayed Shed during an earlier non-blocking poll:
            // the deferred decision — forward or accept the shed — runs
            // now that blocking (and therefore dialling) is allowed.
            if st.shed_pending {
                if !block {
                    return None;
                }
                st.shed_pending = false;
                if let Some(out) = self.try_forward(&mut st) {
                    return Some(out);
                }
                return Some(self.settle(&mut st, Outcome::Shed { shard: 0 }, None));
            }
            // An attempt whose node has been ejected (by the health
            // monitor or another ticket's failure) or departed (graceful
            // leave) may never resolve — the connection could be
            // half-dead or the node on its way down. Abandon it to the
            // reaper (which departs it iff a verdict does surface as an
            // admission) and fail over with the remaining budget.
            for is_hedge in [false, true] {
                let slot = if is_hedge { &mut st.hedge } else { &mut st.primary };
                if let Some(attempt) = slot.take() {
                    if self.inner.membership.node(attempt.node).is_healthy() {
                        *slot = Some(attempt);
                    } else {
                        let reap_deadline = st.deadline + self.inner.config.verdict_grace;
                        let task = st.task.id;
                        self.inner.hand_to_reaper(Loser {
                            node: attempt.node,
                            task,
                            pv: attempt.pv,
                            deadline: reap_deadline,
                        });
                    }
                }
            }
            // Promote a surviving hedge if the primary slot is empty.
            if st.primary.is_none() {
                if let Some(hedge) = st.hedge.take() {
                    st.primary = Some(hedge);
                }
            }
            if st.primary.is_none() {
                // Nothing in flight: either give the ticket its terminal
                // verdict or (blocking mode) launch the next attempt.
                if now >= st.deadline {
                    return Some(self.settle(&mut st, Outcome::Expired { shard: 0 }, None));
                }
                if st.attempts >= self.inner.config.retry_limit {
                    // The local cluster is out of retries: the one exit
                    // that isn't a Shed is an overflow forward to a
                    // federated peer (blocking mode only — a poll defers
                    // the decision to the next wait).
                    if block {
                        if let Some(out) = self.try_forward(&mut st) {
                            return Some(out);
                        }
                    } else if self.could_forward(&st) {
                        return None;
                    }
                    return Some(self.settle(&mut st, Outcome::Shed { shard: 0 }, None));
                }
                if !block {
                    return None;
                }
                match self.launch(&mut st, now, false) {
                    Launch::Launched => {}
                    Launch::NoCandidate => {
                        // No healthy local node remains; a federated peer
                        // may still have capacity.
                        if let Some(out) = self.try_forward(&mut st) {
                            return Some(out);
                        }
                        return Some(self.settle(&mut st, Outcome::Shed { shard: 0 }, None));
                    }
                    Launch::Failed => continue,
                }
            }
            // Fire the one-shot hedge when the primary's tail projects
            // past the deadline. A failed hedge launch is forfeited
            // (`launch` marked `hedged`), never retried.
            if block && self.hedge_due(&st, now) {
                let _ = self.launch(&mut st, now, true);
            }
            // Abandon the ticket once deadline + grace has passed with
            // attempts still in flight.
            if now >= st.deadline + self.inner.config.verdict_grace {
                return Some(self.settle(&mut st, Outcome::Expired { shard: 0 }, None));
            }
            // Poll / race the in-flight attempts.
            let two = st.hedge.is_some();
            if let Some(primary) = &st.primary {
                let slice = if !block {
                    Duration::ZERO
                } else if two || self.could_hedge(&st) {
                    RACE_SLICE
                } else {
                    // Nothing can preempt the primary: sleep toward the
                    // grace horizon in one bounded chunk.
                    (st.deadline + self.inner.config.verdict_grace)
                        .saturating_duration_since(now)
                        .min(Duration::from_millis(20))
                };
                let slice = match limit {
                    Some(l) => slice.min(l.saturating_duration_since(now)),
                    None => slice,
                };
                let polled = if slice.is_zero() { primary.pv.poll() } else { primary.pv.poll_wait(slice) };
                if let Some(result) = polled {
                    if let Some(out) = self.absorb(&mut st, false, result, block) {
                        return Some(out);
                    }
                    continue;
                }
            }
            if let Some(hedge) = &st.hedge {
                let polled = if block { hedge.pv.poll_wait(RACE_SLICE) } else { hedge.pv.poll() };
                if let Some(result) = polled {
                    if let Some(out) = self.absorb(&mut st, true, result, block) {
                        return Some(out);
                    }
                    continue;
                }
            }
            if !block {
                return None;
            }
        }
    }

    /// Whether a hedge could still fire later (keeps the race loop on
    /// short slices so the trigger isn't slept past).
    fn could_hedge(&self, st: &PendState) -> bool {
        self.inner.config.hedge.enabled && !st.hedged && st.hedge.is_none()
    }
}

impl PendingOutcome for GwPending {
    fn try_wait(&self) -> Option<Outcome> {
        self.resolve(false, None)
    }

    fn wait(&self) -> Option<Outcome> {
        self.resolve(true, None)
    }
}

impl VerdictHandle for GwPending {
    fn poll(&self) -> Option<Result<Outcome, VerdictError>> {
        self.resolve(false, None).map(Ok)
    }

    fn wait(self: Box<Self>) -> Result<Outcome, VerdictError> {
        self.resolve(true, None).ok_or(VerdictError::Lost)
    }

    fn wait_timeout(self: Box<Self>, timeout: Duration) -> Result<Outcome, VerdictError> {
        self.resolve(true, Some(Instant::now() + timeout)).ok_or(VerdictError::TimedOut)
    }
}

impl std::fmt::Debug for GwPending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GwPending").finish_non_exhaustive()
    }
}

/// A cluster frontend over a pool of backend serve nodes.
///
/// See the crate docs for the architecture; in one line: weighted
/// rendezvous routing over health-checked nodes, failover with the
/// remaining deadline budget, optional deadline-aware hedging, and a
/// conservation ledger equivalent to a single node's.
pub struct Gateway {
    inner: Arc<GatewayInner>,
    monitor: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
    /// The federation digest thread (`None` without federation).
    digest: Option<JoinHandle<()>>,
    /// Dropping this stops the health monitor and the digest thread.
    shutdown_tx: Option<Sender<()>>,
}

/// Process-wide gateway incarnation stamps (sent in `PeerHello` frames).
static GW_INCARNATION: AtomicU64 = AtomicU64::new(1);

impl Gateway {
    /// Starts a gateway over `addrs` (each the address of a running
    /// `offloadnn-net` frontend). Nodes start healthy with weight 1 and
    /// are dialled lazily; the first health sweep corrects both.
    ///
    /// # Errors
    ///
    /// [`GatewayError::NoNodes`] for an empty pool,
    /// [`GatewayError::InvalidConfig`] from config validation.
    pub fn start(addrs: &[SocketAddr], config: GatewayConfig) -> Result<Self, GatewayError> {
        config.validate()?;
        if addrs.is_empty() {
            return Err(GatewayError::NoNodes);
        }
        let membership = Membership::new(addrs);
        let (reaper_tx, reaper_rx) = channel::unbounded();
        let metrics = ServiceMetrics::new();
        let plan_cache = config.plan_cache.map(|pc| PlanCache::with_registry(pc, metrics.registry()));
        let peers = config.federation.as_ref().map(|fed| PeerSet::new(&fed.peers, fed.identity.clone()));
        let inner = Arc::new(GatewayInner {
            membership,
            config,
            metrics,
            draining: AtomicBool::new(false),
            routes: Mutex::new(HashMap::new()),
            peers,
            incarnation: GW_INCARNATION.fetch_add(1, Ordering::Relaxed),
            forwards: AtomicU64::new(0),
            forward_wins: AtomicU64::new(0),
            reaper_tx: Mutex::new(Some(reaper_tx)),
            instruments: GwInstruments::new(),
            plan_cache,
        });
        inner.publish_membership_gauges();
        inner.publish_peer_gauges();
        let (shutdown_tx, shutdown_rx) = channel::bounded::<()>(1);
        let monitor = {
            let inner = Arc::clone(&inner);
            let shutdown_rx = shutdown_rx.clone();
            std::thread::Builder::new()
                .name("gw-health".into())
                .spawn(move || health::monitor_loop(&inner, &shutdown_rx))
                .expect("spawn gw-health thread")
        };
        // The digest thread shares the monitor's shutdown channel:
        // shutdown is signalled by dropping the sender, which wakes every
        // cloned receiver.
        let digest = inner.peers.as_ref().map(|_| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gw-digest".into())
                .spawn(move || peer::digest_loop(&inner, &shutdown_rx))
                .expect("spawn gw-digest thread")
        });
        let reaper = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("gw-reaper".into())
                .spawn(move || reaper_loop(&inner, &reaper_rx))
                .expect("spawn gw-reaper thread")
        };
        Ok(Self {
            inner,
            monitor: Some(monitor),
            reaper: Some(reaper),
            digest,
            shutdown_tx: Some(shutdown_tx),
        })
    }

    /// Nodes currently eligible for routing.
    pub fn healthy_nodes(&self) -> usize {
        self.inner.membership.healthy_count()
    }

    /// The pool size including probing, ejected and departed members
    /// (the pool is append-only; see [`crate::membership`]).
    pub fn pool_size(&self) -> usize {
        self.inner.membership.len()
    }

    /// The cluster view as it travels in a membership frame.
    pub fn members(&self) -> Vec<MemberInfo> {
        self.inner.membership.members()
    }

    /// Monotonic membership change counter (bumped per applied
    /// join/restart/leave).
    pub fn membership_version(&self) -> u64 {
        self.inner.membership.version()
    }

    /// Applies a node's announce (protocol v3 `Announce` frame, or
    /// called directly in-process). A new address joins in `Probing` —
    /// invisible to routing until a health probe succeeds; a strictly
    /// newer incarnation of a known address re-enters `Probing`;
    /// duplicates and stale incarnations are ignored. See
    /// [`crate::membership`] for the ordering rules.
    pub fn announce(&self, addr: SocketAddr, incarnation: u64) -> MembershipAck {
        let outcome = self.inner.membership.announce(addr, incarnation);
        let decision = match outcome {
            AnnounceOutcome::Joined | AnnounceOutcome::Restarted => {
                if let Some(ins) = &self.inner.instruments {
                    ins.joins.inc();
                }
                event!(Severity::Info, "gw.membership", "announce {addr} inc {incarnation}: {outcome:?}");
                MembershipDecision::Accepted
            }
            AnnounceOutcome::Duplicate => MembershipDecision::Duplicate,
            AnnounceOutcome::Stale => MembershipDecision::Stale,
        };
        self.inner.publish_membership_gauges();
        MembershipAck { decision, members: self.inner.membership.members() }
    }

    /// Applies a node's graceful leave (protocol v3 `Leave` frame, or
    /// called directly in-process). The node departs iff the incarnation
    /// is at least its registered stamp; in-flight tickets against it
    /// fail over to survivors with their remaining deadline budget, and
    /// a later replay of its old announce cannot resurrect it.
    pub fn leave(&self, addr: SocketAddr, incarnation: u64) -> MembershipAck {
        let before = self.inner.membership.version();
        let outcome = self.inner.membership.leave(addr, incarnation);
        let decision = match outcome {
            LeaveOutcome::Departed => {
                // Count (and invalidate plans) only on the first,
                // applied leave — the version bumps exactly then.
                if self.inner.membership.version() != before {
                    if let Some(ins) = &self.inner.instruments {
                        ins.leaves.inc();
                    }
                    self.inner.invalidate_plans();
                    event!(Severity::Info, "gw.membership", "leave {addr} inc {incarnation}");
                }
                MembershipDecision::Accepted
            }
            LeaveOutcome::Stale | LeaveOutcome::Unknown => MembershipDecision::Stale,
        };
        self.inner.publish_membership_gauges();
        MembershipAck { decision, members: self.inner.membership.members() }
    }

    /// Point-in-time snapshot of the gateway's own ledger.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// Submits a task to the cluster with the gateway's default
    /// deadline. See [`Backend::submit`] for the full contract.
    ///
    /// # Errors
    ///
    /// As [`Backend::submit`].
    pub fn submit(&self, task: Task, options: Vec<PathOption>) -> Result<GwPending, SubmitError> {
        self.submit_inner(task, options, None, None)
    }

    /// The one submit path, for both local submits (`forwarded` `None`)
    /// and tasks arriving via a protocol-v4 `Forward` frame (`forwarded`
    /// carries the origin identity, remaining hops and tried-set).
    fn submit_inner(
        &self,
        task: Task,
        options: Vec<PathOption>,
        budget: Option<Duration>,
        forwarded: Option<ForwardInfo>,
    ) -> Result<GwPending, SubmitError> {
        if self.is_draining() {
            return Err(SubmitError::Draining);
        }
        if options.is_empty() {
            return Err(SubmitError::NoOptions);
        }
        // A client can tighten its admission window but never extend it
        // past the gateway policy — the same rule serve applies. A
        // forwarded task's budget is the *remaining* budget its origin
        // put on the wire, tightened the same way.
        let policy = self.inner.config.default_deadline;
        let budget = budget.map_or(policy, |b| b.min(policy));
        self.inner.metrics.submitted.inc();
        let now = Instant::now();
        // Federation seeds: a local ticket may take `hop_limit` hops and
        // has visited no cluster; a forwarded one inherits the sender's
        // remaining hops and tried-set (so re-forwarding can only reach
        // clusters the task has never seen).
        let (fwd_hops, origin, tried_peers, scope) = match forwarded {
            Some(info) => {
                let scope = router::node_seed(&info.origin);
                (info.hops, Some(info.origin), info.tried, Some(scope))
            }
            None => {
                let hops = self.inner.config.federation.as_ref().map_or(0, |fed| fed.hop_limit);
                (hops, None, Vec::new(), None)
            }
        };
        // Consult the plan cache before anything touches the wire: a
        // fresh negative entry resolves the ticket Rejected right here
        // (counted on the ledger like any verdict), a fresh affinity
        // entry seeds the preferred node for the first launch. Forwarded
        // traffic keys under the origin gateway's scope epoch.
        let key = self.inner.plan_key(&task, &options, scope);
        let mut preferred = None;
        if let (Some(cache), Some(key)) = (&self.inner.plan_cache, &key) {
            match cache.lookup(key).map(|c| c.value) {
                Some(GwPlan::Rejected) => {
                    self.inner.metrics.rejected.inc();
                    self.inner.metrics.latency.record(now.elapsed());
                    return Ok(GwPending {
                        inner: Arc::clone(&self.inner),
                        state: Mutex::new(PendState {
                            task,
                            options,
                            born: now,
                            deadline: now + budget,
                            attempts: 0,
                            tried: Vec::new(),
                            preferred: None,
                            key: None,
                            primary: None,
                            hedge: None,
                            hedged: false,
                            fwd_hops: 0,
                            origin: None,
                            tried_peers: Vec::new(),
                            shed_pending: false,
                            done: Some(Outcome::Rejected { shard: 0 }),
                        }),
                    });
                }
                Some(GwPlan::Affinity { node }) => preferred = Some(node),
                None => {}
            }
        }
        let pending = GwPending {
            inner: Arc::clone(&self.inner),
            state: Mutex::new(PendState {
                task,
                options,
                born: now,
                deadline: now + budget,
                attempts: 0,
                tried: Vec::new(),
                preferred,
                key,
                primary: None,
                hedge: None,
                hedged: false,
                fwd_hops,
                origin,
                tried_peers,
                shed_pending: false,
                done: None,
            }),
        };
        // Launch the first attempt eagerly so tickets pipeline: the
        // submit is on the wire when this returns, and `wait` only
        // collects (or fails over). A ticket that cannot launch here
        // (all sends fail, or no healthy node) resolves in `wait`.
        {
            let mut st = pending.state.lock().expect("pending state lock poisoned");
            while st.primary.is_none() && st.attempts < self.inner.config.retry_limit {
                match pending.launch(&mut st, Instant::now(), false) {
                    Launch::Launched | Launch::NoCandidate => break,
                    Launch::Failed => {}
                }
            }
        }
        Ok(pending)
    }

    /// Forwards a departure to wherever the task was admitted — a local
    /// backend node, or (for a forwarded-then-admitted task) the peer
    /// gateway whose cluster took it, so the work departs on exactly one
    /// cluster. A no-op for tasks the gateway never admitted.
    pub fn depart(&self, task: TaskId) {
        let route = self.inner.routes.lock().expect("routes lock poisoned").remove(&task);
        match route {
            Some(Route::Node(index)) => {
                if let Ok(client) = self.inner.membership.node(index).client(&self.inner.config.client) {
                    if client.depart(task).is_ok() {
                        self.inner.metrics.departed.inc();
                    }
                }
            }
            Some(Route::Peer(index)) => {
                if let Some(peers) = &self.inner.peers {
                    if let Ok(client) = peers.peers[index].client(&self.inner.config.client) {
                        if client.depart(task).is_ok() {
                            self.inner.metrics.departed.inc();
                        }
                    }
                }
            }
            None => {}
        }
    }

    /// Always-on federation counters (see [`ForwardStats`]); zero for a
    /// non-federated gateway.
    pub fn forward_stats(&self) -> ForwardStats {
        ForwardStats {
            forwards: self.inner.forwards.load(Ordering::Relaxed),
            forward_wins: self.inner.forward_wins.load(Ordering::Relaxed),
        }
    }

    /// Federated peers currently answering load digests (zero without
    /// federation).
    pub fn healthy_peers(&self) -> usize {
        self.inner.peers.as_ref().map_or(0, PeerSet::healthy_count)
    }

    /// Broadcasts a reshard to every healthy node; the report aggregates
    /// the per-node responses (summed migrations, max generation).
    ///
    /// # Errors
    ///
    /// [`ServeError::Draining`] after drain began;
    /// [`ServeError::InvalidConfig`] for a zero target or when no
    /// healthy node accepted the reshard.
    pub fn scale_to(&self, shards: usize) -> Result<ReshardReport, ServeError> {
        if self.is_draining() {
            return Err(ServeError::Draining);
        }
        if shards == 0 {
            return Err(ServeError::InvalidConfig("gateway scale target must be at least one shard"));
        }
        let target =
            u32::try_from(shards).map_err(|_| ServeError::InvalidConfig("scale target too large"))?;
        let mut report: Option<ReshardReport> = None;
        for node in self.inner.membership.snapshot().iter().filter(|n| n.is_healthy()) {
            match node.client(&self.inner.config.client).and_then(|c| c.scale_to(target)) {
                Ok(r) => {
                    let agg = report.get_or_insert(ReshardReport {
                        from_shards: r.from_shards as usize,
                        to_shards: shards,
                        migrated: 0,
                        generation: 0,
                    });
                    agg.migrated += r.migrated;
                    agg.generation = agg.generation.max(r.generation);
                }
                Err(_) => node.drop_client(),
            }
        }
        match report {
            Some(r) => {
                self.inner.metrics.reshards.inc();
                self.inner.metrics.migrated.add(r.migrated);
                self.inner.metrics.generation.set(r.generation);
                // The new generation fences fresh lookups; the epoch bump
                // drops plans minted under the old topology.
                self.inner.invalidate_plans();
                Ok(r)
            }
            None => Err(ServeError::InvalidConfig("no healthy node accepted the reshard")),
        }
    }

    /// Stops accepting submits (already-issued tickets still resolve).
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
    }

    /// Drains the gateway: stops the monitor, lets the reaper finish
    /// deduplicating, and reports the gateway's final ledger. The
    /// *backend nodes are not drained* — the gateway routes to them but
    /// does not own their lifecycle.
    pub fn drain(mut self) -> DrainReport {
        self.begin_drain();
        drop(self.shutdown_tx.take());
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.digest.take() {
            let _ = handle.join();
        }
        // Disconnect the reaper only after the monitor is gone: every
        // ticket has resolved by the time a frontend calls drain, so no
        // new losers can arrive.
        *self.inner.reaper_tx.lock().expect("reaper tx lock poisoned") = None;
        if let Some(handle) = self.reaper.take() {
            let _ = handle.join();
        }
        DrainReport {
            metrics: self.inner.metrics.snapshot(),
            shards: Vec::new(),
            retired: Vec::new(),
            lost_shards: 0,
            plan_cache: self.inner.plan_cache.as_ref().map(PlanCache::stats),
        }
    }

    /// Counters of the cluster plan cache, or `None` with caching off.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        self.inner.plan_cache.as_ref().map(PlanCache::stats)
    }
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("membership", &self.inner.membership)
            .field("draining", &self.is_draining())
            .finish_non_exhaustive()
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        // A dropped (not drained) gateway must not leave threads parked
        // forever.
        drop(self.shutdown_tx.take());
        *self.inner.reaper_tx.lock().expect("reaper tx lock poisoned") = None;
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.digest.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.reaper.take() {
            let _ = handle.join();
        }
    }
}

impl Backend for Gateway {
    type Pending = GwPending;

    fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        budget: Option<Duration>,
    ) -> Result<GwPending, SubmitError> {
        self.submit_inner(task, options, budget, None)
    }

    fn forward(
        &self,
        task: Task,
        options: Vec<PathOption>,
        budget: Option<Duration>,
        info: ForwardInfo,
    ) -> Result<GwPending, SubmitError> {
        self.submit_inner(task, options, budget, Some(info))
    }

    fn peer_load(&self, peer_addr: &str, peer_incarnation: u64) -> Option<PeerDigest> {
        // Any gateway can answer a digest, federated or not (a
        // non-federated gateway simply never *sends* one). The digest is
        // the overflow picker's ranking signal on the asking side:
        // healthy-node count and aggregate routing weight say how much
        // capacity is here, the verdict-latency p50 says how fast this
        // cluster answers, and the membership version fences plan-cache
        // scopes across our reshards and churn.
        event!(Severity::Info, "gw.federation", "digest for peer {peer_addr} inc {peer_incarnation}");
        let remaining_budget: f64 = self.inner.healthy_candidates(&[]).iter().map(|c| c.weight).sum();
        let round_ms_p50 = self.inner.metrics.latency.snapshot().quantile(0.5).as_secs_f64() * 1e3;
        Some(PeerDigest {
            healthy_nodes: u32::try_from(self.inner.membership.healthy_count()).unwrap_or(u32::MAX),
            remaining_budget,
            round_ms_p50,
            epoch: self.inner.membership.version(),
        })
    }

    fn depart(&self, task: TaskId) {
        Gateway::depart(self, task);
    }

    fn metrics(&self) -> MetricsSnapshot {
        Gateway::metrics(self)
    }

    fn begin_drain(&self) {
        Gateway::begin_drain(self);
    }

    fn is_draining(&self) -> bool {
        Gateway::is_draining(self)
    }

    fn scale_to(&self, shards: usize) -> Result<ReshardReport, ServeError> {
        Gateway::scale_to(self, shards)
    }

    fn announce(&self, addr: SocketAddr, incarnation: u64) -> MembershipAck {
        Gateway::announce(self, addr, incarnation)
    }

    fn leave(&self, addr: SocketAddr, incarnation: u64) -> MembershipAck {
        Gateway::leave(self, addr, incarnation)
    }

    fn drain(self) -> DrainReport {
        Gateway::drain(self)
    }
}

impl Admitter for Gateway {
    fn submit(
        &self,
        task: Task,
        options: Vec<PathOption>,
        deadline: Option<Duration>,
    ) -> Result<offloadnn_serve::PendingVerdict, SubmitError> {
        let id = task.id;
        let pending = self.submit_inner(task, options, deadline, None)?;
        Ok(offloadnn_serve::PendingVerdict::new(id, Box::new(pending)))
    }

    fn depart(&self, task: TaskId) {
        Gateway::depart(self, task);
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(Gateway::metrics(self))
    }

    fn begin_drain(&self) {
        Gateway::begin_drain(self);
    }

    fn tier(&self) -> &'static str {
        "gateway"
    }
}

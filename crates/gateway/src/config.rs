//! Gateway configuration and validation.

use offloadnn_net::ClientConfig;
use offloadnn_plancache::PlanCacheConfig;
use std::time::Duration;

/// Deadline-aware request hedging knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Master switch. Off by default: hedging trades duplicate backend
    /// work for tail latency, which is only worth it once a deployment
    /// has measured its tails.
    pub enabled: bool,
    /// Minimum per-node RTT observations before that node's p99 is
    /// trusted to trigger a hedge. Below this the gateway never hedges
    /// against the node (cold histograms produce garbage quantiles).
    pub min_samples: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self { enabled: false, min_samples: 32 }
    }
}

/// Tuning for a [`crate::Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Period of the health monitor's probe sweep across all nodes.
    pub health_interval: Duration,
    /// How long one Metrics probe may block before counting as a miss.
    pub health_timeout: Duration,
    /// Consecutive missed health checks after which a node is ejected.
    pub eject_after: u32,
    /// How long an ejected node sits out before a probe may readmit it.
    pub probation: Duration,
    /// Consecutive failed probes of an unhealthy (probing or ejected)
    /// node after which the monitor starts backing off: past this count
    /// the probe stride doubles per failure, so a long-dead node stops
    /// costing a connect timeout every sweep.
    pub probe_backoff_after: u32,
    /// Cap on the probe-backoff stride, in monitor sweeps. A long-dead
    /// node is still probed at least once per `probe_backoff_limit`
    /// sweeps, bounding how stale its revival can go unnoticed.
    pub probe_backoff_limit: u32,
    /// The gateway's own admission budget policy: submits carrying no
    /// client deadline get this budget, and client deadlines are
    /// tightened to at most this (mirroring the serve-side rule that a
    /// backend may tighten but never extend its policy).
    pub default_deadline: Duration,
    /// Extra time past a ticket's deadline the gateway keeps waiting for
    /// an in-flight backend verdict before writing the ticket off as
    /// expired and handing the straggler to the reaper.
    pub verdict_grace: Duration,
    /// Maximum submit attempts per ticket across failovers (the first
    /// attempt counts, so `3` means the primary plus two retries).
    pub retry_limit: u32,
    /// Deadline-aware hedging.
    pub hedge: HedgeConfig,
    /// Cluster-level plan cache: memoizes which node last admitted a
    /// task shape (routing affinity) and, under a short negative TTL,
    /// shapes the cluster rejected outright. `None` (the default)
    /// disables caching and leaves the submit path untouched.
    pub plan_cache: Option<PlanCacheConfig>,
    /// Transport tuning for the per-node backend clients. The default
    /// fails fast (one connect attempt, short timeout): the failover
    /// path, not the transport retry loop, owns recovery from a dead
    /// node.
    pub client: ClientConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        let client = ClientConfig {
            connect_attempts: 1,
            connect_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        };
        Self {
            health_interval: Duration::from_millis(250),
            health_timeout: Duration::from_millis(500),
            eject_after: 3,
            probation: Duration::from_secs(2),
            probe_backoff_after: 4,
            probe_backoff_limit: 64,
            default_deadline: Duration::from_secs(5),
            verdict_grace: Duration::from_secs(5),
            retry_limit: 3,
            hedge: HedgeConfig::default(),
            plan_cache: None,
            client,
        }
    }
}

impl GatewayConfig {
    /// Checks every field is in range.
    ///
    /// # Errors
    ///
    /// [`GatewayError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), GatewayError> {
        if self.health_interval.is_zero() {
            return Err(GatewayError::InvalidConfig("health_interval must be positive"));
        }
        if self.health_timeout.is_zero() {
            return Err(GatewayError::InvalidConfig("health_timeout must be positive"));
        }
        if self.eject_after == 0 {
            return Err(GatewayError::InvalidConfig("eject_after must be at least 1"));
        }
        if self.probe_backoff_limit == 0 {
            return Err(GatewayError::InvalidConfig("probe_backoff_limit must be at least 1"));
        }
        if self.default_deadline.is_zero() {
            return Err(GatewayError::InvalidConfig("default_deadline must be positive"));
        }
        if self.retry_limit == 0 {
            return Err(GatewayError::InvalidConfig("retry_limit must be at least 1"));
        }
        if self.hedge.min_samples == 0 {
            return Err(GatewayError::InvalidConfig("hedge.min_samples must be at least 1"));
        }
        if let Some(pc) = &self.plan_cache {
            pc.validate().map_err(|_| GatewayError::InvalidConfig("plan_cache knobs must be positive"))?;
        }
        self.client.validate().map_err(|_| GatewayError::InvalidConfig("client config out of range"))
    }
}

/// Gateway construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// A configuration field is out of its valid range.
    InvalidConfig(&'static str),
    /// The node pool was empty.
    NoNodes,
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig(what) => write!(f, "invalid gateway config: {what}"),
            Self::NoNodes => write!(f, "gateway needs at least one backend node"),
        }
    }
}

impl std::error::Error for GatewayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(GatewayConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_fields_are_named() {
        let c = GatewayConfig { eject_after: 0, ..GatewayConfig::default() };
        assert_eq!(c.validate(), Err(GatewayError::InvalidConfig("eject_after must be at least 1")));
        let c = GatewayConfig { retry_limit: 0, ..GatewayConfig::default() };
        assert!(c.validate().is_err());
        let c = GatewayConfig { probe_backoff_limit: 0, ..GatewayConfig::default() };
        assert_eq!(c.validate(), Err(GatewayError::InvalidConfig("probe_backoff_limit must be at least 1")));
        let hedge = HedgeConfig { min_samples: 0, ..HedgeConfig::default() };
        let c = GatewayConfig { hedge, ..GatewayConfig::default() };
        assert!(c.validate().is_err());
        let pc = PlanCacheConfig { capacity: 0, ..PlanCacheConfig::default() };
        let c = GatewayConfig { plan_cache: Some(pc), ..GatewayConfig::default() };
        assert_eq!(c.validate(), Err(GatewayError::InvalidConfig("plan_cache knobs must be positive")));
        let c = GatewayConfig { plan_cache: Some(PlanCacheConfig::default()), ..GatewayConfig::default() };
        assert!(c.validate().is_ok());
    }
}

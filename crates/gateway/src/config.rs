//! Gateway configuration and validation.

use offloadnn_net::ClientConfig;
use offloadnn_plancache::PlanCacheConfig;
use std::net::SocketAddr;
use std::time::Duration;

/// Deadline-aware request hedging knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Master switch. Off by default: hedging trades duplicate backend
    /// work for tail latency, which is only worth it once a deployment
    /// has measured its tails.
    pub enabled: bool,
    /// Minimum per-node RTT observations before that node's p99 is
    /// trusted to trigger a hedge. Below this the gateway never hedges
    /// against the node (cold histograms produce garbage quantiles).
    pub min_samples: u64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self { enabled: false, min_samples: 32 }
    }
}

/// Cross-gateway federation knobs (protocol v4).
///
/// A federated gateway exchanges periodic load digests with its peers
/// (`PeerHello` → `PeerLoad` frames) and, when its *own* cluster would
/// shed a ticket — retry budget exhausted, no healthy node, or a node
/// relayed a Shed — forwards the task to the least-loaded peer with the
/// *remaining* deadline budget. The `Forward` frame carries a hop count
/// and the set of gateways already tried, so a task can neither loop nor
/// revisit a cluster. Forwarding is strictly an overflow valve: a ticket
/// the local cluster can serve never leaves it.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationConfig {
    /// Peer gateway frontends to federate with (each an `offloadnn-net`
    /// endpoint whose backend is itself a gateway).
    pub peers: Vec<SocketAddr>,
    /// This gateway's identity as stamped into `Forward` frames (origin
    /// and tried-set entries). Peers compare it by string equality for
    /// loop prevention, so use the address this gateway's own frontend
    /// listens on — it must match what peers have in `peers`.
    pub identity: String,
    /// Period of the digest sweep across all peers.
    pub digest_interval: Duration,
    /// How long one `PeerHello` round trip may block before counting as
    /// a missed digest.
    pub digest_timeout: Duration,
    /// Consecutive missed digests after which a peer is considered down
    /// (no forwards routed to it until a digest succeeds again).
    pub eject_after: u32,
    /// Maximum forward hops a task it originates may take (1 = direct
    /// peers only). Relayed forwards inherit the sender's remaining hop
    /// count instead.
    pub hop_limit: u8,
}

impl FederationConfig {
    /// A federation config for `identity` and `peers` with default
    /// timing knobs.
    pub fn new(identity: impl Into<String>, peers: Vec<SocketAddr>) -> Self {
        Self {
            peers,
            identity: identity.into(),
            digest_interval: Duration::from_millis(250),
            digest_timeout: Duration::from_millis(500),
            eject_after: 3,
            hop_limit: 1,
        }
    }

    /// Checks every field is in range.
    ///
    /// # Errors
    ///
    /// [`GatewayError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), GatewayError> {
        if self.peers.is_empty() {
            return Err(GatewayError::InvalidConfig("federation.peers must not be empty"));
        }
        if self.identity.is_empty() {
            return Err(GatewayError::InvalidConfig("federation.identity must not be empty"));
        }
        if self.digest_interval.is_zero() {
            return Err(GatewayError::InvalidConfig("federation.digest_interval must be positive"));
        }
        if self.digest_timeout.is_zero() {
            return Err(GatewayError::InvalidConfig("federation.digest_timeout must be positive"));
        }
        if self.eject_after == 0 {
            return Err(GatewayError::InvalidConfig("federation.eject_after must be at least 1"));
        }
        if self.hop_limit == 0 {
            return Err(GatewayError::InvalidConfig("federation.hop_limit must be at least 1"));
        }
        Ok(())
    }
}

/// Tuning for a [`crate::Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Period of the health monitor's probe sweep across all nodes.
    pub health_interval: Duration,
    /// How long one Metrics probe may block before counting as a miss.
    pub health_timeout: Duration,
    /// Consecutive missed health checks after which a node is ejected.
    pub eject_after: u32,
    /// How long an ejected node sits out before a probe may readmit it.
    pub probation: Duration,
    /// Consecutive failed probes of an unhealthy (probing or ejected)
    /// node after which the monitor starts backing off: past this count
    /// the probe stride doubles per failure, so a long-dead node stops
    /// costing a connect timeout every sweep.
    pub probe_backoff_after: u32,
    /// Cap on the probe-backoff stride, in monitor sweeps. A long-dead
    /// node is still probed at least once per `probe_backoff_limit`
    /// sweeps, bounding how stale its revival can go unnoticed.
    pub probe_backoff_limit: u32,
    /// The gateway's own admission budget policy: submits carrying no
    /// client deadline get this budget, and client deadlines are
    /// tightened to at most this (mirroring the serve-side rule that a
    /// backend may tighten but never extend its policy).
    pub default_deadline: Duration,
    /// Extra time past a ticket's deadline the gateway keeps waiting for
    /// an in-flight backend verdict before writing the ticket off as
    /// expired and handing the straggler to the reaper.
    pub verdict_grace: Duration,
    /// Maximum submit attempts per ticket across failovers (the first
    /// attempt counts, so `3` means the primary plus two retries).
    pub retry_limit: u32,
    /// Deadline-aware hedging.
    pub hedge: HedgeConfig,
    /// Cluster-level plan cache: memoizes which node last admitted a
    /// task shape (routing affinity) and, under a short negative TTL,
    /// shapes the cluster rejected outright. `None` (the default)
    /// disables caching and leaves the submit path untouched.
    pub plan_cache: Option<PlanCacheConfig>,
    /// Cross-gateway federation: `None` (the default) keeps the gateway
    /// standalone; `Some` peers it with other gateways for overflow
    /// forwarding (see [`FederationConfig`]).
    pub federation: Option<FederationConfig>,
    /// Transport tuning for the per-node backend clients. The default
    /// fails fast (one connect attempt, short timeout): the failover
    /// path, not the transport retry loop, owns recovery from a dead
    /// node.
    pub client: ClientConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        let client = ClientConfig {
            connect_attempts: 1,
            connect_timeout: Duration::from_millis(500),
            ..ClientConfig::default()
        };
        Self {
            health_interval: Duration::from_millis(250),
            health_timeout: Duration::from_millis(500),
            eject_after: 3,
            probation: Duration::from_secs(2),
            probe_backoff_after: 4,
            probe_backoff_limit: 64,
            default_deadline: Duration::from_secs(5),
            verdict_grace: Duration::from_secs(5),
            retry_limit: 3,
            hedge: HedgeConfig::default(),
            plan_cache: None,
            federation: None,
            client,
        }
    }
}

impl GatewayConfig {
    /// A builder starting from [`GatewayConfig::default`]. Setters keep
    /// every untouched field at its default and
    /// [`GatewayConfigBuilder::build`] validates the result, so an
    /// invalid combination fails where it was written instead of at
    /// [`crate::Gateway::start`]. Struct literals with
    /// `..GatewayConfig::default()` keep working unchanged.
    pub fn builder() -> GatewayConfigBuilder {
        GatewayConfigBuilder { config: Self::default() }
    }
    /// Checks every field is in range.
    ///
    /// # Errors
    ///
    /// [`GatewayError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), GatewayError> {
        if self.health_interval.is_zero() {
            return Err(GatewayError::InvalidConfig("health_interval must be positive"));
        }
        if self.health_timeout.is_zero() {
            return Err(GatewayError::InvalidConfig("health_timeout must be positive"));
        }
        if self.eject_after == 0 {
            return Err(GatewayError::InvalidConfig("eject_after must be at least 1"));
        }
        if self.probe_backoff_limit == 0 {
            return Err(GatewayError::InvalidConfig("probe_backoff_limit must be at least 1"));
        }
        if self.default_deadline.is_zero() {
            return Err(GatewayError::InvalidConfig("default_deadline must be positive"));
        }
        if self.retry_limit == 0 {
            return Err(GatewayError::InvalidConfig("retry_limit must be at least 1"));
        }
        if self.hedge.min_samples == 0 {
            return Err(GatewayError::InvalidConfig("hedge.min_samples must be at least 1"));
        }
        if let Some(pc) = &self.plan_cache {
            pc.validate().map_err(|_| GatewayError::InvalidConfig("plan_cache knobs must be positive"))?;
        }
        if let Some(fed) = &self.federation {
            fed.validate()?;
        }
        self.client.validate().map_err(|_| GatewayError::InvalidConfig("client config out of range"))
    }
}

/// Builder for [`GatewayConfig`] — see [`GatewayConfig::builder`].
#[derive(Debug, Clone)]
pub struct GatewayConfigBuilder {
    config: GatewayConfig,
}

impl GatewayConfigBuilder {
    /// Sets the health-probe timing (sweep period and per-probe timeout).
    #[must_use]
    pub fn health(mut self, interval: Duration, timeout: Duration) -> Self {
        self.config.health_interval = interval;
        self.config.health_timeout = timeout;
        self
    }

    /// Sets the ejection threshold and probation window.
    #[must_use]
    pub fn ejection(mut self, eject_after: u32, probation: Duration) -> Self {
        self.config.eject_after = eject_after;
        self.config.probation = probation;
        self
    }

    /// Sets the unhealthy-probe backoff knobs.
    #[must_use]
    pub fn probe_backoff(mut self, after: u32, limit: u32) -> Self {
        self.config.probe_backoff_after = after;
        self.config.probe_backoff_limit = limit;
        self
    }

    /// Sets the gateway's default admission deadline.
    #[must_use]
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.config.default_deadline = deadline;
        self
    }

    /// Sets the post-deadline verdict grace window.
    #[must_use]
    pub fn verdict_grace(mut self, grace: Duration) -> Self {
        self.config.verdict_grace = grace;
        self
    }

    /// Sets the failover retry limit.
    #[must_use]
    pub fn retry_limit(mut self, limit: u32) -> Self {
        self.config.retry_limit = limit;
        self
    }

    /// Sets the deadline-aware hedging knobs.
    #[must_use]
    pub fn hedge(mut self, hedge: HedgeConfig) -> Self {
        self.config.hedge = hedge;
        self
    }

    /// Enables the cluster-level plan cache.
    #[must_use]
    pub fn plan_cache(mut self, cache: PlanCacheConfig) -> Self {
        self.config.plan_cache = Some(cache);
        self
    }

    /// Enables cross-gateway federation.
    #[must_use]
    pub fn federation(mut self, federation: FederationConfig) -> Self {
        self.config.federation = Some(federation);
        self
    }

    /// Sets the backend-client transport tuning.
    #[must_use]
    pub fn client(mut self, client: ClientConfig) -> Self {
        self.config.client = client;
        self
    }

    /// Validates and returns the finished config.
    ///
    /// # Errors
    ///
    /// [`GatewayError::InvalidConfig`] naming the offending field.
    pub fn build(self) -> Result<GatewayConfig, GatewayError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Gateway construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// A configuration field is out of its valid range.
    InvalidConfig(&'static str),
    /// The node pool was empty.
    NoNodes,
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig(what) => write!(f, "invalid gateway config: {what}"),
            Self::NoNodes => write!(f, "gateway needs at least one backend node"),
        }
    }
}

impl std::error::Error for GatewayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(GatewayConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_fields_are_named() {
        let c = GatewayConfig { eject_after: 0, ..GatewayConfig::default() };
        assert_eq!(c.validate(), Err(GatewayError::InvalidConfig("eject_after must be at least 1")));
        let c = GatewayConfig { retry_limit: 0, ..GatewayConfig::default() };
        assert!(c.validate().is_err());
        let c = GatewayConfig { probe_backoff_limit: 0, ..GatewayConfig::default() };
        assert_eq!(c.validate(), Err(GatewayError::InvalidConfig("probe_backoff_limit must be at least 1")));
        let hedge = HedgeConfig { min_samples: 0, ..HedgeConfig::default() };
        let c = GatewayConfig { hedge, ..GatewayConfig::default() };
        assert!(c.validate().is_err());
        let pc = PlanCacheConfig { capacity: 0, ..PlanCacheConfig::default() };
        let c = GatewayConfig { plan_cache: Some(pc), ..GatewayConfig::default() };
        assert_eq!(c.validate(), Err(GatewayError::InvalidConfig("plan_cache knobs must be positive")));
        let c = GatewayConfig { plan_cache: Some(PlanCacheConfig::default()), ..GatewayConfig::default() };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_validates_and_matches_literal_construction() {
        let built = GatewayConfig::builder()
            .health(Duration::from_millis(50), Duration::from_millis(100))
            .ejection(2, Duration::from_millis(200))
            .retry_limit(2)
            .default_deadline(Duration::from_secs(1))
            .build()
            .unwrap();
        let literal = GatewayConfig {
            health_interval: Duration::from_millis(50),
            health_timeout: Duration::from_millis(100),
            eject_after: 2,
            probation: Duration::from_millis(200),
            retry_limit: 2,
            default_deadline: Duration::from_secs(1),
            ..GatewayConfig::default()
        };
        assert_eq!(built.health_interval, literal.health_interval);
        assert_eq!(built.retry_limit, literal.retry_limit);
        assert_eq!(built.default_deadline, literal.default_deadline);
        assert!(GatewayConfig::builder().retry_limit(0).build().is_err());
    }

    #[test]
    fn federation_fields_are_validated() {
        let peer: SocketAddr = "127.0.0.1:7001".parse().unwrap();
        let good = FederationConfig::new("127.0.0.1:7000", vec![peer]);
        assert!(good.validate().is_ok());
        let c = GatewayConfig::builder().federation(good.clone()).build().unwrap();
        assert_eq!(c.federation, Some(good.clone()));
        let cases = [
            FederationConfig { peers: Vec::new(), ..good.clone() },
            FederationConfig { identity: String::new(), ..good.clone() },
            FederationConfig { digest_interval: Duration::ZERO, ..good.clone() },
            FederationConfig { digest_timeout: Duration::ZERO, ..good.clone() },
            FederationConfig { eject_after: 0, ..good.clone() },
            FederationConfig { hop_limit: 0, ..good.clone() },
        ];
        for bad in cases {
            let c = GatewayConfig { federation: Some(bad.clone()), ..GatewayConfig::default() };
            assert!(c.validate().is_err(), "{bad:?} must be rejected");
        }
    }
}

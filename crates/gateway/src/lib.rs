//! # offloadnn-gateway — the multi-node offloading tier
//!
//! One `offloadnn-serve` node admits tasks against *its own* capacity.
//! This crate scales the admission service out: a [`Gateway`] owns a
//! pool of backend serve nodes (each an `offloadnn-net` endpoint
//! speaking the v3 wire protocol) and presents the whole cluster as a
//! single admission backend — including over the network, since
//! [`Gateway`] implements [`offloadnn_net::Backend`] and therefore
//! slots behind either TCP frontend via
//! [`offloadnn_net::AnyServer::start_with_backend`].
//!
//! Five mechanisms, one per module:
//!
//! * **Routing** ([`router`]) — weighted rendezvous hashing. Each
//!   submit's task id is scored against every healthy node
//!   (`-weight / ln(u)`, the logarithmic method); the weight is the
//!   node's reported admission headroom from its latest health
//!   snapshot. Ejecting a node remaps only the keys it was winning.
//! * **Health** ([`crate::health`], internal) — a monitor thread probes
//!   every node each `health_interval` with a Metrics frame
//!   ([`offloadnn_net::Client::snapshot_timeout`]). `eject_after`
//!   consecutive misses ejects a node; after `probation` a successful
//!   probe readmits it.
//! * **Failover** — a node that drops its connection (or starts
//!   draining) mid-request is ejected immediately and the in-flight
//!   ticket is retried on a survivor with the *remaining* deadline
//!   budget, up to `retry_limit` attempts; a ticket that runs out of
//!   nodes, retries or time resolves Shed / Expired so the gateway's
//!   conservation ledger ([`Gateway::metrics`]) stays balanced.
//! * **Hedging** — optionally ([`HedgeConfig`]), a ticket whose primary
//!   node's observed p99 RTT projects past the ticket deadline is
//!   duplicated to the next-ranked node; the first verdict wins and the
//!   loser is reaped (departed iff it was admitted), so no verdict is
//!   double-counted and no backend capacity leaks.
//! * **Discovery** ([`membership`]) — the pool is dynamic. A node
//!   announces itself (protocol v3 `Announce` frame, or
//!   [`Gateway::announce`] in-process) under a per-process incarnation
//!   stamp and joins in `Probing`: visible in membership views, probed
//!   by the monitor, but unroutable until a probe succeeds
//!   (join-through-probation). A graceful [`Gateway::leave`] departs the
//!   node — its in-flight tickets fail over with their remaining
//!   deadline budget exactly as an ejection's do — and the incarnation
//!   ordering guarantees a delayed replay of its old announce never
//!   resurrects it.
//!
//! Telemetry: `gw.nodes.healthy` / `gw.membership.size` gauges,
//! `gw.joins` / `gw.leaves` / `gw.failover` / `gw.hedges` /
//! `gw.hedge_wins` counters and the `gw.route` span histogram, all
//! compiled out with the `offloadnn-telemetry/disabled` feature.
//!
//! ```no_run
//! use offloadnn_core::scenario::small_scenario;
//! use offloadnn_gateway::{Gateway, GatewayConfig};
//! use offloadnn_net::{NetConfig, NetServer};
//! use offloadnn_serve::ServiceConfig;
//!
//! let scenario = small_scenario(5);
//! // Three single-node backends...
//! let nodes: Vec<_> = (0..3)
//!     .map(|_| {
//!         NetServer::start(
//!             ("127.0.0.1", 0),
//!             NetConfig::default(),
//!             ServiceConfig::default(),
//!             &scenario.instance,
//!         )
//!         .unwrap()
//!     })
//!     .collect();
//! let addrs: Vec<_> = nodes.iter().map(|n| n.local_addr()).collect();
//! // ...one cluster.
//! let gateway = Gateway::start(&addrs, GatewayConfig::default()).unwrap();
//! let pending = gateway
//!     .submit(scenario.instance.tasks[0].clone(), scenario.instance.options[0].clone())
//!     .unwrap();
//! use offloadnn_net::PendingOutcome;
//! println!("cluster verdict: {:?}", pending.wait());
//! let report = gateway.drain();
//! assert!(report.metrics.is_conserved());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
mod gateway;
mod health;
mod instruments;
pub mod membership;
mod node;
mod peer;
pub mod router;

pub use config::{FederationConfig, GatewayConfig, GatewayError, HedgeConfig};
pub use gateway::{ForwardStats, Gateway, GwPending};
pub use membership::{AnnounceOutcome, LeaveOutcome, Membership};

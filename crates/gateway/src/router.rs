//! Weighted rendezvous (highest-random-weight) routing.
//!
//! Every routing decision is a pure function of `(key, candidates)`: for
//! each candidate node the key is mixed with the node's seed into a
//! uniform draw `u ∈ (0, 1)`, scored with the logarithmic method
//! `score = -weight / ln(u)`, and the highest score wins. The score of a
//! node depends only on the key, that node's seed and that node's
//! weight, which gives rendezvous hashing its minimal-disruption
//! property: ejecting a node changes nothing about the scores of the
//! survivors, so only the keys the ejected node was winning move — each
//! to its previous runner-up. The property tests in
//! `tests/routing_props.rs` pin exactly this.
//!
//! Weights are node health headroom (see `crate::health`): a node
//! reporting more remaining budget gets proportionally more of the key
//! space, and a weight change only reshuffles keys between the changed
//! node and the rest — never between two unchanged nodes.

/// A routable node as the router sees it: an opaque caller-side index,
/// the node's stable hash seed and its current routing weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Caller-side identifier (e.g. index into the gateway's node pool);
    /// returned verbatim by [`route`] / [`rank`].
    pub index: usize,
    /// Stable per-node seed, derived from the node address via
    /// [`node_seed`] so the mapping survives restarts.
    pub seed: u64,
    /// Routing weight; non-finite or non-positive weights are clamped to
    /// a small epsilon so a node never disappears from the ring merely
    /// by reporting zero headroom.
    pub weight: f64,
}

/// 64-bit FNV-1a, the same spread function the serve-side router uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A stable seed for a node from its address string.
pub fn node_seed(addr: &str) -> u64 {
    fnv1a(addr.as_bytes())
}

/// Mixes the task key with a node seed into 64 well-spread bits
/// (SplitMix64 finalizer over the FNV combination of both).
fn mix(key: u64, seed: u64) -> u64 {
    let mut buf = [0u8; 16];
    buf[..8].copy_from_slice(&key.to_le_bytes());
    buf[8..].copy_from_slice(&seed.to_le_bytes());
    let mut z = fnv1a(&buf);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps 64 hash bits onto the open unit interval (0, 1): the top 53 bits
/// shifted into the mantissa range, offset by one so `ln(u)` is finite.
fn unit(h: u64) -> f64 {
    ((h >> 11) + 1) as f64 / ((1u64 << 53) + 1) as f64
}

/// The rendezvous score of one `(key, node)` pair. Strictly positive,
/// monotone in both the weight and the node's uniform draw.
pub fn score(key: u64, seed: u64, weight: f64) -> f64 {
    let w = if weight.is_finite() && weight > 0.0 { weight } else { 1e-9 };
    let u = unit(mix(key, seed));
    // u ∈ (0,1) ⇒ ln(u) < 0 ⇒ score > 0; larger u or w ⇒ larger score.
    -w / u.ln()
}

/// Candidate indices ordered best-first for `key`. Ties (possible only
/// through duplicate seeds) break on the seed, then the caller index, so
/// the order is total and deterministic.
pub fn rank(key: u64, candidates: &[Candidate]) -> Vec<usize> {
    let mut scored: Vec<(f64, u64, usize)> =
        candidates.iter().map(|c| (score(key, c.seed, c.weight), c.seed, c.index)).collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
    });
    scored.into_iter().map(|(_, _, index)| index).collect()
}

/// The winning candidate index for `key`, or `None` with no candidates.
pub fn route(key: u64, candidates: &[Candidate]) -> Option<usize> {
    candidates
        .iter()
        .map(|c| (score(key, c.seed, c.weight), c.seed, c.index))
        .max_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(b.1.cmp(&a.1)).then(b.2.cmp(&a.2))
        })
        .map(|(_, _, index)| index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<Candidate> {
        (0..n)
            .map(|i| Candidate { index: i, seed: node_seed(&format!("127.0.0.1:{}", 9000 + i)), weight: 1.0 })
            .collect()
    }

    #[test]
    fn route_agrees_with_rank() {
        let nodes = pool(5);
        for key in 0..200u64 {
            assert_eq!(route(key, &nodes), rank(key, &nodes).first().copied());
        }
    }

    #[test]
    fn empty_pool_routes_nowhere() {
        assert_eq!(route(42, &[]), None);
        assert!(rank(42, &[]).is_empty());
    }

    #[test]
    fn keys_spread_across_equal_weight_nodes() {
        let nodes = pool(4);
        let mut hits = [0usize; 4];
        for key in 0..4000u64 {
            hits[route(key, &nodes).unwrap()] += 1;
        }
        // Equal weights ⇒ roughly uniform; allow a generous band.
        for &h in &hits {
            assert!((600..=1400).contains(&h), "skewed spread: {hits:?}");
        }
    }

    #[test]
    fn heavier_node_wins_more_keys() {
        let mut nodes = pool(3);
        nodes[1].weight = 4.0;
        let mut hits = [0usize; 3];
        for key in 0..3000u64 {
            hits[route(key, &nodes).unwrap()] += 1;
        }
        assert!(hits[1] > hits[0] && hits[1] > hits[2], "weight ignored: {hits:?}");
    }

    #[test]
    fn degenerate_weights_still_route() {
        let nodes = [
            Candidate { index: 0, seed: 1, weight: 0.0 },
            Candidate { index: 1, seed: 2, weight: f64::NAN },
            Candidate { index: 2, seed: 3, weight: -5.0 },
        ];
        for key in 0..100u64 {
            assert!(route(key, &nodes).is_some());
        }
    }
}

//! The gateway's membership engine: the dynamic node pool behind
//! auto-discovery.
//!
//! ## Incarnations
//!
//! Every announce carries a per-node incarnation stamp (the node picks a
//! fresh one per process, e.g. startup time in nanoseconds). The engine
//! keeps, per address, the highest incarnation it has applied, and
//! orders every announce/leave against it:
//!
//! * **unknown address** — joins, `Probing` (see below).
//! * **higher incarnation** — the node restarted: it re-enters
//!   `Probing` under the new stamp with its probe history reset.
//! * **equal incarnation** — a duplicate announce (retry, multiple
//!   gateways' views crossing): a no-op — unless the node already
//!   departed under that stamp, in which case it is *stale*: a replayed
//!   announce must never resurrect a node that left.
//! * **lower incarnation** — stale (a delayed frame from a previous
//!   life); ignored.
//!
//! A leave applies when its incarnation is at least the one on record —
//! a node leaving always knows its own current stamp, and an operator
//! can force a departure with `u64::MAX`.
//!
//! ## Join-through-probation
//!
//! A joining node enters `Probing`: it is registered, visible in
//! membership views, and probed by the health monitor — but invisible to
//! routing until a probe succeeds. A node that announces an address
//! nobody answers on never receives a ticket.
//!
//! ## Pool layout
//!
//! The pool is **append-only**: a departed node keeps its index (and its
//! `Arc<Node>` stays alive) so in-flight tickets, route affinities and
//! reaper entries indexed before the departure stay valid. Routing never
//! sees it again — candidates are filtered on `Healthy` — and the
//! rendezvous minimal-disruption property means its departure remaps
//! only the keys it owned.

use crate::node::Node;
use offloadnn_net::{MemberInfo, MemberState};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// What [`Membership::announce`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnounceOutcome {
    /// A new address joined the pool (in `Probing`).
    Joined,
    /// A known address re-registered under a strictly newer incarnation
    /// (back to `Probing`).
    Restarted,
    /// The same incarnation was already registered; nothing changed.
    Duplicate,
    /// Older incarnation — or a replay of one that already departed;
    /// ignored.
    Stale,
}

/// What [`Membership::leave`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaveOutcome {
    /// The node is now `Departed` (idempotently so).
    Departed,
    /// The leave carried an incarnation older than the record; ignored.
    Stale,
    /// The address was never a member.
    Unknown,
}

struct PoolInner {
    /// Append-only: indices are stable for the lifetime of the gateway.
    nodes: Vec<Arc<Node>>,
    by_addr: HashMap<SocketAddr, usize>,
}

/// The dynamic node pool. Reads (routing, probing) take the lock shared;
/// membership changes take it exclusively, which are rare and cheap (a
/// map update, never I/O).
pub struct Membership {
    pool: RwLock<PoolInner>,
    /// Bumped on every applied change; cheap staleness check for
    /// observers that cache a view.
    version: AtomicU64,
}

impl Membership {
    /// Builds the pool from the seed addresses named at gateway start.
    /// Seeds are trusted immediately (`Healthy`, incarnation 0) —
    /// exactly the static-pool behaviour discovery grew out of.
    pub fn new(seeds: &[SocketAddr]) -> Self {
        let nodes: Vec<Arc<Node>> = seeds.iter().map(|&a| Arc::new(Node::new(a))).collect();
        let by_addr = nodes.iter().enumerate().map(|(i, n)| (n.addr, i)).collect();
        Self { pool: RwLock::new(PoolInner { nodes, by_addr }), version: AtomicU64::new(0) }
    }

    /// Applies one announce. See the module docs for the ordering rules.
    pub fn announce(&self, addr: SocketAddr, incarnation: u64) -> AnnounceOutcome {
        let mut pool = self.pool.write().expect("membership pool lock");
        let outcome = match pool.by_addr.get(&addr).copied() {
            None => {
                let node = Arc::new(Node::probing(addr, incarnation));
                let index = pool.nodes.len();
                pool.nodes.push(node);
                pool.by_addr.insert(addr, index);
                AnnounceOutcome::Joined
            }
            Some(index) => {
                let node = &pool.nodes[index];
                let current = node.incarnation();
                if incarnation > current {
                    node.restart(incarnation);
                    AnnounceOutcome::Restarted
                } else if incarnation == current && node.state() != MemberState::Departed {
                    AnnounceOutcome::Duplicate
                } else {
                    AnnounceOutcome::Stale
                }
            }
        };
        if !matches!(outcome, AnnounceOutcome::Duplicate | AnnounceOutcome::Stale) {
            self.version.fetch_add(1, Ordering::AcqRel);
        }
        outcome
    }

    /// Applies one leave: the node departs iff `incarnation` is at least
    /// its registered stamp. Idempotent — a second leave under the same
    /// stamp still answers [`LeaveOutcome::Departed`].
    pub fn leave(&self, addr: SocketAddr, incarnation: u64) -> LeaveOutcome {
        let pool = self.pool.write().expect("membership pool lock");
        let Some(&index) = pool.by_addr.get(&addr) else {
            return LeaveOutcome::Unknown;
        };
        let node = &pool.nodes[index];
        if incarnation < node.incarnation() {
            return LeaveOutcome::Stale;
        }
        if node.depart() {
            self.version.fetch_add(1, Ordering::AcqRel);
        }
        LeaveOutcome::Departed
    }

    /// The node at pool position `index` (stable across churn).
    pub(crate) fn node(&self, index: usize) -> Arc<Node> {
        Arc::clone(&self.pool.read().expect("membership pool lock").nodes[index])
    }

    /// A point-in-time copy of the whole pool, for the monitor sweep.
    pub(crate) fn snapshot(&self) -> Vec<Arc<Node>> {
        self.pool.read().expect("membership pool lock").nodes.clone()
    }

    /// The current routing candidates: every `Healthy` node with its
    /// pool index, seed and weight, ready for [`crate::router::route`].
    pub fn candidates(&self) -> Vec<crate::router::Candidate> {
        self.healthy_candidates(&[])
    }

    /// Routing candidates: every `Healthy` node except the pool indices
    /// in `exclude`.
    pub(crate) fn healthy_candidates(&self, exclude: &[usize]) -> Vec<crate::router::Candidate> {
        self.pool
            .read()
            .expect("membership pool lock")
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| !exclude.contains(i) && n.is_healthy())
            .map(|(i, n)| n.candidate(i))
            .collect()
    }

    /// Currently routable nodes.
    pub fn healthy_count(&self) -> usize {
        self.pool.read().expect("membership pool lock").nodes.iter().filter(|n| n.is_healthy()).count()
    }

    /// Pool size including probing, ejected and departed members.
    pub fn len(&self) -> usize {
        self.pool.read().expect("membership pool lock").nodes.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monotonic change counter (bumped per applied join/restart/leave).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The cluster view as it travels in a membership frame.
    pub fn members(&self) -> Vec<MemberInfo> {
        self.pool
            .read()
            .expect("membership pool lock")
            .nodes
            .iter()
            .map(|n| MemberInfo { addr: n.addr.to_string(), incarnation: n.incarnation(), state: n.state() })
            .collect()
    }
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Membership")
            .field("members", &self.members())
            .field("version", &self.version())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn seeds(ports: &[u16]) -> Membership {
        let addrs: Vec<SocketAddr> = ports.iter().map(|&p| addr(p)).collect();
        Membership::new(&addrs)
    }

    #[test]
    fn seeds_start_healthy_and_routable() {
        let m = seeds(&[9001, 9002]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.healthy_count(), 2);
        assert_eq!(m.healthy_candidates(&[]).len(), 2);
        assert!(m.members().iter().all(|i| i.state == MemberState::Healthy && i.incarnation == 0));
    }

    #[test]
    fn a_join_enters_probation_not_routing() {
        let m = seeds(&[9001]);
        assert_eq!(m.announce(addr(9002), 5), AnnounceOutcome::Joined);
        assert_eq!(m.len(), 2);
        assert_eq!(m.healthy_count(), 1, "a probing node is not routable");
        assert_eq!(m.healthy_candidates(&[]).len(), 1);
        let joined = m.node(1);
        assert_eq!(joined.state(), MemberState::Probing);
        assert_eq!(joined.incarnation(), 5);
    }

    #[test]
    fn duplicate_and_stale_announces_change_nothing() {
        let m = seeds(&[9001]);
        m.announce(addr(9002), 5);
        let v = m.version();
        assert_eq!(m.announce(addr(9002), 5), AnnounceOutcome::Duplicate);
        assert_eq!(m.announce(addr(9002), 4), AnnounceOutcome::Stale);
        assert_eq!(m.version(), v, "no-op announces must not bump the version");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn a_newer_incarnation_restarts_into_probation() {
        let m = seeds(&[9001]);
        m.announce(addr(9002), 5);
        m.node(1).promote();
        assert_eq!(m.healthy_count(), 2);
        assert_eq!(m.announce(addr(9002), 6), AnnounceOutcome::Restarted);
        assert_eq!(m.node(1).state(), MemberState::Probing, "a restarted node re-proves itself");
        assert_eq!(m.node(1).incarnation(), 6);
        assert_eq!(m.healthy_count(), 1);
    }

    #[test]
    fn leave_is_incarnation_gated_and_idempotent() {
        let m = seeds(&[9001]);
        m.announce(addr(9002), 5);
        m.node(1).promote();
        assert_eq!(m.leave(addr(9002), 4), LeaveOutcome::Stale);
        assert_eq!(m.node(1).state(), MemberState::Healthy);
        assert_eq!(m.leave(addr(9002), 5), LeaveOutcome::Departed);
        assert_eq!(m.node(1).state(), MemberState::Departed);
        assert_eq!(m.leave(addr(9002), 5), LeaveOutcome::Departed, "leave is idempotent");
        assert_eq!(m.leave(addr(9003), 1), LeaveOutcome::Unknown);
        assert_eq!(m.healthy_count(), 1);
        assert_eq!(m.len(), 2, "the pool is append-only; indices stay stable");
    }

    #[test]
    fn a_replayed_announce_never_resurrects_a_departed_node() {
        let m = seeds(&[9001]);
        m.announce(addr(9002), 5);
        m.node(1).promote();
        m.leave(addr(9002), 5);
        // The original announce arrives again (delayed in the network).
        assert_eq!(m.announce(addr(9002), 5), AnnounceOutcome::Stale);
        assert_eq!(m.node(1).state(), MemberState::Departed);
        // Something older still is just as dead.
        assert_eq!(m.announce(addr(9002), 3), AnnounceOutcome::Stale);
        assert_eq!(m.node(1).state(), MemberState::Departed);
        // Only a strictly newer incarnation — an actual restart — lives.
        assert_eq!(m.announce(addr(9002), 6), AnnounceOutcome::Restarted);
        assert_eq!(m.node(1).state(), MemberState::Probing);
    }

    #[test]
    fn seed_leaves_depart_with_any_incarnation() {
        let m = seeds(&[9001, 9002]);
        // Seeds register at incarnation 0, so their own leave (stamp >= 0)
        // always applies.
        assert_eq!(m.leave(addr(9001), 0), LeaveOutcome::Departed);
        assert_eq!(m.healthy_count(), 1);
    }
}

//! The health monitor: periodic Metrics-frame probes, ejection after K
//! consecutive misses, probation-gated readmission, and weight updates.
//!
//! One thread sweeps the pool every `health_interval`. Healthy nodes are
//! probed with [`offloadnn_net::Client::snapshot_timeout`] — a node that
//! cannot answer a metrics request within `health_timeout` counts a
//! miss; `eject_after` consecutive misses ejects it. Ejected nodes are
//! left alone until their probation window elapses, then probed once: a
//! success readmits them (weight reset from the fresh snapshot), a
//! failure restarts probation.
//!
//! A successful probe also refreshes the node's routing weight from the
//! reported load: `weight = 1 / (1 + in_flight + queued)` where
//! `in_flight = admitted − departed` and `queued = submitted − resolved`.
//! More remaining budget ⇒ more of the key space, and the rendezvous
//! scores of the *other* nodes are untouched by the update.

use crate::gateway::GatewayInner;
use crate::node::Node;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use offloadnn_serve::MetricsSnapshot;
use offloadnn_telemetry::{event, Severity};
use std::sync::Arc;

/// Routing weight from a node's reported load.
fn weight_from(snapshot: &MetricsSnapshot) -> f64 {
    let in_flight = snapshot.admitted.saturating_sub(snapshot.departed);
    let queued = snapshot.submitted.saturating_sub(snapshot.resolved());
    1.0 / (1.0 + (in_flight + queued) as f64)
}

/// Probes one node and applies the state machine transition.
fn probe(inner: &GatewayInner, node: &Node) {
    let config = &inner.config;
    if node.is_healthy() {
        match node.client(&config.client).and_then(|c| c.snapshot_timeout(config.health_timeout)) {
            Ok(snapshot) => {
                node.note_probe_ok();
                node.set_weight(weight_from(&snapshot));
            }
            Err(err) => {
                // The connection (if any) is suspect either way.
                node.drop_client();
                if node.note_probe_miss(config.eject_after) && node.eject(config.probation) {
                    event!(Severity::Warn, "gw.health", "ejected {}: {err}", node.addr);
                }
            }
        }
    } else if node.probation_over() {
        match node.client(&config.client).and_then(|c| c.snapshot_timeout(config.health_timeout)) {
            Ok(snapshot) => {
                node.set_weight(weight_from(&snapshot));
                node.readmit();
                event!(Severity::Info, "gw.health", "readmitted {}", node.addr);
            }
            Err(_) => {
                node.drop_client();
                node.extend_probation(config.probation);
            }
        }
    }
}

/// The monitor thread body: sweep, publish the healthy-node gauge,
/// sleep until the next tick or shutdown (the sender side of
/// `shutdown_rx` is dropped by [`crate::Gateway`] drain).
pub(crate) fn monitor_loop(inner: &Arc<GatewayInner>, shutdown_rx: &Receiver<()>) {
    loop {
        for node in &inner.nodes {
            probe(inner, node);
        }
        inner.publish_healthy_gauge();
        match shutdown_rx.recv_timeout(inner.config.health_interval) {
            Err(RecvTimeoutError::Timeout) => {}
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_shrinks_with_load() {
        let metrics = offloadnn_serve::ServiceMetrics::new();
        assert_eq!(weight_from(&metrics.snapshot()), 1.0);
        metrics.submitted.add(10);
        metrics.admitted.add(6);
        metrics.rejected.add(2);
        metrics.shed.inc();
        metrics.expired.inc();
        metrics.departed.add(2);
        // in_flight = 4, queued = 0 ⇒ 1/5.
        assert_eq!(weight_from(&metrics.snapshot()), 0.2);
        metrics.submitted.add(4);
        // 4 still queued ⇒ 1/9.
        assert!((weight_from(&metrics.snapshot()) - 1.0 / 9.0).abs() < 1e-12);
    }
}

//! The health monitor: periodic Metrics-frame probes driving the node
//! lifecycle state machine — ejection after K consecutive misses,
//! probation-gated readmission, join-through-probation promotion of
//! announced nodes, and weight updates.
//!
//! One thread sweeps the membership pool every `health_interval`. What a
//! probe does depends on the node's state:
//!
//! * **Healthy** — probed every sweep with
//!   [`offloadnn_net::Client::snapshot_timeout`]; a node that cannot
//!   answer within `health_timeout` counts a miss, and `eject_after`
//!   consecutive misses ejects it. A success refreshes the routing
//!   weight (below).
//! * **Probing** — a node that announced itself and has not yet proven
//!   it answers. The first successful probe promotes it to `Healthy`
//!   (and invalidates cached plans — the pool just grew); until then it
//!   receives zero traffic.
//! * **Ejected** — left alone until probation elapses, then probed: a
//!   success readmits it, a failure restarts probation.
//! * **Departed** — never probed; the node left.
//!
//! Probes of *unhealthy* (probing/ejected) nodes back off: after
//! `probe_backoff_after` consecutive failures the probe stride doubles
//! per failure, capped at `probe_backoff_limit` sweeps. Without this a
//! node that announced and then died — or an ejected node that never
//! comes back — costs the monitor a full connect timeout every sweep,
//! forever, crowding out the probes that matter.
//!
//! A successful probe also refreshes the node's routing weight from the
//! reported load and solver cost:
//! `weight = 1 / (1 + in_flight + queued + round_ms)` where
//! `in_flight = admitted − departed`, `queued = submitted − resolved`
//! and `round_ms` is the node's mean solver round in milliseconds (from
//! the wire `round_time` histogram, mirroring the node-local
//! `solver.round_ms` gauge). A node whose solver is grinding gets less
//! of the key space even when its queue looks shallow. More remaining
//! budget ⇒ more of the key space, and the rendezvous scores of the
//! *other* nodes are untouched by the update.

use crate::gateway::GatewayInner;
use crate::node::Node;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use offloadnn_net::MemberState;
use offloadnn_serve::MetricsSnapshot;
use offloadnn_telemetry::{event, Severity};
use std::sync::Arc;

/// Routing weight from a node's reported load and mean solver round.
fn weight_from(snapshot: &MetricsSnapshot) -> f64 {
    let in_flight = snapshot.admitted.saturating_sub(snapshot.departed);
    let queued = snapshot.submitted.saturating_sub(snapshot.resolved());
    let round_ms = snapshot.round_time.mean().as_secs_f64() * 1e3;
    1.0 / (1.0 + (in_flight + queued) as f64 + round_ms)
}

/// Probes one node and applies the state machine transition.
fn probe(inner: &GatewayInner, node: &Node) {
    let config = &inner.config;
    match node.state() {
        MemberState::Healthy => {
            match node.client(&config.client).and_then(|c| c.snapshot_timeout(config.health_timeout)) {
                Ok(snapshot) => {
                    node.note_probe_ok();
                    node.set_weight(weight_from(&snapshot));
                }
                Err(err) => {
                    // The connection (if any) is suspect either way.
                    node.drop_client();
                    if node.note_probe_miss(config.eject_after) && node.eject(config.probation) {
                        event!(Severity::Warn, "gw.health", "ejected {}: {err}", node.addr);
                    }
                }
            }
        }
        MemberState::Probing => {
            if !node.probe_due() {
                return;
            }
            match node.client(&config.client).and_then(|c| c.snapshot_timeout(config.health_timeout)) {
                Ok(snapshot) => {
                    node.set_weight(weight_from(&snapshot));
                    if node.promote() {
                        // The pool just grew a routable node: cached
                        // cluster-level rejections (and affinities picked
                        // under the smaller pool) are stale.
                        inner.invalidate_plans();
                        event!(Severity::Info, "gw.health", "promoted {}", node.addr);
                    }
                }
                Err(_) => {
                    node.drop_client();
                    node.note_probe_failed(config.probe_backoff_after, config.probe_backoff_limit);
                }
            }
        }
        MemberState::Ejected => {
            if !node.probation_over() || !node.probe_due() {
                return;
            }
            match node.client(&config.client).and_then(|c| c.snapshot_timeout(config.health_timeout)) {
                Ok(snapshot) => {
                    node.set_weight(weight_from(&snapshot));
                    if node.readmit() {
                        // Readmission restores capacity, so cached
                        // cluster-level rejections (and affinities picked
                        // while the node was out) are stale.
                        inner.invalidate_plans();
                        event!(Severity::Info, "gw.health", "readmitted {}", node.addr);
                    }
                }
                Err(_) => {
                    node.drop_client();
                    node.extend_probation(config.probation);
                    node.note_probe_failed(config.probe_backoff_after, config.probe_backoff_limit);
                }
            }
        }
        MemberState::Departed => {}
    }
}

/// The monitor thread body: sweep a snapshot of the membership pool,
/// publish the gauges, sleep until the next tick or shutdown (the sender
/// side of `shutdown_rx` is dropped by [`crate::Gateway`] drain).
pub(crate) fn monitor_loop(inner: &Arc<GatewayInner>, shutdown_rx: &Receiver<()>) {
    loop {
        for node in inner.membership.snapshot() {
            probe(inner, &node);
        }
        inner.publish_membership_gauges();
        match shutdown_rx.recv_timeout(inner.config.health_interval) {
            Err(RecvTimeoutError::Timeout) => {}
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_shrinks_with_load() {
        let metrics = offloadnn_serve::ServiceMetrics::new();
        assert_eq!(weight_from(&metrics.snapshot()), 1.0);
        metrics.submitted.add(10);
        metrics.admitted.add(6);
        metrics.rejected.add(2);
        metrics.shed.inc();
        metrics.expired.inc();
        metrics.departed.add(2);
        // in_flight = 4, queued = 0 ⇒ 1/5.
        assert_eq!(weight_from(&metrics.snapshot()), 0.2);
        metrics.submitted.add(4);
        // 4 still queued ⇒ 1/9.
        assert!((weight_from(&metrics.snapshot()) - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn weight_shrinks_with_solver_round_time() {
        use std::time::Duration;
        let fast = offloadnn_serve::ServiceMetrics::new();
        let slow = offloadnn_serve::ServiceMetrics::new();
        for _ in 0..8 {
            fast.round_time.record(Duration::from_micros(100));
            slow.round_time.record(Duration::from_millis(20));
        }
        let (wf, ws) = (weight_from(&fast.snapshot()), weight_from(&slow.snapshot()));
        assert!(ws < wf, "a grinding solver must shed key space: fast {wf} vs slow {ws}");
        // ~20 ms mean ⇒ weight near 1/21 (log-bucket resolution: within 2x).
        assert!(ws < 1.0 / 10.0 && ws > 1.0 / 50.0, "slow weight {ws} out of range");
    }
}

//! Loopback load generator for the `offloadnn-gateway` cluster tier.
//!
//! Starts N backend [`NetServer`] nodes on ephemeral loopback ports,
//! fronts them with a [`Gateway`], exposes the gateway itself through
//! the selected TCP frontend ([`AnyServer::start_with_backend`]), and
//! drives it with a fleet of [`Client`] connections pipelining
//! admission submits. Optionally kills one backend node mid-run so the
//! gateway's ejection + failover path carries live traffic, hot-joins a
//! brand-new node over the wire (`--join-node-at`, a v3 Announce frame
//! followed by probation), gracefully departs a node
//! (`--leave-node-at`, a v3 Leave frame) while its in-flight verdicts
//! drain, or federates the gateway with a second full cluster
//! (`--peer`): the primary cluster is deliberately starved
//! (`--queue-capacity`) so its would-be `Shed` overflow forwards over
//! protocol-v4 `Forward` frames to the peer, and the run requires that
//! overflow to actually land there.
//!
//! The run is conservation-gated: every offered request must resolve
//! exactly once at the wire, the gateway's own ledger must balance,
//! and every backend node — including the killed one and the peer
//! cluster's — must be locally conserved. Exits non-zero on any
//! violation, so CI can gate on it. The flag surface, verdict tally
//! and driver loop are the shared ones from
//! [`offloadnn_serve::loadgen::args`]; each connection's [`Client`] is
//! driven purely as a `&dyn Admitter`.
//!
//! ```text
//! cargo run --release -p offloadnn-gateway --bin gateway_loadgen -- \
//!     --nodes 3 --requests 3000 --kill-node-at 1200
//! cargo run --release -p offloadnn-gateway --bin gateway_loadgen -- \
//!     --nodes 1 --shards 1 --queue-capacity 8 --requests 2000 --peer
//! ```

use offloadnn_core::instance::PathOption;
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::Task;
use offloadnn_gateway::{FederationConfig, Gateway, GatewayConfig, HedgeConfig};
use offloadnn_net::{AnyServer, Client, ClientConfig, Frontend, NetConfig, NetServer};
use offloadnn_plancache::PlanCacheConfig;
use offloadnn_serve::loadgen::args::{self, CommonArgs, DriveConfig, DriveReport, WireTally};
use offloadnn_serve::{ServiceConfig, ShapePool};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "\
gateway_loadgen — loopback load generator for the offloadnn-gateway tier

Topology: N backend serve nodes <- gateway <- TCP frontend <- clients,
optionally federated with a second peer cluster (--peer).

OPTIONS (all optional; defaults in brackets):
  --frontend F        TCP frontend for the gateway's own
                      listening side: 'threads' or 'reactor' [threads]
  --nodes N           backend serve nodes in the pool       [3]
  --requests N        total submits across all clients      [3000]
  --clients N         concurrent client connections         [4]
  --window N          per-client pipeline depth             [64]
  --shards N          worker shards per backend node        [2]
  --ues N             UEs in the reference scenario         [4]
  --deadline-ms N     client-shipped admission budget, ms
                      (0 = gateway policy deadline)         [0]
  --max-active N      admitted tasks kept per client
                      before the oldest departs             [64]
  --queue-capacity N  per-shard ingress queue bound on the
                      primary cluster's nodes; shrink it to
                      starve the cluster into shedding (the
                      --peer overflow lever)                [1024]
  --kill-node-at N    shut one backend node down once N
                      submits have been offered across all
                      clients (0 = never)                   [0]
  --kill-node IDX     which node --kill-node-at shuts down  [1]
  --join-node-at N    hot-join one extra backend node once N
                      submits have been offered: it starts,
                      announces itself over the wire (v3
                      Announce frame) and serves traffic
                      after probation (0 = never)           [0]
  --leave-node-at N   gracefully leave one backend node once
                      N submits have been offered (a v3
                      Leave frame; the server stays up to
                      flush in-flight verdicts) (0 = never) [0]
  --leave-node IDX    which node --leave-node-at departs    [0]
  --hedge             enable deadline-aware hedging         [off]
  --peer              federate with a second cluster: the
                      primary gateway forwards its would-be
                      Shed overflow to it over protocol-v4
                      Forward frames; the run fails unless
                      overflow actually lands there         [off]
  --peer-nodes N      backend nodes in the peer cluster     [2]
  --shape-skew S      Zipf exponent of the task-shape mix;
                      0 keeps the uniform prototype draw    [0]
  --shape-pool N      distinct shapes in the Zipf pool      [64]
  --gw-cache          enable the gateway-level plan cache
                      (routing affinity + negative entries) [off]
  --seed N            RNG seed (task mix)                   [7]
  -h, --help          print this help
";

/// The flags only this binary understands.
struct Extra {
    nodes: usize,
    queue_capacity: usize,
    kill_node_at: u64,
    kill_node: usize,
    join_node_at: u64,
    leave_node_at: u64,
    leave_node: usize,
    hedge: bool,
    gw_cache: bool,
    peer: bool,
    peer_nodes: usize,
}

fn parse_args() -> Result<(CommonArgs, Extra), String> {
    let mut common = CommonArgs { requests: 3000, window: 64, ues: 4, ..CommonArgs::default() };
    let mut extra = Extra {
        nodes: 3,
        queue_capacity: ServiceConfig::default().queue_capacity,
        kill_node_at: 0,
        kill_node: 1,
        join_node_at: 0,
        leave_node_at: 0,
        leave_node: 0,
        hedge: false,
        gw_cache: false,
        peer: false,
        peer_nodes: 2,
    };
    args::parse(USAGE, &mut common, |flag, it| {
        // The value-less switches are claimed before any value is
        // pulled; every other extra flag takes exactly one value.
        match flag {
            "--hedge" => {
                extra.hedge = true;
                return Ok(true);
            }
            "--gw-cache" => {
                extra.gw_cache = true;
                return Ok(true);
            }
            "--peer" => {
                extra.peer = true;
                return Ok(true);
            }
            "--nodes" | "--queue-capacity" | "--kill-node-at" | "--kill-node" | "--join-node-at"
            | "--leave-node-at" | "--leave-node" | "--peer-nodes" => {}
            _ => return Ok(false),
        }
        let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag} {value}: {e}");
        match flag {
            "--nodes" => extra.nodes = value.parse().map_err(|e| bad(&e))?,
            "--queue-capacity" => extra.queue_capacity = value.parse().map_err(|e| bad(&e))?,
            "--kill-node-at" => extra.kill_node_at = value.parse().map_err(|e| bad(&e))?,
            "--kill-node" => extra.kill_node = value.parse().map_err(|e| bad(&e))?,
            "--join-node-at" => extra.join_node_at = value.parse().map_err(|e| bad(&e))?,
            "--leave-node-at" => extra.leave_node_at = value.parse().map_err(|e| bad(&e))?,
            "--leave-node" => extra.leave_node = value.parse().map_err(|e| bad(&e))?,
            "--peer-nodes" => extra.peer_nodes = value.parse().map_err(|e| bad(&e))?,
            _ => unreachable!("guarded above"),
        }
        Ok(true)
    })?;
    if extra.nodes == 0 {
        return Err("--nodes must be >= 1".into());
    }
    if extra.kill_node_at > 0 {
        if extra.nodes < 2 {
            return Err("--kill-node-at needs at least 2 nodes (someone must survive)".into());
        }
        if extra.kill_node >= extra.nodes {
            return Err("--kill-node index out of range".into());
        }
    }
    if extra.leave_node_at > 0 {
        if extra.nodes < 2 && extra.join_node_at == 0 {
            return Err("--leave-node-at needs at least 2 nodes (someone must survive)".into());
        }
        if extra.leave_node >= extra.nodes {
            return Err("--leave-node index out of range".into());
        }
        if extra.kill_node_at > 0 && extra.leave_node == extra.kill_node {
            return Err("--leave-node and --kill-node must differ".into());
        }
    }
    if extra.peer && extra.peer_nodes == 0 {
        return Err("--peer-nodes must be >= 1".into());
    }
    Ok((common, extra))
}

/// One driver connection: dial, hand the client to the shared
/// tier-agnostic drive loop, hang up. A failed dial charges this
/// driver's whole share as transport errors.
fn run_client(
    addr: std::net::SocketAddr,
    cfg: DriveConfig,
    protos: &[(Task, Vec<PathOption>)],
    shapes: Option<&ShapePool>,
    offered: &AtomicU64,
) -> DriveReport {
    let client = match Client::connect(addr, ClientConfig::default()) {
        Ok(c) => c,
        Err(_) => {
            offered.fetch_add(cfg.requests, Ordering::Relaxed);
            return DriveReport {
                tally: WireTally { transport: cfg.requests, ..WireTally::default() },
                departed: 0,
            };
        }
    };
    let report = args::drive(&client, &cfg, protos, shapes, offered);
    client.close();
    report
}

/// Fast-failover gateway tuning so a mid-run kill (or a peer digest
/// gap) resolves well inside the verdict timeout; the defaults are
/// sized for real WAN probes.
fn fast_gateway_config() -> GatewayConfig {
    GatewayConfig {
        health_interval: Duration::from_millis(50),
        health_timeout: Duration::from_millis(250),
        eject_after: 2,
        probation: Duration::from_millis(500),
        default_deadline: Duration::from_secs(2),
        verdict_grace: Duration::from_secs(2),
        ..GatewayConfig::default()
    }
}

fn main() -> ExitCode {
    let (common, extra) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let frontend_kind: Frontend = match common.frontend.parse() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: --frontend {}: {e}", common.frontend);
            return ExitCode::from(2);
        }
    };
    let scenario = small_scenario(common.ues);
    let protos: Vec<_> =
        scenario.instance.tasks.iter().cloned().zip(scenario.instance.options.iter().cloned()).collect();
    let shapes = (common.shape_skew > 0.0)
        .then(|| ShapePool::new(common.shape_pool, common.shape_skew, protos.len(), common.seed));
    let service_config = ServiceConfig {
        shards: common.shards,
        queue_capacity: extra.queue_capacity,
        ..ServiceConfig::default()
    };
    if let Err(e) = service_config.validate() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }

    // Backend pool: each node is a full serve stack behind its own TCP
    // frontend, exactly what a remote edge node would run.
    let nodes: Vec<Mutex<Option<NetServer>>> = match (0..extra.nodes)
        .map(|_| {
            NetServer::start(("127.0.0.1", 0), NetConfig::default(), service_config, &scenario.instance)
                .map(|n| Mutex::new(Some(n)))
        })
        .collect()
    {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: failed to start backend node: {e}");
            return ExitCode::FAILURE;
        }
    };
    let node_addrs: Vec<_> = nodes
        .iter()
        .map(|n| n.lock().expect("node lock").as_ref().expect("node live").local_addr())
        .collect();

    // The peer cluster (--peer) is a second, independent gateway over
    // its own node pool with *default* queue capacity — plenty of
    // headroom to absorb the primary's overflow. It never forwards back
    // (no federation config of its own), so the topology is a strict
    // overflow drain.
    let peer_cluster = if extra.peer {
        let peer_service = ServiceConfig { shards: common.shards, ..ServiceConfig::default() };
        let peer_nodes: Vec<NetServer> = match (0..extra.peer_nodes)
            .map(|_| {
                NetServer::start(("127.0.0.1", 0), NetConfig::default(), peer_service, &scenario.instance)
            })
            .collect()
        {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: failed to start peer backend node: {e}");
                return ExitCode::FAILURE;
            }
        };
        let peer_addrs: Vec<_> = peer_nodes.iter().map(NetServer::local_addr).collect();
        let peer_gateway = match Gateway::start(&peer_addrs, fast_gateway_config()) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error: failed to start peer gateway: {e}");
                return ExitCode::FAILURE;
            }
        };
        let peer_frontend = match AnyServer::start_with_backend(
            frontend_kind,
            ("127.0.0.1", 0),
            NetConfig::default(),
            peer_gateway,
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: failed to start peer gateway frontend: {e}");
                return ExitCode::FAILURE;
            }
        };
        Some((peer_frontend, peer_nodes))
    } else {
        None
    };

    let mut gateway_config = GatewayConfig {
        hedge: HedgeConfig { enabled: extra.hedge, min_samples: 32 },
        plan_cache: extra.gw_cache.then(PlanCacheConfig::default),
        ..fast_gateway_config()
    };
    if let Some((peer_frontend, _)) = &peer_cluster {
        // Fast digest cadence for the same reason as the fast health
        // probes: the peer must be scored (digested) early in the run.
        gateway_config.federation = Some(FederationConfig {
            digest_interval: Duration::from_millis(50),
            digest_timeout: Duration::from_millis(250),
            eject_after: 2,
            ..FederationConfig::new("loadgen-primary", vec![peer_frontend.local_addr()])
        });
    }
    let gateway = match Gateway::start(&node_addrs, gateway_config) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: failed to start gateway: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The gateway is itself a Backend, so it mounts behind the same
    // reactor-or-threads frontend switch the single-node server uses.
    let net_config = NetConfig {
        max_connections: NetConfig::default().max_connections.max(common.clients + 8),
        ..NetConfig::default()
    };
    let frontend = match AnyServer::start_with_backend(frontend_kind, ("127.0.0.1", 0), net_config, gateway) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start gateway frontend: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = frontend.local_addr();
    args::print_header(
        "gateway",
        &common.frontend,
        common.seed,
        format_args!(
            "{} node(s) x {} shard(s), {} requests, {} client(s) x window {}{} — gateway {addr}",
            extra.nodes,
            common.shards,
            common.requests,
            common.clients,
            common.window,
            if extra.kill_node_at > 0 {
                format!(", killing node {} at {} offered", extra.kill_node, extra.kill_node_at)
            } else {
                String::new()
            },
        ),
    );
    if let Some((peer_frontend, _)) = &peer_cluster {
        println!(
            "federation: overflow forwards to peer cluster {} ({} node(s), queue capacity {} locally)",
            peer_frontend.local_addr(),
            extra.peer_nodes,
            extra.queue_capacity,
        );
    }
    if extra.join_node_at > 0 {
        println!("discovery: hot-joining one node at {} offered", extra.join_node_at);
    }
    if extra.leave_node_at > 0 {
        println!("discovery: node {} leaves gracefully at {} offered", extra.leave_node, extra.leave_node_at);
    }
    if common.shape_skew > 0.0 {
        println!(
            "shapes: Zipf skew {:.2} over a pool of {} deterministic shapes (gateway cache {})",
            common.shape_skew,
            common.shape_pool,
            if extra.gw_cache { "on" } else { "off" },
        );
    }

    let started = Instant::now();
    let per_client = common.requests / common.clients as u64;
    let remainder = common.requests % common.clients as u64;
    let mut total = DriveReport::default();
    let offered = AtomicU64::new(0);
    let mut node_reports = Vec::new();
    let mut joined_server = None;
    std::thread::scope(|scope| {
        // The killer waits for the offered threshold, then shuts the
        // victim down with tickets still in flight — the gateway must
        // eject it and finish those tickets on survivors.
        let killer = (extra.kill_node_at > 0).then(|| {
            let (offered, victim) = (&offered, &nodes[extra.kill_node]);
            let (kill_node, kill_node_at) = (extra.kill_node, extra.kill_node_at);
            scope.spawn(move || {
                while offered.load(Ordering::Relaxed) < kill_node_at {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let server = victim.lock().expect("node lock").take().expect("victim live");
                let at = offered.load(Ordering::Relaxed);
                let report = server.shutdown();
                println!("killed node {kill_node} at {at} offered");
                report
            })
        });
        // The joiner starts a brand-new backend node mid-run and
        // announces it to the gateway *over the wire* — the v3 Announce
        // frame travels through the TCP frontend, the node sits out its
        // probation, and only then starts absorbing traffic.
        let joiner = (extra.join_node_at > 0).then(|| {
            let (offered, scenario) = (&offered, &scenario);
            let join_node_at = extra.join_node_at;
            scope.spawn(move || {
                while offered.load(Ordering::Relaxed) < join_node_at {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let server = NetServer::start(
                    ("127.0.0.1", 0),
                    NetConfig::default(),
                    service_config,
                    &scenario.instance,
                )
                .expect("start hot-join node");
                let at = offered.load(Ordering::Relaxed);
                let ack = server.announce_to(addr).expect("announce over the wire");
                println!(
                    "joined node {} at {at} offered: {:?} ({} members known)",
                    server.local_addr(),
                    ack.decision,
                    ack.members.len()
                );
                server
            })
        });
        // The leaver sends a graceful Leave frame for one seed node but
        // keeps its server running: the gateway must stop routing new
        // work to it while in-flight tickets fail over or finish.
        let leaver = (extra.leave_node_at > 0).then(|| {
            let offered = &offered;
            let leave_addr = node_addrs[extra.leave_node];
            let (leave_node, leave_node_at) = (extra.leave_node, extra.leave_node_at);
            scope.spawn(move || {
                while offered.load(Ordering::Relaxed) < leave_node_at {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let at = offered.load(Ordering::Relaxed);
                let client = Client::connect(addr, ClientConfig::default()).expect("leave client");
                let resp = client
                    .leave(&leave_addr.to_string(), u64::MAX, Duration::from_secs(5))
                    .expect("leave rpc");
                client.close();
                println!("node {leave_node} left at {at} offered: {:?}", resp.decision);
            })
        });
        let handles: Vec<_> = (0..common.clients)
            .map(|idx| {
                let share = per_client + u64::from((idx as u64) < remainder);
                let cfg = DriveConfig::from_common(&common, idx, share);
                let (protos, offered) = (&protos, &offered);
                let shapes = shapes.as_ref();
                scope.spawn(move || run_client(addr, cfg, protos, shapes, offered))
            })
            .collect();
        for h in handles {
            let r = h.join().expect("client thread");
            total.tally.merge(r.tally);
            total.departed += r.departed;
        }
        if let Some(k) = killer {
            node_reports.push((extra.kill_node, k.join().expect("killer thread"), true));
        }
        if let Some(l) = leaver {
            l.join().expect("leaver thread");
        }
        if let Some(j) = joiner {
            joined_server = Some(j.join().expect("joiner thread"));
        }
    });
    let wall = started.elapsed();
    let tally = total.tally;

    // Frontend drain returns the gateway's ledger; then drain whatever
    // backend nodes are still alive, then (in --peer mode) the peer
    // cluster — its gateway first, its nodes after.
    let report = frontend.shutdown();
    let m = &report.metrics;
    for (idx, node) in nodes.iter().enumerate() {
        if let Some(server) = node.lock().expect("node lock").take() {
            node_reports.push((idx, server.shutdown(), false));
        }
    }
    if let Some(server) = joined_server {
        node_reports.push((extra.nodes, server.shutdown(), false));
    }
    node_reports.sort_by_key(|(idx, _, _)| *idx);
    let peer_reports = peer_cluster.map(|(peer_frontend, peer_nodes)| {
        let gw = peer_frontend.shutdown();
        let node_reports: Vec<_> = peer_nodes.into_iter().map(NetServer::shutdown).collect();
        (gw, node_reports)
    });
    let submit_rate = common.requests as f64 / wall.as_secs_f64().max(1e-9);

    println!("\n— run —");
    println!(
        "wall {:.3?}   offered {}   {:.0} submits/s   departed {}",
        wall, common.requests, submit_rate, total.departed
    );
    println!("outcomes: {tally}");
    println!("\n— gateway (post-drain) —\n{m}");
    if let Some(pc) = &report.plan_cache {
        println!(
            "plan cache: hit rate {:.1}% ({} affinity hits, {} negative, {} misses, {} invalidated)",
            100.0 * pc.hit_rate(),
            pc.hits,
            pc.negative_hits,
            pc.misses,
            pc.invalidations,
        );
    }
    for (idx, r, killed) in &node_reports {
        let nm = &r.metrics;
        println!(
            "node {idx}{}: submitted {}  admitted {}  departed {}  conserved {}",
            if *killed { " (killed)" } else { "" },
            nm.submitted,
            nm.admitted,
            nm.departed,
            nm.is_conserved(),
        );
    }
    if let Some((gw, peer_node_reports)) = &peer_reports {
        let pm = &gw.metrics;
        println!(
            "peer gateway: submitted {}  admitted {}  shed {}  conserved {}",
            pm.submitted,
            pm.admitted,
            pm.shed,
            pm.is_conserved(),
        );
        for (idx, r) in peer_node_reports.iter().enumerate() {
            let nm = &r.metrics;
            println!(
                "peer node {idx}: submitted {}  admitted {}  departed {}  conserved {}",
                nm.submitted,
                nm.admitted,
                nm.departed,
                nm.is_conserved(),
            );
        }
    }
    let telemetry = offloadnn_telemetry::global().snapshot();
    println!("\n— telemetry (gw.* / net.*) —\n{telemetry}");

    // End-to-end conservation: every offered request is accounted for
    // exactly once at the wire, the gateway ledger balances, and every
    // node — including a killed one and the peer cluster's — is locally
    // conserved.
    let mut violations = Vec::new();
    if tally.outcomes() + tally.errors() != common.requests {
        violations.push(format!(
            "offered {} != outcomes {} + errors {}",
            common.requests,
            tally.outcomes(),
            tally.errors(),
        ));
    }
    if !m.is_conserved() {
        violations.push(format!(
            "gateway conservation violated: submitted {} != resolved {}",
            m.submitted,
            m.resolved()
        ));
    }
    if tally.errors() == 0 {
        for (name, wire, gateway) in [
            ("submitted", tally.outcomes(), m.submitted),
            ("admitted", tally.admitted, m.admitted),
            ("rejected", tally.rejected, m.rejected),
            ("shed", tally.shed, m.shed),
            ("expired", tally.expired, m.expired),
        ] {
            if wire != gateway {
                violations.push(format!("{name}: wire saw {wire}, gateway counted {gateway}"));
            }
        }
    }
    let mut node_admitted = 0u64;
    for (idx, r, _) in &node_reports {
        let nm = &r.metrics;
        node_admitted += nm.admitted;
        if !nm.is_conserved() {
            violations.push(format!(
                "node {idx} conservation violated: submitted {} != resolved {}",
                nm.submitted,
                nm.resolved()
            ));
        }
        if nm.departed > nm.admitted {
            violations
                .push(format!("node {idx} departed {} more than it admitted {}", nm.departed, nm.admitted));
        }
    }
    if let Some((gw, peer_node_reports)) = &peer_reports {
        let pm = &gw.metrics;
        if !pm.is_conserved() {
            violations.push(format!(
                "peer gateway conservation violated: submitted {} != resolved {}",
                pm.submitted,
                pm.resolved()
            ));
        }
        // The whole point of the federated run: the primary's overflow
        // must actually reach the peer cluster over the wire.
        if pm.submitted == 0 {
            violations.push("no overflow was forwarded to the peer cluster".into());
        }
        for (idx, r) in peer_node_reports.iter().enumerate() {
            let nm = &r.metrics;
            node_admitted += nm.admitted;
            if !nm.is_conserved() {
                violations.push(format!(
                    "peer node {idx} conservation violated: submitted {} != resolved {}",
                    nm.submitted,
                    nm.resolved()
                ));
            }
        }
    }
    // A submit that reached a node right as it died may be admitted
    // there with the verdict lost in the close; the gateway retries it
    // elsewhere, so nodes (across both clusters) can admit more — never
    // fewer — than the gateway acknowledged.
    if node_admitted < m.admitted {
        violations
            .push(format!("nodes admitted {node_admitted} in total, gateway acknowledged {}", m.admitted));
    }
    if violations.is_empty() {
        println!("\nconservation: OK");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("error: {v}");
        }
        ExitCode::FAILURE
    }
}

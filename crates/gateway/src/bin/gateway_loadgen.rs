//! Loopback load generator for the `offloadnn-gateway` cluster tier.
//!
//! Starts N backend [`NetServer`] nodes on ephemeral loopback ports,
//! fronts them with a [`Gateway`], exposes the gateway itself through
//! the selected TCP frontend ([`AnyServer::start_with_backend`]), and
//! drives it with a fleet of [`Client`] connections pipelining
//! admission submits. Optionally kills one backend node mid-run so the
//! gateway's ejection + failover path carries live traffic, hot-joins a
//! brand-new node over the wire (`--join-node-at`, a v3 Announce frame
//! followed by probation), or gracefully departs a node
//! (`--leave-node-at`, a v3 Leave frame) while its in-flight verdicts
//! drain.
//!
//! The run is conservation-gated: every offered request must resolve
//! exactly once at the wire, the gateway's own ledger must balance,
//! and every backend node — including the killed one — must be locally
//! conserved. Exits non-zero on any violation, so CI can gate on it.
//!
//! ```text
//! cargo run --release -p offloadnn-gateway --bin gateway_loadgen -- \
//!     --nodes 3 --requests 3000 --kill-node-at 1200
//! cargo run --release -p offloadnn-gateway --bin gateway_loadgen -- \
//!     --nodes 2 --requests 3000 --join-node-at 600 --leave-node-at 1800
//! ```

use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_gateway::{Gateway, GatewayConfig, HedgeConfig};
use offloadnn_net::{AnyServer, Client, ClientConfig, Frontend, NetConfig, NetError, NetServer};
use offloadnn_plancache::PlanCacheConfig;
use offloadnn_serve::{Outcome, ServiceConfig, ShapePool};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "\
gateway_loadgen — loopback load generator for the offloadnn-gateway tier

Topology: N backend serve nodes <- gateway <- TCP frontend <- clients.

OPTIONS (all optional; defaults in brackets):
  --frontend F        TCP frontend for the gateway's own
                      listening side: 'threads' or 'reactor' [threads]
  --nodes N           backend serve nodes in the pool       [3]
  --requests N        total submits across all clients      [3000]
  --clients N         concurrent client connections         [4]
  --window N          per-client pipeline depth             [64]
  --shards N          worker shards per backend node        [2]
  --ues N             UEs in the reference scenario         [4]
  --deadline-ms N     client-shipped admission budget, ms
                      (0 = gateway policy deadline)         [0]
  --max-active N      admitted tasks kept per client
                      before the oldest departs             [64]
  --kill-node-at N    shut one backend node down once N
                      submits have been offered across all
                      clients (0 = never)                   [0]
  --kill-node IDX     which node --kill-node-at shuts down  [1]
  --join-node-at N    hot-join one extra backend node once N
                      submits have been offered: it starts,
                      announces itself over the wire (v3
                      Announce frame) and serves traffic
                      after probation (0 = never)           [0]
  --leave-node-at N   gracefully leave one backend node once
                      N submits have been offered (a v3
                      Leave frame; the server stays up to
                      flush in-flight verdicts) (0 = never) [0]
  --leave-node IDX    which node --leave-node-at departs    [0]
  --hedge             enable deadline-aware hedging         [off]
  --shape-skew S      Zipf exponent of the task-shape mix;
                      0 keeps the uniform prototype draw    [0]
  --shape-pool N      distinct shapes in the Zipf pool      [64]
  --gw-cache          enable the gateway-level plan cache
                      (routing affinity + negative entries) [off]
  --seed N            RNG seed (task mix)                   [7]
  -h, --help          print this help
";

struct Args {
    frontend: Frontend,
    nodes: usize,
    requests: u64,
    clients: usize,
    window: usize,
    shards: usize,
    ues: usize,
    deadline_ms: u64,
    max_active: usize,
    kill_node_at: u64,
    kill_node: usize,
    join_node_at: u64,
    leave_node_at: u64,
    leave_node: usize,
    hedge: bool,
    shape_skew: f64,
    shape_pool: usize,
    gw_cache: bool,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            frontend: Frontend::default(),
            nodes: 3,
            requests: 3000,
            clients: 4,
            window: 64,
            shards: 2,
            ues: 4,
            deadline_ms: 0,
            max_active: 64,
            kill_node_at: 0,
            kill_node: 1,
            join_node_at: 0,
            leave_node_at: 0,
            leave_node: 0,
            hedge: false,
            shape_skew: 0.0,
            shape_pool: 64,
            gw_cache: false,
            seed: 7,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--hedge" {
            args.hedge = true;
            continue;
        }
        if flag == "--gw-cache" {
            args.gw_cache = true;
            continue;
        }
        let value = it.next().ok_or_else(|| format!("{flag}: missing value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag} {value}: {e}");
        match flag.as_str() {
            "--frontend" => args.frontend = value.parse().map_err(|e| bad(&e))?,
            "--nodes" => args.nodes = value.parse().map_err(|e| bad(&e))?,
            "--requests" => args.requests = value.parse().map_err(|e| bad(&e))?,
            "--clients" => args.clients = value.parse().map_err(|e| bad(&e))?,
            "--window" => args.window = value.parse().map_err(|e| bad(&e))?,
            "--shards" => args.shards = value.parse().map_err(|e| bad(&e))?,
            "--ues" => args.ues = value.parse().map_err(|e| bad(&e))?,
            "--deadline-ms" => args.deadline_ms = value.parse().map_err(|e| bad(&e))?,
            "--max-active" => args.max_active = value.parse().map_err(|e| bad(&e))?,
            "--kill-node-at" => args.kill_node_at = value.parse().map_err(|e| bad(&e))?,
            "--kill-node" => args.kill_node = value.parse().map_err(|e| bad(&e))?,
            "--join-node-at" => args.join_node_at = value.parse().map_err(|e| bad(&e))?,
            "--leave-node-at" => args.leave_node_at = value.parse().map_err(|e| bad(&e))?,
            "--leave-node" => args.leave_node = value.parse().map_err(|e| bad(&e))?,
            "--shape-skew" => args.shape_skew = value.parse().map_err(|e| bad(&e))?,
            "--shape-pool" => args.shape_pool = value.parse().map_err(|e| bad(&e))?,
            "--seed" => args.seed = value.parse().map_err(|e| bad(&e))?,
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.nodes == 0 {
        return Err("--nodes must be >= 1".into());
    }
    if args.clients == 0 {
        return Err("--clients must be >= 1".into());
    }
    if args.window == 0 {
        return Err("--window must be >= 1".into());
    }
    if args.kill_node_at > 0 {
        if args.nodes < 2 {
            return Err("--kill-node-at needs at least 2 nodes (someone must survive)".into());
        }
        if args.kill_node >= args.nodes {
            return Err("--kill-node index out of range".into());
        }
    }
    if args.leave_node_at > 0 {
        if args.nodes < 2 && args.join_node_at == 0 {
            return Err("--leave-node-at needs at least 2 nodes (someone must survive)".into());
        }
        if args.leave_node >= args.nodes {
            return Err("--leave-node index out of range".into());
        }
        if args.kill_node_at > 0 && args.leave_node == args.kill_node {
            return Err("--leave-node and --kill-node must differ".into());
        }
    }
    Ok(args)
}

/// Per-client verdict tally, observed through the wire.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    admitted: u64,
    rejected: u64,
    shed: u64,
    expired: u64,
    server_error: u64,
    transport_error: u64,
}

impl Tally {
    fn outcomes(&self) -> u64 {
        self.admitted + self.rejected + self.shed + self.expired
    }

    fn merge(&mut self, o: Tally) {
        self.admitted += o.admitted;
        self.rejected += o.rejected;
        self.shed += o.shed;
        self.expired += o.expired;
        self.server_error += o.server_error;
        self.transport_error += o.transport_error;
    }
}

/// How long a wire verdict may stay outstanding before the run declares
/// the connection wedged. Generous: a kill mid-run legitimately parks a
/// ticket for the full gateway deadline + grace while failover runs.
const VERDICT_TIMEOUT: Duration = Duration::from_secs(30);

fn run_client(
    addr: std::net::SocketAddr,
    client_idx: usize,
    requests: u64,
    args: &Args,
    protos: &[(offloadnn_core::task::Task, Vec<offloadnn_core::instance::PathOption>)],
    shapes: Option<&ShapePool>,
    offered: &AtomicU64,
) -> (Tally, u64) {
    let client = match Client::connect(addr, ClientConfig::default()) {
        Ok(c) => c,
        Err(_) => {
            offered.fetch_add(requests, Ordering::Relaxed);
            let t = Tally { transport_error: requests, ..Tally::default() };
            return (t, 0);
        }
    };
    let deadline = (args.deadline_ms > 0).then(|| Duration::from_millis(args.deadline_ms));
    let mut rng = StdRng::seed_from_u64(args.seed ^ (client_idx as u64).wrapping_mul(0x9E37_79B9));
    let mut tally = Tally::default();
    let mut departed = 0u64;
    let mut pending = VecDeque::new();
    let mut active: VecDeque<TaskId> = VecDeque::new();

    let resolve = |p: offloadnn_net::PendingVerdict, tally: &mut Tally, active: &mut VecDeque<TaskId>| {
        let task = p.task;
        match p.wait_timeout(VERDICT_TIMEOUT) {
            Ok(Outcome::Admitted { .. }) => {
                tally.admitted += 1;
                active.push_back(task);
            }
            Ok(Outcome::Rejected { .. }) => tally.rejected += 1,
            Ok(Outcome::Shed { .. }) => tally.shed += 1,
            Ok(Outcome::Expired { .. }) => tally.expired += 1,
            Err(NetError::Server(_)) => tally.server_error += 1,
            Err(_) => tally.transport_error += 1,
        }
    };

    for i in 0..requests {
        // With the Zipf pool active, popular shape ranks repeat
        // bit-identically across clients, so the gateway's plan cache
        // (and any node-level cache behind it) has something to hit.
        let (proto, jitter) = match shapes {
            Some(pool) => {
                let (proto, priority, rate) = pool.draw(&mut rng);
                (&protos[proto], Some((priority, rate)))
            }
            None => (&protos[rng.random_range(0..protos.len())], None),
        };
        let mut task = proto.0.clone();
        if let Some((priority, rate)) = jitter {
            task.priority = (task.priority * priority).clamp(0.05, 1.0);
            task.request_rate *= rate;
        }
        // Disjoint id spaces keep departures routable per client.
        task.id = TaskId(u32::try_from(client_idx as u64 * 100_000_000 + i).unwrap_or(u32::MAX));
        match client.submit(task, proto.1.clone(), deadline) {
            Ok(p) => pending.push_back(p),
            Err(_) => tally.transport_error += 1,
        }
        offered.fetch_add(1, Ordering::Relaxed);
        if pending.len() >= args.window {
            if let Some(p) = pending.pop_front() {
                resolve(p, &mut tally, &mut active);
            }
        }
        while args.max_active > 0 && active.len() > args.max_active {
            if let Some(id) = active.pop_front() {
                if client.depart(id).is_ok() {
                    departed += 1;
                }
            }
        }
    }
    while let Some(p) = pending.pop_front() {
        resolve(p, &mut tally, &mut active);
    }
    client.close();
    (tally, departed)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = small_scenario(args.ues);
    let protos: Vec<_> =
        scenario.instance.tasks.iter().cloned().zip(scenario.instance.options.iter().cloned()).collect();
    let shapes = (args.shape_skew > 0.0)
        .then(|| ShapePool::new(args.shape_pool, args.shape_skew, protos.len(), args.seed));
    let service_config = ServiceConfig { shards: args.shards, ..ServiceConfig::default() };
    if let Err(e) = service_config.validate() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }

    // Backend pool: each node is a full serve stack behind its own TCP
    // frontend, exactly what a remote edge node would run.
    let nodes: Vec<Mutex<Option<NetServer>>> = match (0..args.nodes)
        .map(|_| {
            NetServer::start(("127.0.0.1", 0), NetConfig::default(), service_config, &scenario.instance)
                .map(|n| Mutex::new(Some(n)))
        })
        .collect()
    {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: failed to start backend node: {e}");
            return ExitCode::FAILURE;
        }
    };
    let node_addrs: Vec<_> = nodes
        .iter()
        .map(|n| n.lock().expect("node lock").as_ref().expect("node live").local_addr())
        .collect();

    // Fast-failover tuning so a mid-run kill resolves well inside the
    // verdict timeout; the defaults are sized for real WAN probes.
    let gateway_config = GatewayConfig {
        health_interval: Duration::from_millis(50),
        health_timeout: Duration::from_millis(250),
        eject_after: 2,
        probation: Duration::from_millis(500),
        default_deadline: Duration::from_secs(2),
        verdict_grace: Duration::from_secs(2),
        hedge: HedgeConfig { enabled: args.hedge, min_samples: 32 },
        plan_cache: args.gw_cache.then(PlanCacheConfig::default),
        ..GatewayConfig::default()
    };
    let gateway = match Gateway::start(&node_addrs, gateway_config) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: failed to start gateway: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The gateway is itself a Backend, so it mounts behind the same
    // reactor-or-threads frontend switch the single-node server uses.
    let net_config = NetConfig {
        max_connections: NetConfig::default().max_connections.max(args.clients + 8),
        ..NetConfig::default()
    };
    let frontend = match AnyServer::start_with_backend(args.frontend, ("127.0.0.1", 0), net_config, gateway) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start gateway frontend: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = frontend.local_addr();
    println!(
        "gateway_loadgen: frontend {}, {} node(s) x {} shard(s), {} requests, {} client(s) x window {}, seed {}{} — gateway {addr}",
        args.frontend,
        args.nodes,
        args.shards,
        args.requests,
        args.clients,
        args.window,
        args.seed,
        if args.kill_node_at > 0 {
            format!(", killing node {} at {} offered", args.kill_node, args.kill_node_at)
        } else {
            String::new()
        },
    );
    if args.join_node_at > 0 {
        println!("discovery: hot-joining one node at {} offered", args.join_node_at);
    }
    if args.leave_node_at > 0 {
        println!("discovery: node {} leaves gracefully at {} offered", args.leave_node, args.leave_node_at);
    }
    if args.shape_skew > 0.0 {
        println!(
            "shapes: Zipf skew {:.2} over a pool of {} deterministic shapes (gateway cache {})",
            args.shape_skew,
            args.shape_pool,
            if args.gw_cache { "on" } else { "off" },
        );
    }

    let started = Instant::now();
    let per_client = args.requests / args.clients as u64;
    let remainder = args.requests % args.clients as u64;
    let (mut tally, mut departed) = (Tally::default(), 0u64);
    let offered = AtomicU64::new(0);
    let mut node_reports = Vec::new();
    let mut joined_server = None;
    std::thread::scope(|scope| {
        // The killer waits for the offered threshold, then shuts the
        // victim down with tickets still in flight — the gateway must
        // eject it and finish those tickets on survivors.
        let killer = (args.kill_node_at > 0).then(|| {
            let (offered, victim) = (&offered, &nodes[args.kill_node]);
            scope.spawn(move || {
                while offered.load(Ordering::Relaxed) < args.kill_node_at {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let server = victim.lock().expect("node lock").take().expect("victim live");
                let at = offered.load(Ordering::Relaxed);
                let report = server.shutdown();
                println!("killed node {} at {} offered", args.kill_node, at);
                report
            })
        });
        // The joiner starts a brand-new backend node mid-run and
        // announces it to the gateway *over the wire* — the v3 Announce
        // frame travels through the TCP frontend, the node sits out its
        // probation, and only then starts absorbing traffic.
        let joiner = (args.join_node_at > 0).then(|| {
            let (offered, scenario) = (&offered, &scenario);
            scope.spawn(move || {
                while offered.load(Ordering::Relaxed) < args.join_node_at {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let server = NetServer::start(
                    ("127.0.0.1", 0),
                    NetConfig::default(),
                    service_config,
                    &scenario.instance,
                )
                .expect("start hot-join node");
                let at = offered.load(Ordering::Relaxed);
                let ack = server.announce_to(addr).expect("announce over the wire");
                println!(
                    "joined node {} at {at} offered: {:?} ({} members known)",
                    server.local_addr(),
                    ack.decision,
                    ack.members.len()
                );
                server
            })
        });
        // The leaver sends a graceful Leave frame for one seed node but
        // keeps its server running: the gateway must stop routing new
        // work to it while in-flight tickets fail over or finish.
        let leaver = (args.leave_node_at > 0).then(|| {
            let offered = &offered;
            let leave_addr = node_addrs[args.leave_node];
            scope.spawn(move || {
                while offered.load(Ordering::Relaxed) < args.leave_node_at {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let at = offered.load(Ordering::Relaxed);
                let client = Client::connect(addr, ClientConfig::default()).expect("leave client");
                let resp = client
                    .leave(&leave_addr.to_string(), u64::MAX, Duration::from_secs(5))
                    .expect("leave rpc");
                client.close();
                println!("node {} left at {at} offered: {:?}", args.leave_node, resp.decision);
            })
        });
        let handles: Vec<_> = (0..args.clients)
            .map(|idx| {
                let share = per_client + u64::from((idx as u64) < remainder);
                let (args, protos, offered) = (&args, &protos, &offered);
                let shapes = shapes.as_ref();
                scope.spawn(move || run_client(addr, idx, share, args, protos, shapes, offered))
            })
            .collect();
        for h in handles {
            let (t, d) = h.join().expect("client thread");
            tally.merge(t);
            departed += d;
        }
        if let Some(k) = killer {
            node_reports.push((args.kill_node, k.join().expect("killer thread"), true));
        }
        if let Some(l) = leaver {
            l.join().expect("leaver thread");
        }
        if let Some(j) = joiner {
            joined_server = Some(j.join().expect("joiner thread"));
        }
    });
    let wall = started.elapsed();

    // Frontend drain returns the gateway's ledger; then drain whatever
    // backend nodes are still alive.
    let report = frontend.shutdown();
    let m = &report.metrics;
    for (idx, node) in nodes.iter().enumerate() {
        if let Some(server) = node.lock().expect("node lock").take() {
            node_reports.push((idx, server.shutdown(), false));
        }
    }
    if let Some(server) = joined_server {
        node_reports.push((args.nodes, server.shutdown(), false));
    }
    node_reports.sort_by_key(|(idx, _, _)| *idx);
    let submit_rate = args.requests as f64 / wall.as_secs_f64().max(1e-9);

    println!("\n— run —");
    println!(
        "wall {:.3?}   offered {}   {:.0} submits/s   departed {departed}",
        wall, args.requests, submit_rate
    );
    println!(
        "outcomes: admitted {}  rejected {}  shed {}  expired {}  server-err {}  transport-err {}",
        tally.admitted, tally.rejected, tally.shed, tally.expired, tally.server_error, tally.transport_error
    );
    println!("\n— gateway (post-drain) —\n{m}");
    if let Some(pc) = &report.plan_cache {
        println!(
            "plan cache: hit rate {:.1}% ({} affinity hits, {} negative, {} misses, {} invalidated)",
            100.0 * pc.hit_rate(),
            pc.hits,
            pc.negative_hits,
            pc.misses,
            pc.invalidations,
        );
    }
    for (idx, r, killed) in &node_reports {
        let nm = &r.metrics;
        println!(
            "node {idx}{}: submitted {}  admitted {}  departed {}  conserved {}",
            if *killed { " (killed)" } else { "" },
            nm.submitted,
            nm.admitted,
            nm.departed,
            nm.is_conserved(),
        );
    }
    let telemetry = offloadnn_telemetry::global().snapshot();
    println!("\n— telemetry (gw.* / net.*) —\n{telemetry}");

    // End-to-end conservation: every offered request is accounted for
    // exactly once at the wire, the gateway ledger balances, and every
    // node — including a killed one — is locally conserved.
    let mut violations = Vec::new();
    if tally.outcomes() + tally.server_error + tally.transport_error != args.requests {
        violations.push(format!(
            "offered {} != outcomes {} + server-err {} + transport-err {}",
            args.requests,
            tally.outcomes(),
            tally.server_error,
            tally.transport_error
        ));
    }
    if !m.is_conserved() {
        violations.push(format!(
            "gateway conservation violated: submitted {} != resolved {}",
            m.submitted,
            m.resolved()
        ));
    }
    if tally.transport_error == 0 {
        for (name, wire, gateway) in [
            ("submitted", tally.outcomes(), m.submitted),
            ("admitted", tally.admitted, m.admitted),
            ("rejected", tally.rejected, m.rejected),
            ("shed", tally.shed, m.shed),
            ("expired", tally.expired, m.expired),
        ] {
            if wire != gateway {
                violations.push(format!("{name}: wire saw {wire}, gateway counted {gateway}"));
            }
        }
    }
    let mut node_admitted = 0u64;
    for (idx, r, _) in &node_reports {
        let nm = &r.metrics;
        node_admitted += nm.admitted;
        if !nm.is_conserved() {
            violations.push(format!(
                "node {idx} conservation violated: submitted {} != resolved {}",
                nm.submitted,
                nm.resolved()
            ));
        }
        if nm.departed > nm.admitted {
            violations
                .push(format!("node {idx} departed {} more than it admitted {}", nm.departed, nm.admitted));
        }
    }
    // A submit that reached a node right as it died may be admitted
    // there with the verdict lost in the close; the gateway retries it
    // elsewhere, so nodes can admit more — never fewer — than the
    // gateway acknowledged.
    if node_admitted < m.admitted {
        violations
            .push(format!("nodes admitted {node_admitted} in total, gateway acknowledged {}", m.admitted));
    }
    if violations.is_empty() {
        println!("\nconservation: OK");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("error: {v}");
        }
        ExitCode::FAILURE
    }
}

//! Federated peer gateways: the digest loop and the overflow-target
//! picker.
//!
//! A federated gateway ([`crate::FederationConfig`]) keeps one [`Peer`]
//! per configured peer gateway. A dedicated digest thread sweeps the
//! peer set every `digest_interval`, sending a protocol-v4 `PeerHello`
//! and recording the `PeerLoad` answer: healthy-node count, aggregate
//! remaining budget, solver-round p50 and the peer's membership epoch.
//! The digest is what makes overflow forwarding *informed* — when the
//! local cluster sheds, [`PeerSet::pick`] ranks the untried, live peers
//! by their advertised headroom and the forward goes to the best one,
//! not to a random neighbour.
//!
//! Peer liveness follows the same philosophy as node health
//! ([`crate::health`]) but is deliberately simpler: `eject_after`
//! consecutive missed digests marks a peer down (no forwards routed to
//! it), and a single successful digest brings it back. There is no
//! probation — a forward to a half-dead peer fails fast and falls back
//! to a local Shed, so the cost of optimism is bounded.
//!
//! Plan-cache coupling: entries minted while serving a peer's forwarded
//! overflow are scoped to that peer
//! ([`offloadnn_plancache::PlanCache::scoped_key`]). When a digest
//! reports a new peer epoch — the peer's cluster resharded or changed
//! membership — or the peer goes down, the scope epoch is bumped, so a
//! forwarded shape never replays a stale negative entry minted against
//! the peer's old cluster state.

use crate::gateway::GatewayInner;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use offloadnn_net::{Client, ClientConfig, NetError, PeerDigest};
use offloadnn_telemetry::{event, Severity};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// One federated peer gateway.
pub(crate) struct Peer {
    /// The peer gateway's frontend address.
    pub addr: SocketAddr,
    /// The address as it appears in `Forward` tried-sets (string
    /// equality is the loop-prevention rule).
    pub addr_string: String,
    /// Plan-cache scope for entries minted while serving this peer's
    /// overflow (hash of the address string).
    pub scope: u64,
    /// Lazily dialled shared client, dropped on failure so the next use
    /// re-dials (same pattern as [`crate::node::Node`]).
    client: Mutex<Option<Arc<Client>>>,
    /// Whether the peer currently answers digests. Starts `true`: a
    /// freshly configured peer is given the benefit of the doubt until
    /// `eject_after` digests have actually missed.
    healthy: AtomicBool,
    /// Consecutive missed digests.
    misses: AtomicU32,
    /// Last load digest the peer answered (`None` until the first).
    digest: Mutex<Option<PeerDigest>>,
}

impl Peer {
    pub(crate) fn new(addr: SocketAddr) -> Self {
        let addr_string = addr.to_string();
        let scope = crate::router::node_seed(&addr_string);
        Self {
            addr,
            addr_string,
            scope,
            client: Mutex::new(None),
            healthy: AtomicBool::new(true),
            misses: AtomicU32::new(0),
            digest: Mutex::new(None),
        }
    }

    /// The shared client for this peer, dialling on first use.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::connect`] failures; the slot stays empty.
    pub(crate) fn client(&self, config: &ClientConfig) -> Result<Arc<Client>, NetError> {
        let mut slot = self.client.lock().expect("peer client lock poisoned");
        if let Some(c) = slot.as_ref() {
            return Ok(Arc::clone(c));
        }
        let c = Arc::new(Client::connect(self.addr, *config)?);
        *slot = Some(Arc::clone(&c));
        Ok(c)
    }

    /// Forgets the cached client; the next use re-dials.
    pub(crate) fn drop_client(&self) {
        *self.client.lock().expect("peer client lock poisoned") = None;
    }

    pub(crate) fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// The last answered digest, if any.
    pub(crate) fn digest(&self) -> Option<PeerDigest> {
        *self.digest.lock().expect("peer digest lock poisoned")
    }

    /// Records a successful digest; returns the previous digest so the
    /// caller can detect an epoch change.
    fn note_digest(&self, d: PeerDigest) -> Option<PeerDigest> {
        self.misses.store(0, Ordering::Relaxed);
        self.healthy.store(true, Ordering::Release);
        self.digest.lock().expect("peer digest lock poisoned").replace(d)
    }

    /// Records a missed digest; returns `true` on the healthy→down
    /// transition (the caller logs and invalidates once).
    fn note_miss(&self, eject_after: u32) -> bool {
        let missed = self.misses.fetch_add(1, Ordering::Relaxed) + 1;
        if missed >= eject_after {
            return self.healthy.swap(false, Ordering::AcqRel);
        }
        false
    }

    /// Records a failed forward (send error or mid-flight crash): the
    /// connection is suspect, and the peer is pessimistically marked
    /// down until the next successful digest — a data-path failure is
    /// stronger evidence than a missed digest, exactly the node rule.
    pub(crate) fn note_forward_failed(&self) {
        self.drop_client();
        self.healthy.store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for Peer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Peer")
            .field("addr", &self.addr)
            .field("healthy", &self.is_healthy())
            .finish_non_exhaustive()
    }
}

/// The federated peer pool plus this gateway's own federation identity.
pub(crate) struct PeerSet {
    pub(crate) peers: Vec<Peer>,
    /// This gateway's identity in `Forward` origin/tried fields.
    pub(crate) identity: String,
}

impl PeerSet {
    pub(crate) fn new(addrs: &[SocketAddr], identity: String) -> Self {
        Self { peers: addrs.iter().copied().map(Peer::new).collect(), identity }
    }

    /// Peers currently answering digests.
    pub(crate) fn healthy_count(&self) -> usize {
        self.peers.iter().filter(|p| p.is_healthy()).count()
    }

    /// The least-loaded live peer not yet in `tried`, or `None` when
    /// every eligible peer has been tried (or none is live). Load
    /// ranking uses the advertised digest —
    /// `remaining_budget / (1 + round_ms_p50)`, zero headroom excluded —
    /// and a live peer that has not answered a digest yet ranks last
    /// (score 0) rather than being skipped, so forwarding still works in
    /// the window before the first digest sweep completes.
    pub(crate) fn pick(&self, tried: &[String]) -> Option<(usize, &Peer)> {
        let mut best: Option<(usize, &Peer, f64)> = None;
        for (index, peer) in self.peers.iter().enumerate() {
            if !peer.is_healthy() || tried.contains(&peer.addr_string) {
                continue;
            }
            let score = match peer.digest() {
                Some(d) => {
                    if d.healthy_nodes == 0 || d.remaining_budget <= 0.0 {
                        continue; // advertises no capacity: a forward there is a guaranteed shed
                    }
                    d.remaining_budget / (1.0 + d.round_ms_p50)
                }
                None => 0.0,
            };
            if best.is_none_or(|(_, _, b)| score > b) {
                best = Some((index, peer, score));
            }
        }
        best.map(|(index, peer, _)| (index, peer))
    }
}

/// One digest sweep across the peer set.
fn sweep(inner: &GatewayInner, peers: &PeerSet) {
    let Some(fed) = &inner.config.federation else { return };
    for peer in &peers.peers {
        let answer = peer
            .client(&inner.config.client)
            .and_then(|c| c.peer_hello(&peers.identity, inner.incarnation, fed.digest_timeout));
        match answer {
            Ok(load) => {
                let digest = PeerDigest {
                    healthy_nodes: load.healthy_nodes,
                    remaining_budget: load.remaining_budget,
                    round_ms_p50: load.round_ms_p50,
                    epoch: load.epoch,
                };
                let prev = peer.note_digest(digest);
                // A changed epoch means the peer's cluster state moved
                // (reshard, membership churn): plans minted while serving
                // its overflow are stale.
                if prev.is_some_and(|p| p.epoch != load.epoch) {
                    inner.bump_peer_scope(peer.scope);
                    event!(Severity::Info, "gw.federation", "peer {} epoch -> {}", peer.addr, load.epoch);
                }
            }
            Err(err) => {
                peer.drop_client();
                if peer.note_miss(fed.eject_after) {
                    inner.bump_peer_scope(peer.scope);
                    event!(Severity::Warn, "gw.federation", "peer {} down: {err}", peer.addr);
                }
            }
        }
    }
    inner.publish_peer_gauges();
}

/// The digest thread body: sweep, publish the gauge, sleep until the
/// next tick or shutdown (the sender side of `shutdown_rx` is dropped by
/// [`crate::Gateway`] drain).
pub(crate) fn digest_loop(inner: &Arc<GatewayInner>, shutdown_rx: &Receiver<()>) {
    let Some(peers) = inner.peers.as_ref() else { return };
    let Some(fed) = &inner.config.federation else { return };
    loop {
        sweep(inner, peers);
        match shutdown_rx.recv_timeout(fed.digest_interval) {
            Err(RecvTimeoutError::Timeout) => {}
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(budget: f64, round_ms: f64) -> PeerDigest {
        PeerDigest { healthy_nodes: 2, remaining_budget: budget, round_ms_p50: round_ms, epoch: 0 }
    }

    fn set(n: usize) -> PeerSet {
        let addrs: Vec<SocketAddr> =
            (0..n).map(|i| format!("127.0.0.1:{}", 7100 + i).parse().unwrap()).collect();
        PeerSet::new(&addrs, "127.0.0.1:7000".into())
    }

    #[test]
    fn pick_prefers_the_most_headroom_per_round_millisecond() {
        let peers = set(3);
        peers.peers[0].note_digest(digest(1.0, 0.0));
        peers.peers[1].note_digest(digest(4.0, 1.0)); // score 2.0 — best
        peers.peers[2].note_digest(digest(1.5, 0.0));
        let (index, _) = peers.pick(&[]).expect("a peer must be picked");
        assert_eq!(index, 1);
    }

    #[test]
    fn pick_skips_tried_down_and_capacity_less_peers() {
        let peers = set(3);
        peers.peers[0].note_digest(digest(8.0, 0.0));
        peers.peers[1].note_digest(digest(4.0, 0.0));
        peers.peers[2].note_digest(PeerDigest {
            healthy_nodes: 0,
            remaining_budget: 9.0,
            round_ms_p50: 0.0,
            epoch: 0,
        });
        // Best is tried, the zero-node peer is ineligible: second-best wins.
        let tried = vec![peers.peers[0].addr_string.clone()];
        assert_eq!(peers.pick(&tried).expect("peer 1 eligible").0, 1);
        // Down peers are skipped even when untried.
        peers.peers[1].note_forward_failed();
        assert!(peers.pick(&tried).is_none(), "no eligible peer remains");
    }

    #[test]
    fn an_undigested_peer_is_a_last_resort_not_a_hole() {
        let peers = set(2);
        // No digest answered yet anywhere: forwarding must still find a
        // target (score 0 beats nothing).
        assert!(peers.pick(&[]).is_some());
        peers.peers[1].note_digest(digest(0.5, 0.0));
        assert_eq!(peers.pick(&[]).expect("digested peer wins").0, 1);
    }

    #[test]
    fn misses_accumulate_and_one_digest_restores() {
        let peers = set(1);
        let p = &peers.peers[0];
        assert!(!p.note_miss(3));
        assert!(!p.note_miss(3));
        assert!(p.note_miss(3), "third miss reports the transition");
        assert!(!p.is_healthy());
        assert!(!p.note_miss(3), "already down: no re-report");
        assert!(p.note_digest(digest(1.0, 0.0)).is_none());
        assert!(p.is_healthy());
    }
}

//! Per-backend-node state: lazy client, lifecycle state machine,
//! incarnation stamp, routing weight and the RTT histogram feeding the
//! hedger.
//!
//! The lifecycle state machine per node (states are the wire-level
//! [`MemberState`]):
//!
//! ```text
//!                    announce           probe succeeds
//!        (unknown) ──────────▶ Probing ───────────────▶ Healthy
//!                                 ▲                    │      ▲
//!   announce with a               │     K missed probes or    │
//!   higher incarnation            │     a data-path failure   │ probe succeeds
//!   (a restarted node             │                    ▼      │ after probation
//!   re-proves itself)             │                  Ejected ─┘
//!                                 │                    │
//!                                 │        leave       ▼
//!                                 └─────────────── Departed  (terminal but for
//!                                                             a *newer* incarnation)
//! ```
//!
//! Only `Healthy` is routable. `Probing` is the join-through-probation
//! gate: an announced node receives zero traffic until a health probe
//! succeeds. `Departed` is terminal under the node's current
//! incarnation — every transition out of it demands a strictly newer
//! one, so a delayed or replayed announce can never resurrect a node
//! that left. The data path may eject a node directly (a dropped
//! connection is stronger evidence than a missed probe); only the
//! health monitor promotes or readmits.

use crate::router::Candidate;
use offloadnn_net::{Client, ClientConfig, MemberState, NetError};
use offloadnn_telemetry::Histogram;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn state_tag(state: MemberState) -> u8 {
    match state {
        MemberState::Probing => 0,
        MemberState::Healthy => 1,
        MemberState::Ejected => 2,
        MemberState::Departed => 3,
    }
}

fn state_from_tag(tag: u8) -> MemberState {
    match tag {
        0 => MemberState::Probing,
        1 => MemberState::Healthy,
        2 => MemberState::Ejected,
        _ => MemberState::Departed,
    }
}

/// One backend serve node in the gateway's pool.
pub(crate) struct Node {
    /// Where the node's `offloadnn-net` frontend listens.
    pub addr: SocketAddr,
    /// Stable rendezvous seed (hash of the address string).
    pub seed: u64,
    /// Lazily dialled shared client; dropped on transport failure so the
    /// next use re-dials.
    client: Mutex<Option<Arc<Client>>>,
    /// Lifecycle state ([`MemberState`] tag). Transitions go through
    /// compare-exchange so a concurrent departure always sticks:
    /// promote/readmit/eject can never overwrite `Departed`.
    state: AtomicU8,
    /// The incarnation stamp under which the node is registered.
    /// Mutated only under the membership pool's write lock.
    incarnation: AtomicU64,
    /// Consecutive missed health probes while healthy.
    misses: AtomicU32,
    /// Consecutive failed probes while *unhealthy* (probing/ejected);
    /// drives the probe backoff.
    probe_failures: AtomicU32,
    /// Monitor sweeps left to skip before the next probe attempt.
    probe_skips: AtomicU32,
    /// Earliest instant a probe may readmit the node after an ejection.
    probation_until: Mutex<Option<Instant>>,
    /// Routing weight as f64 bits (headroom from the last health probe).
    weight_bits: AtomicU64,
    /// Gateway-observed submit→verdict round trips against this node;
    /// its p99 drives the deadline-aware hedger.
    pub rtt: Histogram,
}

impl Node {
    fn with_state(addr: SocketAddr, state: MemberState, incarnation: u64) -> Self {
        Self {
            addr,
            seed: crate::router::node_seed(&addr.to_string()),
            client: Mutex::new(None),
            state: AtomicU8::new(state_tag(state)),
            incarnation: AtomicU64::new(incarnation),
            misses: AtomicU32::new(0),
            probe_failures: AtomicU32::new(0),
            probe_skips: AtomicU32::new(0),
            probation_until: Mutex::new(None),
            weight_bits: AtomicU64::new(1.0f64.to_bits()),
            rtt: Histogram::new(),
        }
    }

    /// A seed node named at gateway start: trusted immediately
    /// (incarnation 0, `Healthy`), exactly the pre-discovery behaviour.
    pub(crate) fn new(addr: SocketAddr) -> Self {
        Self::with_state(addr, MemberState::Healthy, 0)
    }

    /// A node that announced itself at runtime: starts `Probing` and is
    /// invisible to routing until a health probe succeeds.
    pub(crate) fn probing(addr: SocketAddr, incarnation: u64) -> Self {
        Self::with_state(addr, MemberState::Probing, incarnation)
    }

    /// The shared client for this node, dialling on first use (or after
    /// a [`Node::drop_client`]).
    ///
    /// # Errors
    ///
    /// Propagates [`Client::connect`] failures; the slot stays empty.
    pub(crate) fn client(&self, config: &ClientConfig) -> Result<Arc<Client>, NetError> {
        let mut slot = self.client.lock().expect("node client lock poisoned");
        if let Some(c) = slot.as_ref() {
            return Ok(Arc::clone(c));
        }
        let c = Arc::new(Client::connect(self.addr, *config)?);
        *slot = Some(Arc::clone(&c));
        Ok(c)
    }

    /// Forgets the cached client (its connection is suspect); the next
    /// [`Node::client`] call re-dials.
    pub(crate) fn drop_client(&self) {
        *self.client.lock().expect("node client lock poisoned") = None;
    }

    pub(crate) fn state(&self) -> MemberState {
        state_from_tag(self.state.load(Ordering::Acquire))
    }

    /// Routable = `Healthy`, nothing else.
    pub(crate) fn is_healthy(&self) -> bool {
        self.state.load(Ordering::Acquire) == state_tag(MemberState::Healthy)
    }

    pub(crate) fn incarnation(&self) -> u64 {
        self.incarnation.load(Ordering::Acquire)
    }

    fn transition(&self, from: MemberState, to: MemberState) -> bool {
        self.state
            .compare_exchange(state_tag(from), state_tag(to), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    pub(crate) fn weight(&self) -> f64 {
        f64::from_bits(self.weight_bits.load(Ordering::Relaxed))
    }

    pub(crate) fn set_weight(&self, w: f64) {
        self.weight_bits.store(w.to_bits(), Ordering::Relaxed);
    }

    /// This node as a routing candidate at pool position `index`.
    pub(crate) fn candidate(&self, index: usize) -> Candidate {
        Candidate { index, seed: self.seed, weight: self.weight() }
    }

    /// Records a successful health probe: clears the miss streak and any
    /// probe backoff.
    pub(crate) fn note_probe_ok(&self) {
        self.misses.store(0, Ordering::Relaxed);
        self.probe_failures.store(0, Ordering::Relaxed);
        self.probe_skips.store(0, Ordering::Relaxed);
    }

    /// Records a missed health probe; returns `true` if this miss
    /// crossed the ejection threshold (the caller ejects).
    pub(crate) fn note_probe_miss(&self, eject_after: u32) -> bool {
        self.misses.fetch_add(1, Ordering::Relaxed) + 1 >= eject_after
    }

    /// Records a failed probe of an *unhealthy* (probing or ejected)
    /// node and schedules the backoff: after `backoff_after` consecutive
    /// failures the probe stride doubles per failure, capped at
    /// `backoff_limit` sweeps, so a long-dead node costs a vanishing
    /// fraction of the monitor's budget instead of a full-cadence probe
    /// (and its connect timeout) every sweep.
    pub(crate) fn note_probe_failed(&self, backoff_after: u32, backoff_limit: u32) {
        let failures = self.probe_failures.fetch_add(1, Ordering::Relaxed) + 1;
        let stride = if failures <= backoff_after {
            1
        } else {
            let doublings = (failures - backoff_after).min(16);
            (1u32 << doublings).min(backoff_limit.max(1))
        };
        self.probe_skips.store(stride - 1, Ordering::Relaxed);
    }

    /// Whether this sweep should probe the node, consuming one skip
    /// otherwise. Healthy nodes are always due (backoff only applies to
    /// probing/ejected ones).
    pub(crate) fn probe_due(&self) -> bool {
        let skips = self.probe_skips.load(Ordering::Relaxed);
        if skips == 0 {
            return true;
        }
        self.probe_skips.store(skips - 1, Ordering::Relaxed);
        false
    }

    /// Consecutive failed probes while unhealthy (tests, diagnostics).
    #[cfg(test)]
    pub(crate) fn probe_failures(&self) -> u32 {
        self.probe_failures.load(Ordering::Relaxed)
    }

    /// Ejects the node: unroutable until a probe readmits it after the
    /// probation window. Only a healthy node can be ejected (a departed
    /// one stays departed); returns `true` only on the healthy→ejected
    /// transition so callers can log/count it once.
    pub(crate) fn eject(&self, probation: Duration) -> bool {
        let flipped = self.transition(MemberState::Healthy, MemberState::Ejected);
        if flipped {
            *self.probation_until.lock().expect("probation lock poisoned") = Some(Instant::now() + probation);
            self.drop_client();
        }
        flipped
    }

    /// Whether the probation window has elapsed (only meaningful while
    /// ejected).
    pub(crate) fn probation_over(&self) -> bool {
        match *self.probation_until.lock().expect("probation lock poisoned") {
            Some(until) => Instant::now() >= until,
            None => true,
        }
    }

    /// Restarts the probation window after a failed readmission probe.
    pub(crate) fn extend_probation(&self, probation: Duration) {
        *self.probation_until.lock().expect("probation lock poisoned") = Some(Instant::now() + probation);
    }

    /// Readmits the node after a successful post-probation probe;
    /// `false` if it was not ejected (e.g. departed meanwhile).
    pub(crate) fn readmit(&self) -> bool {
        if !self.transition(MemberState::Ejected, MemberState::Healthy) {
            return false;
        }
        self.note_probe_ok();
        *self.probation_until.lock().expect("probation lock poisoned") = None;
        true
    }

    /// Promotes a probing node whose first health probe succeeded;
    /// `false` if it was not probing (e.g. departed meanwhile).
    pub(crate) fn promote(&self) -> bool {
        if !self.transition(MemberState::Probing, MemberState::Healthy) {
            return false;
        }
        self.note_probe_ok();
        true
    }

    /// Marks the node departed. Unconditional from every live state —
    /// the membership engine has already judged the incarnation — and
    /// idempotent; returns `true` on the first transition.
    pub(crate) fn depart(&self) -> bool {
        let prev = self.state.swap(state_tag(MemberState::Departed), Ordering::AcqRel);
        let flipped = prev != state_tag(MemberState::Departed);
        if flipped {
            self.drop_client();
        }
        flipped
    }

    /// Re-registers the node under a strictly newer incarnation (the
    /// membership engine verified the ordering under its write lock): it
    /// re-enters probation-gated `Probing` with a clean probe history,
    /// whatever state — including `Departed` — it was in.
    pub(crate) fn restart(&self, incarnation: u64) {
        self.incarnation.store(incarnation, Ordering::Release);
        self.misses.store(0, Ordering::Relaxed);
        self.probe_failures.store(0, Ordering::Relaxed);
        self.probe_skips.store(0, Ordering::Relaxed);
        *self.probation_until.lock().expect("probation lock poisoned") = None;
        self.set_weight(1.0);
        self.drop_client();
        self.state.store(state_tag(MemberState::Probing), Ordering::Release);
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("addr", &self.addr)
            .field("state", &self.state())
            .field("incarnation", &self.incarnation())
            .field("weight", &self.weight())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new("127.0.0.1:9999".parse().unwrap())
    }

    #[test]
    fn misses_accumulate_to_the_threshold() {
        let n = node();
        assert!(!n.note_probe_miss(3));
        assert!(!n.note_probe_miss(3));
        assert!(n.note_probe_miss(3));
        n.note_probe_ok();
        assert!(!n.note_probe_miss(3));
    }

    #[test]
    fn eject_is_reported_once_and_probation_gates_readmission() {
        let n = node();
        assert!(n.is_healthy());
        assert!(n.eject(Duration::from_millis(20)));
        assert!(!n.eject(Duration::from_millis(20)), "second eject must not re-report");
        assert!(!n.is_healthy());
        assert_eq!(n.state(), MemberState::Ejected);
        assert!(!n.probation_over());
        std::thread::sleep(Duration::from_millis(25));
        assert!(n.probation_over());
        assert!(n.readmit());
        assert!(n.is_healthy());
    }

    #[test]
    fn weight_round_trips_through_bits() {
        let n = node();
        n.set_weight(0.125);
        assert_eq!(n.weight(), 0.125);
        assert_eq!(n.candidate(2).weight, 0.125);
        assert_eq!(n.candidate(2).index, 2);
    }

    #[test]
    fn a_probing_node_is_not_routable_until_promoted() {
        let n = Node::probing("127.0.0.1:9998".parse().unwrap(), 7);
        assert_eq!(n.state(), MemberState::Probing);
        assert!(!n.is_healthy());
        assert_eq!(n.incarnation(), 7);
        assert!(n.promote());
        assert!(n.is_healthy());
        assert!(!n.promote(), "promote is a one-shot transition");
    }

    #[test]
    fn departed_is_terminal_for_every_monitor_transition() {
        let n = node();
        assert!(n.depart());
        assert!(!n.depart(), "second depart must not re-report");
        assert_eq!(n.state(), MemberState::Departed);
        assert!(!n.eject(Duration::from_millis(5)), "a departed node cannot be ejected");
        assert!(!n.readmit(), "a departed node cannot be readmitted");
        assert!(!n.promote(), "a departed node cannot be promoted");
        assert_eq!(n.state(), MemberState::Departed);
        // Only a restart under a newer incarnation revives it — into
        // probation, not straight to routable.
        n.restart(9);
        assert_eq!(n.state(), MemberState::Probing);
        assert_eq!(n.incarnation(), 9);
        assert!(!n.is_healthy());
    }

    #[test]
    fn probe_backoff_doubles_after_the_grace_failures_and_caps() {
        let n = Node::probing("127.0.0.1:9998".parse().unwrap(), 1);
        // Within the grace window every sweep probes.
        for _ in 0..3 {
            assert!(n.probe_due());
            n.note_probe_failed(3, 8);
        }
        // Fourth failure: stride 2 ⇒ skip one sweep.
        assert!(n.probe_due());
        n.note_probe_failed(3, 8);
        assert!(!n.probe_due());
        assert!(n.probe_due());
        // Fifth failure: stride 4 ⇒ skip three.
        n.note_probe_failed(3, 8);
        for _ in 0..3 {
            assert!(!n.probe_due());
        }
        assert!(n.probe_due());
        // Far past the window the stride is capped at the limit.
        for _ in 0..40 {
            n.note_probe_failed(3, 8);
        }
        let mut skips = 0;
        while !n.probe_due() {
            skips += 1;
        }
        assert_eq!(skips, 7, "stride caps at the limit (8 sweeps ⇒ 7 skips)");
        // A success clears the backoff entirely.
        n.note_probe_ok();
        assert_eq!(n.probe_failures(), 0);
        assert!(n.probe_due());
    }
}

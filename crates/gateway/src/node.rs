//! Per-backend-node state: lazy client, health/ejection state machine,
//! routing weight and the RTT histogram feeding the hedger.
//!
//! The failover state machine per node:
//!
//! ```text
//!            K consecutive missed probes,
//!            or a transport failure on the data path
//!   Healthy ──────────────────────────────────────▶ Ejected
//!      ▲                                               │
//!      │  probe succeeds after the probation window    │
//!      └───────────────────────────────────────────────┘
//!              (a failed probe restarts probation)
//! ```
//!
//! While `Ejected`, the node is invisible to routing. The data path may
//! eject a node directly (a dropped connection is stronger evidence than
//! a missed probe); only the health monitor readmits.

use crate::router::Candidate;
use offloadnn_net::{Client, ClientConfig, NetError};
use offloadnn_telemetry::Histogram;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One backend serve node in the gateway's pool.
pub(crate) struct Node {
    /// Where the node's `offloadnn-net` frontend listens.
    pub addr: SocketAddr,
    /// Stable rendezvous seed (hash of the address string).
    pub seed: u64,
    /// Lazily dialled shared client; dropped on transport failure so the
    /// next use re-dials.
    client: Mutex<Option<Arc<Client>>>,
    /// Whether the node is currently routable.
    healthy: AtomicBool,
    /// Consecutive missed health probes while healthy.
    misses: AtomicU32,
    /// Earliest instant a probe may readmit the node after an ejection.
    probation_until: Mutex<Option<Instant>>,
    /// Routing weight as f64 bits (headroom from the last health probe).
    weight_bits: AtomicU64,
    /// Gateway-observed submit→verdict round trips against this node;
    /// its p99 drives the deadline-aware hedger.
    pub rtt: Histogram,
}

impl Node {
    pub(crate) fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            seed: crate::router::node_seed(&addr.to_string()),
            client: Mutex::new(None),
            healthy: AtomicBool::new(true),
            misses: AtomicU32::new(0),
            probation_until: Mutex::new(None),
            weight_bits: AtomicU64::new(1.0f64.to_bits()),
            rtt: Histogram::new(),
        }
    }

    /// The shared client for this node, dialling on first use (or after
    /// a [`Node::drop_client`]).
    ///
    /// # Errors
    ///
    /// Propagates [`Client::connect`] failures; the slot stays empty.
    pub(crate) fn client(&self, config: &ClientConfig) -> Result<Arc<Client>, NetError> {
        let mut slot = self.client.lock().expect("node client lock poisoned");
        if let Some(c) = slot.as_ref() {
            return Ok(Arc::clone(c));
        }
        let c = Arc::new(Client::connect(self.addr, *config)?);
        *slot = Some(Arc::clone(&c));
        Ok(c)
    }

    /// Forgets the cached client (its connection is suspect); the next
    /// [`Node::client`] call re-dials.
    pub(crate) fn drop_client(&self) {
        *self.client.lock().expect("node client lock poisoned") = None;
    }

    pub(crate) fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    pub(crate) fn weight(&self) -> f64 {
        f64::from_bits(self.weight_bits.load(Ordering::Relaxed))
    }

    pub(crate) fn set_weight(&self, w: f64) {
        self.weight_bits.store(w.to_bits(), Ordering::Relaxed);
    }

    /// This node as a routing candidate at pool position `index`.
    pub(crate) fn candidate(&self, index: usize) -> Candidate {
        Candidate { index, seed: self.seed, weight: self.weight() }
    }

    /// Records a successful health probe: clears the miss streak.
    pub(crate) fn note_probe_ok(&self) {
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Records a missed health probe; returns `true` if this miss
    /// crossed the ejection threshold (the caller ejects).
    pub(crate) fn note_probe_miss(&self, eject_after: u32) -> bool {
        self.misses.fetch_add(1, Ordering::Relaxed) + 1 >= eject_after
    }

    /// Ejects the node: unroutable until a probe readmits it after the
    /// probation window. Idempotent; returns `true` only on the
    /// healthy→ejected transition so callers can log/count it once.
    pub(crate) fn eject(&self, probation: Duration) -> bool {
        let flipped = self.healthy.swap(false, Ordering::AcqRel);
        *self.probation_until.lock().expect("probation lock poisoned") = Some(Instant::now() + probation);
        self.drop_client();
        flipped
    }

    /// Whether the probation window has elapsed (only meaningful while
    /// ejected).
    pub(crate) fn probation_over(&self) -> bool {
        match *self.probation_until.lock().expect("probation lock poisoned") {
            Some(until) => Instant::now() >= until,
            None => true,
        }
    }

    /// Restarts the probation window after a failed readmission probe.
    pub(crate) fn extend_probation(&self, probation: Duration) {
        *self.probation_until.lock().expect("probation lock poisoned") = Some(Instant::now() + probation);
    }

    /// Readmits the node after a successful post-probation probe.
    pub(crate) fn readmit(&self) {
        self.misses.store(0, Ordering::Relaxed);
        *self.probation_until.lock().expect("probation lock poisoned") = None;
        self.healthy.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("addr", &self.addr)
            .field("healthy", &self.is_healthy())
            .field("weight", &self.weight())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new("127.0.0.1:9999".parse().unwrap())
    }

    #[test]
    fn misses_accumulate_to_the_threshold() {
        let n = node();
        assert!(!n.note_probe_miss(3));
        assert!(!n.note_probe_miss(3));
        assert!(n.note_probe_miss(3));
        n.note_probe_ok();
        assert!(!n.note_probe_miss(3));
    }

    #[test]
    fn eject_is_reported_once_and_probation_gates_readmission() {
        let n = node();
        assert!(n.is_healthy());
        assert!(n.eject(Duration::from_millis(20)));
        assert!(!n.eject(Duration::from_millis(20)), "second eject must not re-report");
        assert!(!n.is_healthy());
        assert!(!n.probation_over());
        std::thread::sleep(Duration::from_millis(25));
        assert!(n.probation_over());
        n.readmit();
        assert!(n.is_healthy());
    }

    #[test]
    fn weight_round_trips_through_bits() {
        let n = node();
        n.set_weight(0.125);
        assert_eq!(n.weight(), 0.125);
        assert_eq!(n.candidate(2).weight, 0.125);
        assert_eq!(n.candidate(2).index, 2);
    }
}

//! Deterministic two-cluster federation harness: a seeded offered trace
//! drives gateway A, whose single backend node is deliberately starved
//! (one shard, a tiny ingress queue, a slowed solver) so the cluster
//! sheds under any seed. A federates with cluster B — a healthy gateway
//! over fresh nodes behind its own TCP frontend — so every would-be
//! `Shed` forwards over a protocol-v4 `Forward` frame instead, carrying
//! the remaining deadline budget and the already-tried set. Mid-run,
//! cluster B's frontend is killed with forwards still in flight; the
//! harness must lose **zero verdicts**:
//!
//! * every submit resolves exactly one outcome (counted one by one);
//! * overflow actually reached B while it lived
//!   (`forward_stats().forwards > 0` and at least one forwarded ticket
//!   was admitted there — a forward *win*);
//! * after the kill, forwards fail fast, the peer is ejected
//!   (`healthy_peers() == 0`) and everything still resolves locally;
//! * gateway A's ledger conserves; cluster B's gateway ledger (from its
//!   mid-run drain) conserves; every backend node on both clusters
//!   conserves independently;
//! * the offered trace regenerates bit-identically from the seed.
//!
//! Seed control: `FEDERATION_SEED=<u64>` overrides the default seed; the
//! seed in use is printed on stderr, so any failure is replayable with
//! `FEDERATION_SEED=<printed> cargo test -p offloadnn-gateway --test
//! federation_harness`.

use offloadnn_core::instance::PathOption;
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::{Task, TaskId};
use offloadnn_gateway::{FederationConfig, Gateway, GatewayConfig};
use offloadnn_net::{AnyServer, Frontend, NetConfig, NetServer};
use offloadnn_serve::{Admitter, ChaosConfig, PendingVerdict, ServiceConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::net::TcpListener;
use std::time::Duration;

fn seed() -> u64 {
    match std::env::var("FEDERATION_SEED") {
        Ok(s) => s.trim().parse().expect("FEDERATION_SEED must parse as u64"),
        Err(_) => 0xFEDE_7A7E,
    }
}

/// One offered submit, regenerable from the seed.
#[derive(Debug, Clone, PartialEq)]
struct Offered {
    task: Task,
    options: Vec<PathOption>,
}

/// The deterministic offered trace: `n` submits drawn from the
/// reference scenario, each with a unique task id (so forwarding and
/// departure routing stay unambiguous at every layer).
fn offered_trace(seed: u64, n: usize) -> Vec<Offered> {
    let scenario = small_scenario(5);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let pick = rng.random_range(0..scenario.instance.tasks.len());
            let mut task = scenario.instance.tasks[pick].clone();
            task.id = TaskId(u32::try_from(i).expect("trace fits in u32"));
            Offered { task, options: scenario.instance.options[pick].clone() }
        })
        .collect()
}

fn fast_config() -> GatewayConfig {
    GatewayConfig {
        health_interval: Duration::from_millis(50),
        health_timeout: Duration::from_millis(250),
        eject_after: 2,
        probation: Duration::from_millis(500),
        default_deadline: Duration::from_secs(2),
        verdict_grace: Duration::from_secs(2),
        ..GatewayConfig::default()
    }
}

/// A fast digest cadence to match the fast health probes: the peer is
/// scored within the first few submits and ejected within ~100ms of
/// dying.
fn fast_federation(identity: &str, peer: std::net::SocketAddr) -> FederationConfig {
    FederationConfig {
        digest_interval: Duration::from_millis(50),
        digest_timeout: Duration::from_millis(250),
        eject_after: 2,
        ..FederationConfig::new(identity, vec![peer])
    }
}

/// Cluster A's deliberately starved node: one shard, an ingress queue
/// of 8 and a 2ms solver floor. With a pipeline window of 48 and no
/// departures the queue is full almost immediately, so the local pool
/// sheds — and therefore forwards — under *any* seed.
fn starved_service() -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        queue_capacity: 8,
        chaos: ChaosConfig { slow_solver: Duration::from_millis(2), ..ChaosConfig::default() },
        ..ServiceConfig::default()
    }
}

#[test]
fn overflow_forwards_to_the_peer_and_survives_its_death() {
    const TOTAL: usize = 400;
    const KILL_B_AT: usize = 250;
    const WINDOW: usize = 48;

    let seed = seed();
    eprintln!("federation_harness seed = {seed} (override with FEDERATION_SEED=<u64>)");
    let trace = offered_trace(seed, TOTAL);
    let scenario = small_scenario(5);

    // Cluster B: a healthy two-node gateway behind its own TCP frontend
    // — what a neighbouring edge site looks like on the wire. It has no
    // federation config of its own, so (with A's hop budget of 1) the
    // overflow can never bounce.
    let b_nodes: Vec<NetServer> = (0..2)
        .map(|_| {
            NetServer::start(
                ("127.0.0.1", 0),
                NetConfig::default(),
                ServiceConfig::default(),
                &scenario.instance,
            )
            .expect("start peer backend node")
        })
        .collect();
    let b_addrs: Vec<_> = b_nodes.iter().map(NetServer::local_addr).collect();
    let b_gateway = Gateway::start(&b_addrs, fast_config()).expect("start peer gateway");
    let b_frontend =
        AnyServer::start_with_backend(Frontend::default(), ("127.0.0.1", 0), NetConfig::default(), b_gateway)
            .expect("start peer frontend");
    let b_addr = b_frontend.local_addr();
    let mut b_frontend = Some(b_frontend);

    // Cluster A: one starved node, federated with B.
    let a_node =
        NetServer::start(("127.0.0.1", 0), NetConfig::default(), starved_service(), &scenario.instance)
            .expect("start starved node");
    let mut a_config = fast_config();
    a_config.federation = Some(fast_federation("cluster-a", b_addr));
    let gateway = Gateway::start(&[a_node.local_addr()], a_config).expect("start gateway A");

    let admitter: &dyn Admitter = &gateway;
    let mut window: VecDeque<PendingVerdict> = VecDeque::new();
    let mut verdicts: u64 = 0;
    let mut b_report = None;
    let mut forwards_at_kill = 0;

    // No departures, ever: admitted capacity accumulates on the starved
    // node, so cluster A keeps shedding — and forwarding — for the
    // whole run.
    let settle = |pending: PendingVerdict, verdicts: &mut u64| {
        pending.wait().expect("every ticket resolves exactly one verdict");
        *verdicts += 1;
    };

    for (i, offered) in trace.iter().enumerate() {
        if i == KILL_B_AT {
            // Kill the peer's whole frontend with forwards still in
            // flight. In-flight forwards fail over to the local Shed
            // fallback; the digest thread ejects the peer.
            forwards_at_kill = gateway.forward_stats().forwards;
            b_report = Some(b_frontend.take().expect("peer frontend live").shutdown());
        }
        let pending = admitter
            .submit(offered.task.clone(), offered.options.clone(), None)
            .expect("gateway accepts submits until drained");
        window.push_back(pending);
        if window.len() >= WINDOW {
            settle(window.pop_front().unwrap(), &mut verdicts);
        }
    }
    for pending in window.drain(..) {
        settle(pending, &mut verdicts);
    }

    // Zero loss: one verdict per offered submit, no more, no fewer.
    assert_eq!(verdicts, TOTAL as u64);

    // Overflow genuinely reached the peer while it lived: forwards
    // happened before the kill, and at least one forwarded ticket was
    // admitted over there (a forward win).
    let stats = gateway.forward_stats();
    assert!(forwards_at_kill > 0, "no overflow forwarded before the kill");
    assert!(stats.forwards >= forwards_at_kill);
    assert!(stats.forward_wins > 0, "the peer never admitted a forwarded ticket: {stats:?}");

    // The dead peer must be ejected and stay out.
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(gateway.healthy_peers(), 0, "dead peer still scored healthy");

    // Gateway A's ledger conserves over the whole run — forwarded,
    // locally resolved and post-kill traffic alike.
    let report = gateway.drain();
    assert!(report.metrics.is_conserved(), "gateway A ledger leaked: {:?}", report.metrics);
    assert_eq!(report.metrics.submitted, TOTAL as u64);
    assert_eq!(report.metrics.resolved(), TOTAL as u64);

    // Cluster B conserves too: its gateway ledger (drained mid-run, with
    // forwards in flight) and each of its backend nodes independently.
    let b_report = b_report.expect("peer frontend was shut down");
    assert!(b_report.metrics.is_conserved(), "peer gateway leaked: {:?}", b_report.metrics);
    assert!(b_report.metrics.submitted > 0, "peer gateway saw no forwarded traffic");
    for node in b_nodes {
        let r = node.shutdown();
        assert!(r.metrics.is_conserved(), "peer node leaked: {:?}", r.metrics);
    }
    let r = a_node.shutdown();
    assert!(r.metrics.is_conserved(), "starved node leaked: {:?}", r.metrics);

    // The offered trace is a pure function of the seed.
    assert_eq!(trace, offered_trace(seed, TOTAL), "trace not reproducible from seed");
}

/// Federating with a peer that never answers must cost nothing but the
/// failed dials: every submit still resolves locally, the phantom peer
/// is never scored healthy, and the ledger conserves.
#[test]
fn an_unreachable_peer_never_breaks_local_resolution() {
    const TOTAL: usize = 120;

    let seed = seed().wrapping_add(1);
    let trace = offered_trace(seed, TOTAL);
    let scenario = small_scenario(5);

    // Reserve a port, then close the listener: a valid address nobody
    // answers on.
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve a port");
    let ghost = listener.local_addr().expect("listener addr");
    drop(listener);

    let node =
        NetServer::start(("127.0.0.1", 0), NetConfig::default(), starved_service(), &scenario.instance)
            .expect("start starved node");
    let mut config = fast_config();
    config.federation = Some(fast_federation("cluster-lonely", ghost));
    let gateway = Gateway::start(&[node.local_addr()], config).expect("start gateway");

    let admitter: &dyn Admitter = &gateway;
    let mut window: VecDeque<PendingVerdict> = VecDeque::new();
    let mut verdicts = 0u64;
    for offered in &trace {
        let pending = admitter
            .submit(offered.task.clone(), offered.options.clone(), None)
            .expect("gateway accepts submits");
        window.push_back(pending);
        if window.len() >= 32 {
            window.pop_front().unwrap().wait().expect("ticket resolves locally");
            verdicts += 1;
        }
    }
    for pending in window.drain(..) {
        pending.wait().expect("ticket resolves locally");
        verdicts += 1;
    }
    assert_eq!(verdicts, TOTAL as u64);
    assert_eq!(gateway.healthy_peers(), 0, "a peer nobody answers on was scored healthy");

    let report = gateway.drain();
    assert!(report.metrics.is_conserved(), "gateway ledger leaked: {:?}", report.metrics);
    assert_eq!(report.metrics.resolved(), TOTAL as u64);
    let r = node.shutdown();
    assert!(r.metrics.is_conserved());
}

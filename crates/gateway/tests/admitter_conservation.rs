//! One workload, every tier: the same seeded mixed workload (Zipf shape
//! pool, pipelined window, periodic departures and metrics probes) runs
//! through an in-process [`Service`], a loopback TCP [`Client`] and a
//! two-node [`Gateway`] — each held only as `Box<dyn Admitter + '_>`,
//! driven by the one shared loop body
//! ([`offloadnn_serve::loadgen::args::drive`]).
//!
//! Per tier, the run must conserve end to end: every offered submit
//! resolves exactly one verdict (no errors on a healthy loopback), the
//! tier's own ledger balances, and the driver-side tally matches the
//! ledger class by class. Verdict *mixes* legitimately differ across
//! tiers (capacities differ — one service vs. a two-node cluster), so
//! only the arithmetic is compared, never the mix.

use offloadnn_core::instance::PathOption;
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::Task;
use offloadnn_gateway::{Gateway, GatewayConfig};
use offloadnn_net::{AnyServer, Client, ClientConfig, Frontend, NetConfig, NetServer};
use offloadnn_serve::loadgen::args::{self, DriveConfig, DriveReport, VERDICT_TIMEOUT};
use offloadnn_serve::metrics::MetricsSnapshot;
use offloadnn_serve::{Admitter, Service, ServiceConfig, ShapePool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const REQUESTS: u64 = 400;
const SEED: u64 = 0xAD31_77E5;

fn drive_config() -> DriveConfig {
    DriveConfig {
        requests: REQUESTS,
        driver: 0,
        seed: SEED,
        window: 32,
        max_active: 16,
        deadline: None,
        verdict_timeout: VERDICT_TIMEOUT,
        snapshot_every: 100,
    }
}

fn workload() -> (Vec<(Task, Vec<PathOption>)>, ShapePool) {
    let scenario = small_scenario(5);
    let protos: Vec<_> =
        scenario.instance.tasks.iter().cloned().zip(scenario.instance.options.iter().cloned()).collect();
    let shapes = ShapePool::new(32, 1.1, protos.len(), SEED);
    (protos, shapes)
}

/// Runs the identical workload through one boxed tier and returns what
/// the driver saw.
fn drive_tier(tier: Box<dyn Admitter + '_>, expected_tier: &'static str) -> DriveReport {
    assert_eq!(tier.tier(), expected_tier);
    let (protos, shapes) = workload();
    let offered = AtomicU64::new(0);
    let report = args::drive(&*tier, &drive_config(), &protos, Some(&shapes), &offered);
    assert_eq!(offered.load(Ordering::Relaxed), REQUESTS, "{expected_tier}: offered count drifted");
    report
}

/// The per-tier conservation contract: no errors on a healthy loopback,
/// one verdict per offered submit, and a driver tally that matches the
/// tier's own ledger class by class.
fn assert_conserved(tier: &'static str, report: &DriveReport, ledger: &MetricsSnapshot) {
    let tally = &report.tally;
    assert_eq!(tally.errors(), 0, "{tier}: errors on a healthy loopback: {tally:?}");
    assert_eq!(tally.outcomes(), REQUESTS, "{tier}: verdicts lost: {tally:?}");
    assert!(ledger.is_conserved(), "{tier}: ledger leaked: {ledger:?}");
    assert_eq!(ledger.submitted, REQUESTS, "{tier}: ledger missed submits");
    for (class, wire, counted) in [
        ("admitted", tally.admitted, ledger.admitted),
        ("rejected", tally.rejected, ledger.rejected),
        ("shed", tally.shed, ledger.shed),
        ("expired", tally.expired, ledger.expired),
    ] {
        assert_eq!(wire, counted, "{tier}: {class} wire saw {wire}, ledger counted {counted}");
    }
    assert!(ledger.departed <= ledger.admitted, "{tier}: departed more than admitted");
}

#[test]
fn the_same_workload_conserves_through_every_tier() {
    // Tier 1: the in-process service.
    let scenario = small_scenario(5);
    let service = Service::start(ServiceConfig { shards: 2, ..ServiceConfig::default() }, &scenario.instance)
        .expect("start service");
    let report = drive_tier(Box::new(&service), "service");
    let drain = service.drain();
    assert_conserved("service", &report, &drain.metrics);

    // Tier 2: the same service stack behind a loopback TCP frontend,
    // driven through a wire client.
    let server = AnyServer::start(
        Frontend::default(),
        ("127.0.0.1", 0),
        NetConfig::default(),
        ServiceConfig { shards: 2, ..ServiceConfig::default() },
        &scenario.instance,
    )
    .expect("start loopback server");
    let client = Client::connect(server.local_addr(), ClientConfig::default()).expect("connect");
    let report = drive_tier(Box::new(&client), "net");
    client.close();
    let drain = server.shutdown();
    assert_conserved("net", &report, &drain.metrics);

    // Tier 3: a two-node cluster behind a gateway.
    let nodes: Vec<NetServer> = (0..2)
        .map(|_| {
            NetServer::start(
                ("127.0.0.1", 0),
                NetConfig::default(),
                ServiceConfig { shards: 2, ..ServiceConfig::default() },
                &scenario.instance,
            )
            .expect("start backend node")
        })
        .collect();
    let addrs: Vec<_> = nodes.iter().map(NetServer::local_addr).collect();
    let gateway = Gateway::start(
        &addrs,
        GatewayConfig {
            health_interval: Duration::from_millis(50),
            health_timeout: Duration::from_millis(250),
            default_deadline: Duration::from_secs(2),
            verdict_grace: Duration::from_secs(2),
            ..GatewayConfig::default()
        },
    )
    .expect("start gateway");
    let report = drive_tier(Box::new(&gateway), "gateway");
    let drain = gateway.drain();
    assert_conserved("gateway", &report, &drain.metrics);
    for node in nodes {
        let r = node.shutdown();
        assert!(r.metrics.is_conserved(), "backend node leaked: {:?}", r.metrics);
    }
}

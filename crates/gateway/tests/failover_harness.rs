//! Deterministic 3-node failover harness: a seeded offered trace drives
//! a gateway over three loopback serve nodes, one node is killed
//! mid-stream, and the run must lose **zero verdicts**:
//!
//! * every submit resolves exactly one outcome (the harness counts
//!   them one by one);
//! * the gateway's own ledger conserves
//!   (`submitted == admitted + rejected + shed + expired`);
//! * every node's drain report conserves independently;
//! * every admission the caller saw is departed and the cluster ends
//!   with no leaked in-flight capacity;
//! * the offered trace regenerates bit-identically from the seed.
//!
//! Seed control: `GATEWAY_SEED=<u64>` overrides the default seed; the
//! seed in use is printed on stderr, so any failure is replayable with
//! `GATEWAY_SEED=<printed> cargo test -p offloadnn-gateway --test
//! failover_harness`.

use offloadnn_core::instance::PathOption;
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::{Task, TaskId};
use offloadnn_gateway::{Gateway, GatewayConfig};
use offloadnn_net::{NetConfig, NetServer};
use offloadnn_serve::{Admitter, Outcome, PendingVerdict, ServiceConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::time::Duration;

fn seed() -> u64 {
    match std::env::var("GATEWAY_SEED") {
        Ok(s) => s.trim().parse().expect("GATEWAY_SEED must parse as u64"),
        Err(_) => 0xC1A5_7E12,
    }
}

/// One offered submit, regenerable from the seed.
#[derive(Debug, Clone, PartialEq)]
struct Offered {
    task: Task,
    options: Vec<PathOption>,
}

/// The deterministic offered trace: `n` submits drawn from the
/// reference scenario, each with a unique task id (so departure routing
/// is unambiguous at every layer).
fn offered_trace(seed: u64, n: usize) -> Vec<Offered> {
    let scenario = small_scenario(5);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let pick = rng.random_range(0..scenario.instance.tasks.len());
            let mut task = scenario.instance.tasks[pick].clone();
            task.id = TaskId(u32::try_from(i).expect("trace fits in u32"));
            Offered { task, options: scenario.instance.options[pick].clone() }
        })
        .collect()
}

fn fast_config() -> GatewayConfig {
    GatewayConfig {
        health_interval: Duration::from_millis(50),
        health_timeout: Duration::from_millis(250),
        eject_after: 2,
        probation: Duration::from_millis(500),
        default_deadline: Duration::from_secs(2),
        verdict_grace: Duration::from_secs(2),
        ..GatewayConfig::default()
    }
}

#[test]
fn killing_one_node_mid_stream_loses_zero_verdicts() {
    const TOTAL: usize = 600;
    const KILL_AT: usize = 250;
    const WINDOW: usize = 48;
    const VICTIM: usize = 1;

    let seed = seed();
    eprintln!("failover_harness seed = {seed} (override with GATEWAY_SEED=<u64>)");
    let trace = offered_trace(seed, TOTAL);

    let scenario = small_scenario(5);
    let mut nodes: Vec<Option<NetServer>> = (0..3)
        .map(|_| {
            Some(
                NetServer::start(
                    ("127.0.0.1", 0),
                    NetConfig::default(),
                    ServiceConfig::default(),
                    &scenario.instance,
                )
                .expect("start backend node"),
            )
        })
        .collect();
    let addrs: Vec<_> = nodes.iter().map(|n| n.as_ref().unwrap().local_addr()).collect();
    let gateway = Gateway::start(&addrs, fast_config()).expect("start gateway");

    // The driver loop speaks the unified admission API only; the
    // concrete Gateway is needed solely for the management plane
    // (membership, drain).
    let admitter: &dyn Admitter = &gateway;
    let mut window: VecDeque<PendingVerdict> = VecDeque::new();
    let mut verdicts: u64 = 0;
    let mut admitted: u64 = 0;
    let mut victim_report = None;

    let settle = |pending: PendingVerdict, verdicts: &mut u64, admitted: &mut u64| {
        let task = pending.task();
        let outcome = pending.wait().expect("every ticket resolves exactly one verdict");
        *verdicts += 1;
        if let Outcome::Admitted { .. } = outcome {
            *admitted += 1;
            admitter.depart(task);
        }
    };

    for (i, offered) in trace.iter().enumerate() {
        if i == KILL_AT {
            // Kill one node mid-stream, with tickets still in flight in
            // the window. Its drain flushes the verdicts it owes;
            // everything offered afterwards must fail over to the two
            // survivors.
            victim_report = Some(nodes[VICTIM].take().unwrap().shutdown());
        }
        let pending = admitter
            .submit(offered.task.clone(), offered.options.clone(), None)
            .expect("gateway accepts submits until drained");
        window.push_back(pending);
        if window.len() >= WINDOW {
            settle(window.pop_front().unwrap(), &mut verdicts, &mut admitted);
        }
    }
    for entry in window.drain(..) {
        settle(entry, &mut verdicts, &mut admitted);
    }

    // Zero loss: one verdict per offered submit, no more, no fewer.
    assert_eq!(verdicts, TOTAL as u64);

    // The victim must be ejected and stay out (it never comes back).
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(gateway.healthy_nodes(), 2, "victim not ejected");

    // The gateway's ledger conserves and matches the harness counts.
    let report = gateway.drain();
    assert!(report.metrics.is_conserved(), "gateway ledger leaked: {:?}", report.metrics);
    assert_eq!(report.metrics.submitted, TOTAL as u64);
    assert_eq!(report.metrics.resolved(), TOTAL as u64);
    assert_eq!(report.metrics.admitted, admitted);
    // Every admission was departed except those whose admitting node
    // was already dead when the departure came back.
    assert!(report.metrics.departed <= admitted);

    // Each node conserves independently — the victim included.
    let victim = victim_report.expect("victim was shut down");
    assert!(victim.metrics.is_conserved(), "victim leaked: {:?}", victim.metrics);
    assert!(victim.metrics.departed <= victim.metrics.admitted);
    let mut node_admitted = victim.metrics.admitted;
    for node in nodes.into_iter().flatten() {
        let r = node.shutdown();
        assert!(r.metrics.is_conserved(), "survivor leaked: {:?}", r.metrics);
        // Survivors saw every departure the gateway forwarded: no
        // leaked in-flight capacity on a live node.
        assert_eq!(r.metrics.departed, r.metrics.admitted, "survivor leaked admissions");
        node_admitted += r.metrics.admitted;
    }
    // Every admission the gateway relayed exists on some node. Backend
    // admissions may exceed the gateway's count: a submit that reached
    // the victim right as it died is admitted there, its verdict lost
    // with the connection, and the ticket retried on a survivor — the
    // orphan stays on the (conserved) dead node only.
    assert!(node_admitted >= admitted, "nodes admitted {node_admitted} < gateway relayed {admitted}");

    // The offered trace is a pure function of the seed.
    assert_eq!(trace, offered_trace(seed, TOTAL), "trace not reproducible from seed");
}

/// With no failures, the routing spread honours rendezvous hashing: all
/// three nodes see traffic, and the run conserves end to end.
#[test]
fn three_node_cluster_spreads_and_conserves() {
    const TOTAL: usize = 300;

    let seed = seed().wrapping_add(1);
    let trace = offered_trace(seed, TOTAL);
    let scenario = small_scenario(5);
    let nodes: Vec<NetServer> = (0..3)
        .map(|_| {
            NetServer::start(
                ("127.0.0.1", 0),
                NetConfig::default(),
                ServiceConfig::default(),
                &scenario.instance,
            )
            .expect("start backend node")
        })
        .collect();
    let addrs: Vec<_> = nodes.iter().map(|n| n.local_addr()).collect();
    let gateway = Gateway::start(&addrs, fast_config()).expect("start gateway");

    let admitter: &dyn Admitter = &gateway;
    let mut verdicts = 0u64;
    let mut window: VecDeque<PendingVerdict> = VecDeque::new();
    let mut settle = |pending: PendingVerdict| {
        let task = pending.task();
        let outcome = pending.wait().expect("ticket resolves");
        verdicts += 1;
        if matches!(outcome, Outcome::Admitted { .. }) {
            admitter.depart(task);
        }
    };
    for offered in &trace {
        let pending = admitter
            .submit(offered.task.clone(), offered.options.clone(), None)
            .expect("gateway accepts submits");
        window.push_back(pending);
        if window.len() >= 32 {
            settle(window.pop_front().unwrap());
        }
    }
    for pending in window.drain(..) {
        settle(pending);
    }
    assert_eq!(verdicts, TOTAL as u64);

    let report = gateway.drain();
    assert!(report.metrics.is_conserved());
    assert_eq!(report.metrics.resolved(), TOTAL as u64);

    let mut with_traffic = 0;
    for node in nodes {
        let r = node.shutdown();
        assert!(r.metrics.is_conserved());
        if r.metrics.submitted > 0 {
            with_traffic += 1;
        }
    }
    assert_eq!(with_traffic, 3, "rendezvous routing left a node idle over {TOTAL} submits");
}

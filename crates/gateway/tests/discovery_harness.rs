//! Deterministic membership-churn harness: a seeded offered trace drives
//! a gateway over a *dynamic* loopback cluster while the pool churns
//! under it — hot joins, duplicate and stale announces, graceful leaves,
//! a crash-leave (socket kill, no Leave frame) and a join during the
//! resulting failover — and the run must lose **zero verdicts**:
//!
//! * every submit resolves exactly one outcome (the harness counts
//!   them one by one);
//! * the gateway's own ledger conserves
//!   (`submitted == admitted + rejected + shed + expired`);
//! * every node's drain report conserves independently — the crashed
//!   node and the graceful leavers included;
//! * a node that announced an address nobody answers on stays `Probing`
//!   (asserted every iteration while its address is unbound) and
//!   receives zero traffic until its server exists and a probe passes;
//! * a departed node is never resurrected by a replayed announce;
//! * the offered trace regenerates bit-identically from the seed.
//!
//! Seed control: `DISCOVERY_SEED=<u64>` overrides the default seed; the
//! seed in use is printed on stderr, so any failure is replayable with
//! `DISCOVERY_SEED=<printed> cargo test -p offloadnn-gateway --test
//! discovery_harness`.

use offloadnn_core::instance::PathOption;
use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::{Task, TaskId};
use offloadnn_gateway::{Gateway, GatewayConfig};
use offloadnn_net::{MemberState, MembershipDecision, NetConfig, NetServer};
use offloadnn_serve::{Admitter, Outcome, PendingVerdict, ServiceConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

fn seed() -> u64 {
    match std::env::var("DISCOVERY_SEED") {
        Ok(s) => s.trim().parse().expect("DISCOVERY_SEED must parse as u64"),
        Err(_) => 0xD15C_04E2,
    }
}

/// One offered submit, regenerable from the seed.
#[derive(Debug, Clone, PartialEq)]
struct Offered {
    task: Task,
    options: Vec<PathOption>,
}

/// The deterministic offered trace: `n` submits drawn from the
/// reference scenario, each with a unique task id (so departure routing
/// is unambiguous at every layer).
fn offered_trace(seed: u64, n: usize) -> Vec<Offered> {
    let scenario = small_scenario(5);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let pick = rng.random_range(0..scenario.instance.tasks.len());
            let mut task = scenario.instance.tasks[pick].clone();
            task.id = TaskId(u32::try_from(i).expect("trace fits in u32"));
            Offered { task, options: scenario.instance.options[pick].clone() }
        })
        .collect()
}

fn fast_config() -> GatewayConfig {
    GatewayConfig {
        health_interval: Duration::from_millis(50),
        health_timeout: Duration::from_millis(250),
        eject_after: 2,
        probation: Duration::from_millis(500),
        default_deadline: Duration::from_secs(2),
        verdict_grace: Duration::from_secs(2),
        ..GatewayConfig::default()
    }
}

fn start_node(scenario: &offloadnn_core::scenario::Scenario) -> NetServer {
    NetServer::start(("127.0.0.1", 0), NetConfig::default(), ServiceConfig::default(), &scenario.instance)
        .expect("start backend node")
}

/// The state of `addr` in the gateway's current membership view.
fn member_state(gateway: &Gateway, addr: SocketAddr) -> MemberState {
    let want = addr.to_string();
    gateway
        .members()
        .into_iter()
        .find(|m| m.addr == want)
        .unwrap_or_else(|| panic!("{want} missing from membership view"))
        .state
}

/// Polls until `addr` is `Healthy` (the monitor probed and promoted or
/// readmitted it), failing the test after `within`.
fn wait_healthy(gateway: &Gateway, addr: SocketAddr, within: Duration) {
    let deadline = Instant::now() + within;
    while member_state(gateway, addr) != MemberState::Healthy {
        assert!(Instant::now() < deadline, "{addr} not promoted within {within:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn membership_churn_mid_stream_loses_zero_verdicts() {
    const TOTAL: usize = 600;
    const WINDOW: usize = 48;
    // The churn script, by offered-submit index.
    const JOIN2_AT: usize = 60;
    const LEAVE0_AT: usize = 180;
    const CRASH1_AT: usize = 330;
    const JOIN3_AT: usize = 345; // join *during* the crash failover
    const ANNOUNCE4_AT: usize = 420; // an address nobody answers on...
    const START4_AT: usize = 480; // ...until its server actually starts
    const LEAVE2_AT: usize = 520;

    let seed = seed();
    eprintln!("discovery_harness seed = {seed} (override with DISCOVERY_SEED=<u64>)");
    let trace = offered_trace(seed, TOTAL);
    let scenario = small_scenario(5);

    // Two seed nodes; three more join mid-run.
    let node0 = start_node(&scenario);
    let mut node1 = Some(start_node(&scenario));
    let addr0 = node0.local_addr();
    let addr1 = node1.as_ref().unwrap().local_addr();
    let gateway = Gateway::start(&[addr0, addr1], fast_config()).expect("start gateway");
    assert_eq!(gateway.pool_size(), 2);

    let mut node2 = None;
    let mut node3 = None;
    let mut node4 = None;
    let mut addr2 = None;
    let mut addr4 = None;
    let mut node1_report = None;

    // The driver loop speaks the unified admission API only; the
    // concrete Gateway stays in scope for the management plane
    // (announce/leave/membership views, drain).
    let admitter: &dyn Admitter = &gateway;
    let mut window: VecDeque<PendingVerdict> = VecDeque::new();
    let mut verdicts: u64 = 0;
    let mut admitted: u64 = 0;

    let settle = |pending: PendingVerdict, verdicts: &mut u64, admitted: &mut u64| {
        let task = pending.task();
        let outcome = pending.wait().expect("every ticket resolves exactly one verdict");
        *verdicts += 1;
        if let Outcome::Admitted { .. } = outcome {
            *admitted += 1;
            admitter.depart(task);
        }
    };

    for (i, offered) in trace.iter().enumerate() {
        match i {
            JOIN2_AT => {
                // Hot join: server first, then announce. The node enters
                // Probing and the monitor promotes it within a sweep.
                let server = start_node(&scenario);
                let a = server.local_addr();
                let ack = gateway.announce(a, 10);
                assert_eq!(ack.decision, MembershipDecision::Accepted);
                assert_eq!(gateway.pool_size(), 3);
                // A duplicate announce (same incarnation) is a no-op...
                assert_eq!(gateway.announce(a, 10).decision, MembershipDecision::Duplicate);
                // ...and a stale one (older incarnation) is ignored.
                assert_eq!(gateway.announce(a, 9).decision, MembershipDecision::Stale);
                assert_eq!(gateway.pool_size(), 3);
                node2 = Some(server);
                addr2 = Some(a);
            }
            LEAVE0_AT => {
                // Graceful leave of a seed node with tickets in flight:
                // the gateway abandons its attempts to the reaper and
                // fails them over with the remaining deadline budget.
                assert_eq!(gateway.leave(addr0, 0).decision, MembershipDecision::Accepted);
                assert_eq!(member_state(&gateway, addr0), MemberState::Departed);
                // A replayed announce from its departed incarnation must
                // not resurrect it.
                assert_eq!(gateway.announce(addr0, 0).decision, MembershipDecision::Stale);
                assert_eq!(member_state(&gateway, addr0), MemberState::Departed);
            }
            CRASH1_AT => {
                // Crash-leave: the socket dies, no Leave frame is ever
                // sent. The data path and monitor must eject it.
                node1_report = Some(node1.take().unwrap().shutdown());
            }
            JOIN3_AT => {
                // Join while the crash failover is still settling.
                let server = start_node(&scenario);
                assert_eq!(gateway.announce(server.local_addr(), 20).decision, MembershipDecision::Accepted);
                node3 = Some(server);
            }
            ANNOUNCE4_AT => {
                // Announce an address nobody answers on (bind to reserve
                // a port, then close the listener): the node must sit in
                // Probing — zero traffic — until a server exists there.
                let listener = TcpListener::bind("127.0.0.1:0").expect("reserve a port");
                let a = listener.local_addr().expect("listener addr");
                drop(listener);
                assert_eq!(gateway.announce(a, 30).decision, MembershipDecision::Accepted);
                addr4 = Some(a);
            }
            START4_AT => {
                // Now the server appears on the announced address; the
                // next due probe promotes the node.
                let a = addr4.expect("announced earlier");
                assert_eq!(member_state(&gateway, a), MemberState::Probing);
                node4 = Some(
                    NetServer::start(a, NetConfig::default(), ServiceConfig::default(), &scenario.instance)
                        .expect("bind the reserved addr"),
                );
                wait_healthy(&gateway, a, Duration::from_secs(5));
            }
            LEAVE2_AT => {
                // Graceful leave of a hot-joined node, under its join
                // incarnation.
                assert_eq!(
                    gateway.leave(addr2.expect("joined earlier"), 10).decision,
                    MembershipDecision::Accepted
                );
            }
            _ => {}
        }
        // Join-through-probation, structurally: while the announced
        // address is unbound no probe can succeed, so the node must
        // still be Probing at every single submit in between.
        if (ANNOUNCE4_AT..START4_AT).contains(&i) {
            assert_eq!(
                member_state(&gateway, addr4.expect("announced")),
                MemberState::Probing,
                "an unprobed node must stay gated at submit {i}"
            );
        }
        let pending = admitter
            .submit(offered.task.clone(), offered.options.clone(), None)
            .expect("gateway accepts submits until drained");
        window.push_back(pending);
        if window.len() >= WINDOW {
            settle(window.pop_front().unwrap(), &mut verdicts, &mut admitted);
        }
    }
    for entry in window.drain(..) {
        settle(entry, &mut verdicts, &mut admitted);
    }

    // Zero loss: one verdict per offered submit, no more, no fewer.
    assert_eq!(verdicts, TOTAL as u64);

    // The final membership view: two departed leavers, the crashed node
    // ejected (it never answered another probe), two healthy joiners.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(gateway.pool_size(), 5);
    assert_eq!(member_state(&gateway, addr0), MemberState::Departed);
    assert_eq!(member_state(&gateway, addr1), MemberState::Ejected, "crashed node must be ejected");
    assert_eq!(member_state(&gateway, addr2.unwrap()), MemberState::Departed);
    assert_eq!(gateway.healthy_nodes(), 2, "node3 and node4 carry the cluster");
    // 3 joins + 2 graceful leaves applied (duplicates/stale replays
    // rejected above never count).
    assert_eq!(gateway.membership_version(), 5);

    // The gateway's ledger conserves and matches the harness counts.
    let report = gateway.drain();
    assert!(report.metrics.is_conserved(), "gateway ledger leaked: {:?}", report.metrics);
    assert_eq!(report.metrics.submitted, TOTAL as u64);
    assert_eq!(report.metrics.resolved(), TOTAL as u64);
    assert_eq!(report.metrics.admitted, admitted);
    assert!(report.metrics.departed <= admitted);

    // Each node conserves independently: the crashed node...
    let crashed = node1_report.expect("node1 was crashed");
    assert!(crashed.metrics.is_conserved(), "crashed node leaked: {:?}", crashed.metrics);
    let mut node_admitted = crashed.metrics.admitted;
    // ...the graceful leavers (their servers outlived their membership;
    // the reaper departed any admission abandoned at leave time)...
    for leaver in [node0, node2.expect("node2 joined")] {
        let r = leaver.shutdown();
        assert!(r.metrics.is_conserved(), "leaver leaked: {:?}", r.metrics);
        assert!(r.metrics.departed <= r.metrics.admitted);
        node_admitted += r.metrics.admitted;
    }
    // ...and the survivors, which must hold no leaked in-flight
    // capacity at all.
    let survivors = [node3.expect("node3 joined"), node4.expect("node4 joined")];
    let mut survivor_submits = 0;
    for survivor in survivors {
        let r = survivor.shutdown();
        assert!(r.metrics.is_conserved(), "survivor leaked: {:?}", r.metrics);
        assert_eq!(r.metrics.departed, r.metrics.admitted, "survivor leaked admissions");
        survivor_submits += r.metrics.submitted;
        node_admitted += r.metrics.admitted;
    }
    assert!(survivor_submits > 0, "hot-joined nodes never received traffic");
    // Every admission the gateway relayed exists on some node (backends
    // may hold more: an orphan admitted on the crashed node right as it
    // died stays on that conserved ledger only).
    assert!(node_admitted >= admitted, "nodes admitted {node_admitted} < gateway relayed {admitted}");

    // The offered trace is a pure function of the seed.
    assert_eq!(trace, offered_trace(seed, TOTAL), "trace not reproducible from seed");
}

/// A membership-only sanity check on the same engine: announcing an
/// address that never answers leaves the pool's routable set untouched
/// while every submit still resolves.
#[test]
fn an_unreachable_joiner_never_receives_traffic() {
    const TOTAL: usize = 80;
    let seed = seed().wrapping_add(1);
    let trace = offered_trace(seed, TOTAL);
    let scenario = small_scenario(5);
    let node = start_node(&scenario);
    let gateway = Gateway::start(&[node.local_addr()], fast_config()).expect("start gateway");

    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve a port");
    let ghost = listener.local_addr().expect("listener addr");
    drop(listener);
    assert_eq!(gateway.announce(ghost, 1).decision, MembershipDecision::Accepted);

    let admitter: &dyn Admitter = &gateway;
    let mut window: VecDeque<PendingVerdict> = VecDeque::new();
    let mut verdicts = 0u64;
    let mut settle = |pending: PendingVerdict| {
        let task = pending.task();
        if let Ok(Outcome::Admitted { .. }) = pending.wait() {
            admitter.depart(task);
        }
        verdicts += 1;
    };
    for offered in &trace {
        assert_eq!(member_state(&gateway, ghost), MemberState::Probing);
        let pending = admitter
            .submit(offered.task.clone(), offered.options.clone(), None)
            .expect("gateway accepts submits");
        window.push_back(pending);
        if window.len() >= 16 {
            settle(window.pop_front().unwrap());
        }
    }
    for pending in window.drain(..) {
        settle(pending);
    }
    assert_eq!(verdicts, TOTAL as u64);
    assert_eq!(gateway.healthy_nodes(), 1);

    let report = gateway.drain();
    assert!(report.metrics.is_conserved());
    assert_eq!(report.metrics.resolved(), TOTAL as u64);
    let r = node.shutdown();
    assert!(r.metrics.is_conserved());
    assert_eq!(r.metrics.submitted, report.metrics.submitted, "the one real node saw every submit");
}

//! Property tests of the membership engine and its interplay with
//! weighted rendezvous routing:
//!
//! * a graceful leave removes exactly the victim from the candidate set
//!   and remaps *only* the keys the victim was winning;
//! * a hot join (once promoted) wins only its own keys — the moved
//!   fraction is bounded near the newcomer's fair share;
//! * an announce never changes routing before promotion
//!   (join-through-probation);
//! * incarnation ordering matches a reference model under arbitrary
//!   announce/leave interleavings — in particular a replayed stale
//!   announce never resurrects a departed node;
//! * the rendezvous ranking over the surviving candidates stays a
//!   permutation through arbitrary churn.

use offloadnn_gateway::router::{rank, route};
use offloadnn_gateway::{AnnounceOutcome, LeaveOutcome, Membership};
use offloadnn_net::MemberState;
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::SocketAddr;

fn addr(i: usize) -> SocketAddr {
    format!("10.1.0.{}:4000", i + 1).parse().expect("valid addr")
}

fn seeded(n: usize) -> Membership {
    let addrs: Vec<SocketAddr> = (0..n).map(addr).collect();
    Membership::new(&addrs)
}

/// One membership operation against a small address universe.
#[derive(Debug, Clone, Copy)]
enum Op {
    Announce { node: usize, inc: u64 },
    Leave { node: usize, inc: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..2, 0usize..5, 1u64..6).prop_map(|(kind, node, inc)| {
            if kind == 0 {
                Op::Announce { node, inc }
            } else {
                Op::Leave { node, inc }
            }
        }),
        1..40,
    )
}

/// Reference model of one address's record: highest applied incarnation
/// and whether it departed under it.
#[derive(Debug, Clone, Copy)]
struct Record {
    inc: u64,
    departed: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A graceful leave removes exactly the victim from the candidate
    /// set, and re-routing moves only the keys the victim was winning
    /// (each to its previous runner-up).
    #[test]
    fn leave_remaps_only_the_victims_keys(
        n in 2usize..10,
        victim_pick in 0usize..4096,
    ) {
        let m = seeded(n);
        let victim = victim_pick % n;
        let before = m.candidates();
        prop_assert_eq!(before.len(), n);
        prop_assert_eq!(m.leave(addr(victim), 0), LeaveOutcome::Departed);
        let after = m.candidates();
        prop_assert_eq!(after.len(), n - 1);
        prop_assert!(after.iter().all(|c| c.index != victim));
        for key in 0..512u64 {
            let was = route(key, &before).unwrap();
            let now = route(key, &after).unwrap();
            if was == victim {
                prop_assert_eq!(Some(now), rank(key, &before).get(1).copied());
            } else {
                prop_assert_eq!(now, was);
            }
        }
    }

    /// A join, once promoted, wins only its own keys: every moved key
    /// moved *to* the newcomer, and the moved fraction stays within a
    /// generous factor of the newcomer's fair share `1/(n+1)`.
    #[test]
    fn join_moves_only_the_keys_the_newcomer_wins(n in 2usize..10) {
        const KEYS: u64 = 4096;
        let before = seeded(n).candidates();
        // The pool after the joiner is promoted: same seeds plus one.
        let grown = seeded(n + 1);
        let after = grown.candidates();
        prop_assert_eq!(after.len(), n + 1);
        let newcomer = n;
        let mut moved = 0u64;
        for key in 0..KEYS {
            let was = route(key, &before).unwrap();
            let now = route(key, &after).unwrap();
            if now != was {
                prop_assert_eq!(now, newcomer, "a moved key must move to the newcomer");
                moved += 1;
            }
        }
        // Equal weights ⇒ expected share KEYS/(n+1); allow 4x for hash
        // variance (the property is "bounded disruption", not balance).
        let bound = 4 * KEYS / (n as u64 + 1);
        prop_assert!(moved <= bound, "join moved {moved} of {KEYS} keys (bound {bound})");
        prop_assert!(moved > 0, "the newcomer won nothing over {KEYS} keys");
    }

    /// Join-through-probation at the routing layer: an accepted announce
    /// changes the membership view but not the candidate set — routing
    /// is untouched until a health probe promotes the joiner.
    #[test]
    fn an_unpromoted_joiner_never_routes(
        n in 1usize..6,
        inc in 1u64..1000,
        keys in proptest::collection::vec(0u64..1_000_000, 32),
    ) {
        let m = seeded(n);
        let before = m.candidates();
        prop_assert_eq!(m.announce(addr(n), inc), AnnounceOutcome::Joined);
        prop_assert_eq!(m.len(), n + 1);
        let after = m.candidates();
        prop_assert_eq!(&after, &before, "probing joiner leaked into the candidates");
        for key in keys {
            prop_assert_eq!(route(key, &after), route(key, &before));
            prop_assert!(!rank(key, &after).contains(&n));
        }
    }

    /// The engine agrees with a reference incarnation model under any
    /// interleaving of announces and leaves; a stale replay never
    /// resurrects a departed node, and every pool mutation bumps the
    /// version exactly once.
    #[test]
    fn incarnation_ordering_matches_the_model(ops in arb_ops()) {
        let m = Membership::new(&[]);
        let mut model: HashMap<usize, Record> = HashMap::new();
        let mut expected_version = 0u64;
        for op in ops {
            match op {
                Op::Announce { node, inc } => {
                    let outcome = m.announce(addr(node), inc);
                    match model.get_mut(&node) {
                        None => {
                            prop_assert_eq!(outcome, AnnounceOutcome::Joined);
                            model.insert(node, Record { inc, departed: false });
                            expected_version += 1;
                        }
                        Some(rec) if inc > rec.inc => {
                            prop_assert_eq!(outcome, AnnounceOutcome::Restarted);
                            *rec = Record { inc, departed: false };
                            expected_version += 1;
                        }
                        Some(rec) if inc == rec.inc && !rec.departed => {
                            prop_assert_eq!(outcome, AnnounceOutcome::Duplicate);
                        }
                        Some(_) => prop_assert_eq!(outcome, AnnounceOutcome::Stale),
                    }
                }
                Op::Leave { node, inc } => {
                    let outcome = m.leave(addr(node), inc);
                    match model.get_mut(&node) {
                        None => prop_assert_eq!(outcome, LeaveOutcome::Unknown),
                        Some(rec) if inc >= rec.inc => {
                            prop_assert_eq!(outcome, LeaveOutcome::Departed);
                            if !rec.departed {
                                expected_version += 1;
                            }
                            rec.departed = true;
                        }
                        Some(_) => prop_assert_eq!(outcome, LeaveOutcome::Stale),
                    }
                }
            }
            // The engine's view matches the model after every step: a
            // node is Departed iff the model says so (and Probing
            // otherwise — nothing promotes in this test).
            for member in m.members() {
                let node = (0..5).find(|&i| addr(i).to_string() == member.addr).expect("known addr");
                let rec = model.get(&node).expect("member implies a model record");
                prop_assert_eq!(member.incarnation, rec.inc);
                let want = if rec.departed { MemberState::Departed } else { MemberState::Probing };
                prop_assert_eq!(member.state, want);
            }
            prop_assert_eq!(m.len(), model.len());
            prop_assert_eq!(m.version(), expected_version);
        }
    }

    /// Through arbitrary graceful leaves, the rendezvous ranking over
    /// the surviving candidates stays a permutation of exactly the
    /// survivors — failover can always walk it to the last node.
    #[test]
    fn rank_stays_a_permutation_under_churn(
        n in 2usize..10,
        leaves in proptest::collection::vec(0usize..10, 0..6),
        key in 0u64..1_000_000,
    ) {
        let m = seeded(n);
        for leaver in leaves {
            let _ = m.leave(addr(leaver % n), 0);
        }
        let candidates = m.candidates();
        let mut order = rank(key, &candidates);
        prop_assert_eq!(order.len(), candidates.len());
        order.sort_unstable();
        let mut expect: Vec<usize> = candidates.iter().map(|c| c.index).collect();
        expect.sort_unstable();
        prop_assert_eq!(order, expect);
    }
}

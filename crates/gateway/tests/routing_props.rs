//! Property tests of the gateway's weighted rendezvous router: routing
//! is a deterministic pure function, ejected nodes are never selected,
//! and ejecting a node remaps *only* the keys that node was winning
//! (the minimal-disruption property failover relies on).

use offloadnn_gateway::router::{node_seed, rank, route, Candidate};
use proptest::prelude::*;

/// A pool of distinct candidates from loopback-style addresses, with
/// weights spread over two orders of magnitude.
fn arb_pool() -> impl Strategy<Value = Vec<Candidate>> {
    (2usize..12, proptest::collection::vec(0.05f64..5.0, 12)).prop_map(|(n, weights)| {
        (0..n)
            .map(|i| Candidate {
                index: i,
                seed: node_seed(&format!("10.0.0.{}:4000", i + 1)),
                weight: weights[i],
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same key, same pool ⇒ same decision, independent of candidate
    /// order (selection is by score, not position).
    #[test]
    fn routing_is_deterministic_and_order_independent(
        pool in arb_pool(),
        key in 0u64..1_000_000,
    ) {
        let first = route(key, &pool);
        prop_assert_eq!(first, route(key, &pool));
        let mut reversed = pool.clone();
        reversed.reverse();
        prop_assert_eq!(first, route(key, &reversed));
        prop_assert_eq!(first, rank(key, &pool).first().copied());
    }

    /// Removing (ejecting) one node leaves every other key's decision
    /// unchanged; the ejected node's keys move to their runner-up.
    #[test]
    fn ejecting_a_node_remaps_only_its_own_keys(
        pool in arb_pool(),
        victim_pick in 0usize..4096,
    ) {
        let victim = victim_pick % pool.len();
        let survivors: Vec<Candidate> =
            pool.iter().copied().filter(|c| c.index != victim).collect();
        for key in 0..512u64 {
            let before = route(key, &pool).unwrap();
            let after = route(key, &survivors).unwrap();
            if before == victim {
                // The key the victim was winning moves to its previous
                // runner-up...
                prop_assert_eq!(Some(after), rank(key, &pool).get(1).copied());
            } else {
                // ...and every other key stays put.
                prop_assert_eq!(after, before);
            }
        }
    }

    /// An ejected node (absent from the candidate slice) is never
    /// routed to, whatever its weight was.
    #[test]
    fn never_routes_to_an_ejected_node(
        pool in arb_pool(),
        victim_pick in 0usize..4096,
        keys in proptest::collection::vec(0u64..1_000_000, 64),
    ) {
        let victim = victim_pick % pool.len();
        let survivors: Vec<Candidate> =
            pool.iter().copied().filter(|c| c.index != victim).collect();
        for key in keys {
            let winner = route(key, &survivors).unwrap();
            prop_assert_ne!(winner, victim);
            prop_assert!(!rank(key, &survivors).contains(&victim));
        }
    }

    /// The full ranking is a permutation of the pool: failover can walk
    /// it to the last survivor.
    #[test]
    fn rank_is_a_total_permutation(pool in arb_pool(), key in 0u64..1_000_000) {
        let mut order = rank(key, &pool);
        prop_assert_eq!(order.len(), pool.len());
        order.sort_unstable();
        let mut expect: Vec<usize> = pool.iter().map(|c| c.index).collect();
        expect.sort_unstable();
        prop_assert_eq!(order, expect);
    }
}

//! Live loopback discovery: the gateway mounted behind a real TCP
//! frontend, driven by a wire client, while the cluster changes shape
//! under it — a third node hot-joins by announcing itself *over the
//! wire* (the v3 Announce frame a remote edge node would send), sits
//! out its probation, then absorbs traffic; a seed node gracefully
//! departs via a wire Leave frame with verdicts still in flight; and
//! the joiner's own `shutdown()` deregisters it with an automatic
//! Leave before draining. Conservation-gated end to end: every submit
//! resolves exactly once at the wire, the gateway ledger balances, and
//! every node — leaver and joiner included — conserves independently.
//!
//! Runs once per frontend (threads and reactor), since the membership
//! RPCs ride the same dispatch as the data path.

use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_gateway::{Gateway, GatewayConfig};
use offloadnn_net::{
    AnyServer, Client, ClientConfig, Frontend, MemberState, MembershipDecision, NetConfig, NetServer,
};
use offloadnn_serve::{Outcome, ServiceConfig};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const REQS: usize = 240;
const WINDOW: usize = 24;
const JOIN_AT: usize = 40;
const LEAVE_AT: usize = 160;
const JOIN_INCARNATION: u64 = 7;
const RPC_TIMEOUT: Duration = Duration::from_secs(5);
const VERDICT_TIMEOUT: Duration = Duration::from_secs(30);

fn fast_config() -> GatewayConfig {
    GatewayConfig {
        health_interval: Duration::from_millis(50),
        health_timeout: Duration::from_millis(250),
        eject_after: 2,
        probation: Duration::from_millis(500),
        default_deadline: Duration::from_secs(2),
        verdict_grace: Duration::from_secs(2),
        ..GatewayConfig::default()
    }
}

fn start_node(scenario: &offloadnn_core::scenario::Scenario) -> NetServer {
    NetServer::start(("127.0.0.1", 0), NetConfig::default(), ServiceConfig::default(), &scenario.instance)
        .expect("start backend node")
}

/// The state of `addr` in the gateway's membership view, observed over
/// the wire: a duplicate announce (same incarnation) mutates nothing
/// and returns the full member list.
fn wire_member_state(client: &Client, probe: SocketAddr, probe_inc: u64, addr: SocketAddr) -> MemberState {
    let reply = client.announce(&probe.to_string(), probe_inc, RPC_TIMEOUT).expect("membership query");
    assert_eq!(reply.decision, MembershipDecision::Duplicate, "the query announce must be a no-op");
    let want = addr.to_string();
    reply
        .members
        .into_iter()
        .find(|m| m.addr == want)
        .unwrap_or_else(|| panic!("{want} missing from wire membership view"))
        .state
}

fn run(frontend: Frontend) {
    let scenario = small_scenario(4);
    let node0 = start_node(&scenario);
    let node1 = start_node(&scenario);
    let (addr0, addr1) = (node0.local_addr(), node1.local_addr());
    let gateway = Gateway::start(&[addr0, addr1], fast_config()).expect("start gateway");
    let server = AnyServer::start_with_backend(frontend, ("127.0.0.1", 0), NetConfig::default(), gateway)
        .expect("start gateway frontend");
    let gw_addr = server.local_addr();
    let client = Client::connect(gw_addr, ClientConfig::default()).expect("connect client");

    let mut joiner: Option<NetServer> = None;
    let mut window: VecDeque<offloadnn_net::PendingVerdict> = VecDeque::new();
    let (mut verdicts, mut admitted) = (0u64, 0u64);
    let mut settle = |p: offloadnn_net::PendingVerdict| {
        let task = p.task;
        let outcome = p.wait_timeout(VERDICT_TIMEOUT).expect("every wire submit resolves one verdict");
        verdicts += 1;
        if let Outcome::Admitted { .. } = outcome {
            admitted += 1;
            client.depart(task).expect("depart an admitted task");
        }
    };

    for i in 0..REQS {
        if i == JOIN_AT {
            // Hot join over the wire: the node itself announces to the
            // gateway's frontend (arming its automatic shutdown Leave),
            // enters probation, and is promoted by a passing probe.
            let node = start_node(&scenario);
            let a = node.local_addr();
            let ack = node.announce_to_as(gw_addr, JOIN_INCARNATION).expect("announce over the wire");
            assert_eq!(ack.decision, MembershipDecision::Accepted);
            assert_eq!(ack.members.len(), 3, "the ack carries the full membership view");
            let deadline = Instant::now() + Duration::from_secs(5);
            while wire_member_state(&client, a, JOIN_INCARNATION, a) != MemberState::Healthy {
                assert!(Instant::now() < deadline, "joiner not promoted in time");
                std::thread::sleep(Duration::from_millis(5));
            }
            joiner = Some(node);
        }
        if i == LEAVE_AT {
            // Graceful leave of a seed node, sent by an operator client
            // (incarnation u64::MAX forces it past any live stamp). The
            // reply reflects the departure immediately; a replay is
            // idempotent.
            let reply = client.leave(&addr0.to_string(), u64::MAX, RPC_TIMEOUT).expect("leave rpc");
            assert_eq!(reply.decision, MembershipDecision::Accepted);
            let state = reply.members.iter().find(|m| m.addr == addr0.to_string()).expect("leaver listed");
            assert_eq!(state.state, MemberState::Departed);
            let replay = client.leave(&addr0.to_string(), u64::MAX, RPC_TIMEOUT).expect("leave replay");
            assert_eq!(replay.decision, MembershipDecision::Accepted, "leave must be idempotent");
        }
        let pick = i % scenario.instance.tasks.len();
        let mut task = scenario.instance.tasks[pick].clone();
        task.id = TaskId(u32::try_from(i).expect("fits"));
        let pending =
            client.submit(task, scenario.instance.options[pick].clone(), None).expect("wire submit");
        window.push_back(pending);
        if window.len() >= WINDOW {
            settle(window.pop_front().expect("non-empty window"));
        }
    }
    for p in window.drain(..) {
        settle(p);
    }
    assert_eq!(verdicts, REQS as u64, "zero verdicts lost across join + leave");

    // The joiner deregisters itself on shutdown: its armed LeaveNotice
    // sends a wire Leave before the node drains, so the gateway's view
    // flips to Departed without any operator involvement.
    let joiner = joiner.expect("node joined mid-run");
    let joiner_addr = joiner.local_addr();
    let joiner_report = joiner.shutdown();
    assert_eq!(wire_member_state(&client, addr1, 0, joiner_addr), MemberState::Departed);
    client.close();

    // Conservation, every ledger: the gateway...
    let report = server.shutdown();
    let m = &report.metrics;
    assert!(m.is_conserved(), "gateway ledger leaked: {m:?}");
    assert_eq!(m.submitted, REQS as u64);
    assert_eq!(m.admitted, admitted);
    // ...the graceful leaver (its server outlived its membership)...
    let r0 = node0.shutdown();
    assert!(r0.metrics.is_conserved(), "leaver leaked: {:?}", r0.metrics);
    assert!(r0.metrics.departed <= r0.metrics.admitted);
    // ...the surviving seed...
    let r1 = node1.shutdown();
    assert!(r1.metrics.is_conserved(), "survivor leaked: {:?}", r1.metrics);
    // ...and the hot joiner, which must actually have carried traffic.
    assert!(joiner_report.metrics.is_conserved(), "joiner leaked: {:?}", joiner_report.metrics);
    assert!(joiner_report.metrics.submitted > 0, "promoted joiner never received traffic");
    assert!(joiner_report.metrics.departed <= joiner_report.metrics.admitted);
    let node_admitted = r0.metrics.admitted + r1.metrics.admitted + joiner_report.metrics.admitted;
    assert!(node_admitted >= admitted, "nodes admitted {node_admitted} < gateway relayed {admitted}");
}

#[test]
fn hot_join_and_graceful_leave_over_the_wire_threads() {
    run(Frontend::Threads);
}

#[test]
fn hot_join_and_graceful_leave_over_the_wire_reactor() {
    run(Frontend::Reactor);
}

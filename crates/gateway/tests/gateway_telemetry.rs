//! Verifies the gateway instruments end to end: after real cluster
//! traffic (including a node kill, so failover fires, plus a
//! membership announce/leave round), the global registry holds the
//! `gw.nodes.healthy` / `gw.membership.size` gauges, the
//! `gw.failover` / `gw.hedges` / `gw.hedge_wins` / `gw.joins` /
//! `gw.leaves` counters and the `gw.route` span histogram — and under
//! `--features offloadnn-telemetry/disabled` the same traffic flows
//! with none of those names registered.
//!
//! Run both ways (ci.sh does):
//!   cargo test -p offloadnn-gateway --test gateway_telemetry
//!   cargo test -p offloadnn-gateway --test gateway_telemetry --features offloadnn-telemetry/disabled

use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_gateway::{Gateway, GatewayConfig};
use offloadnn_net::{NetConfig, NetServer, PendingOutcome};
use offloadnn_serve::ServiceConfig;
use std::time::Duration;

#[test]
fn gateway_instruments_follow_the_telemetry_build() {
    let scenario = small_scenario(4);
    let mut nodes: Vec<Option<NetServer>> = (0..2)
        .map(|_| {
            Some(
                NetServer::start(
                    ("127.0.0.1", 0),
                    NetConfig::default(),
                    ServiceConfig::default(),
                    &scenario.instance,
                )
                .expect("start backend node"),
            )
        })
        .collect();
    let addrs: Vec<_> = nodes.iter().map(|n| n.as_ref().unwrap().local_addr()).collect();
    let config = GatewayConfig {
        health_interval: Duration::from_millis(30),
        health_timeout: Duration::from_millis(200),
        eject_after: 2,
        ..GatewayConfig::default()
    };
    let gateway = Gateway::start(&addrs, config).expect("start gateway");

    let submit = |i: usize| {
        let pick = i % scenario.instance.tasks.len();
        let mut task = scenario.instance.tasks[pick].clone();
        task.id = TaskId(u32::try_from(i).unwrap());
        gateway
            .submit(task, scenario.instance.options[pick].clone())
            .expect("gateway accepts submits")
            .wait()
            .expect("verdict")
    };
    for i in 0..24 {
        submit(i);
    }
    // Kill one node so the data path ejects it and failover fires for
    // whatever the dead node was winning.
    drop(nodes[0].take().unwrap().shutdown());
    for i in 24..64 {
        submit(i);
    }

    // One membership round: a ghost joiner (never probeable, so the
    // healthy gauge is untouched) announces, replays its announce, then
    // leaves twice. Exactly one join and one leave must count.
    let ghost = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve a port");
        let a = listener.local_addr().expect("listener addr");
        drop(listener);
        a
    };
    gateway.announce(ghost, 1);
    gateway.announce(ghost, 1); // duplicate: must not count as a join
    gateway.leave(ghost, 1);
    gateway.leave(ghost, 1); // replay: must not count twice

    let report = gateway.drain();
    assert!(report.metrics.is_conserved(), "traffic must conserve regardless of telemetry build");
    assert_eq!(report.metrics.submitted, 64);
    drop(nodes[1].take().unwrap().shutdown());

    let snapshot = offloadnn_telemetry::global().snapshot();
    let counter = |name: &str| snapshot.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
    let gauge = |name: &str| snapshot.gauges.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
    let phase = |name: &str| snapshot.phases.iter().find(|(n, _)| *n == name).map(|(_, h)| h.count);
    let gw_events = snapshot.events.iter().filter(|e| e.target.starts_with("gw.")).count();

    if offloadnn_telemetry::enabled() {
        // One node died and the monitor (or data path) noticed.
        assert_eq!(gauge("gw.nodes.healthy"), Some(1), "gauge must track the surviving node");
        // Routing decisions went through the gw.route span.
        let routes = phase("gw.route").expect("gw.route span registered");
        assert!(routes >= 64, "every submit routes at least once (got {routes})");
        // The kill forced at least one mid-stream failover.
        let failovers = counter("gw.failover").expect("gw.failover registered");
        assert!(failovers > 0, "killing a node must surface as failover");
        // Hedging was off: counters may be absent (never touched) or
        // zero — they must not have fired.
        assert_eq!(counter("gw.hedges").unwrap_or(0), 0);
        assert_eq!(counter("gw.hedge_wins").unwrap_or(0), 0);
        // The membership round counted each applied change exactly once,
        // and the pool gauge reflects the (append-only) three entries.
        assert_eq!(counter("gw.joins"), Some(1), "one accepted announce, duplicates ignored");
        assert_eq!(counter("gw.leaves"), Some(1), "one applied leave, replays ignored");
        assert_eq!(gauge("gw.membership.size"), Some(3), "two seeds plus the ghost joiner");
        assert!(gw_events > 0, "ejection must emit a gw.* event");
    } else {
        for name in [
            "gw.nodes.healthy",
            "gw.membership.size",
            "gw.failover",
            "gw.hedges",
            "gw.hedge_wins",
            "gw.joins",
            "gw.leaves",
            "gw.route",
        ] {
            assert!(
                counter(name).is_none() && gauge(name).is_none() && phase(name).is_none(),
                "{name} must not register in a telemetry-disabled build"
            );
        }
        assert_eq!(gw_events, 0, "no events in a telemetry-disabled build");
    }
}

//! Deadline-aware hedging under deliberately slow backends: the solver
//! batch window is stretched so every node's RTT sits near the ticket
//! budget, which forces the hedger to duplicate submits once the
//! per-node p99 histograms warm up. The test pins the dedup contract:
//! exactly one verdict per submit reaches the caller (first one wins),
//! and the losing duplicate's admission is departed by the reaper, so
//! no backend node ends the run with leaked in-flight capacity.

use offloadnn_core::scenario::small_scenario;
use offloadnn_core::task::TaskId;
use offloadnn_gateway::{Gateway, GatewayConfig, HedgeConfig};
use offloadnn_net::{Backend, NetConfig, NetServer, PendingOutcome};
use offloadnn_serve::{Outcome, ServiceConfig};
use std::collections::VecDeque;
use std::time::Duration;

#[test]
fn hedges_fire_and_duplicates_are_deduplicated() {
    const WARMUP: usize = 40;
    const HEDGED: usize = 100;
    const WINDOW: usize = 16;

    let scenario = small_scenario(5);
    // Slow nodes: the solver sits on a ~30 ms batch window, so a ticket
    // with a ~60 ms budget projects past its deadline once p99 is known.
    let service = ServiceConfig { batch_window: Duration::from_millis(30), ..ServiceConfig::default() };
    let nodes: Vec<NetServer> = (0..2)
        .map(|_| {
            NetServer::start(("127.0.0.1", 0), NetConfig::default(), service, &scenario.instance)
                .expect("start backend node")
        })
        .collect();
    let addrs: Vec<_> = nodes.iter().map(|n| n.local_addr()).collect();
    let config = GatewayConfig {
        hedge: HedgeConfig { enabled: true, min_samples: 5 },
        verdict_grace: Duration::from_secs(2),
        ..GatewayConfig::default()
    };
    let gateway = Gateway::start(&addrs, config).expect("start gateway");

    let mut verdicts = 0u64;
    let mut window: VecDeque<(TaskId, offloadnn_gateway::GwPending)> = VecDeque::new();
    let settle = |(task, pending): (TaskId, offloadnn_gateway::GwPending), verdicts: &mut u64| {
        let outcome = pending.wait().expect("exactly one verdict per submit");
        *verdicts += 1;
        if matches!(outcome, Outcome::Admitted { .. }) {
            gateway.depart(task);
        }
    };

    for i in 0..WARMUP + HEDGED {
        let pick = i % scenario.instance.tasks.len();
        let mut task = scenario.instance.tasks[pick].clone();
        task.id = TaskId(u32::try_from(i).unwrap());
        // Warm the RTT histograms on a roomy budget first; then drop to
        // a budget the slow nodes can only just meet, arming the hedger.
        let budget = if i < WARMUP { Duration::from_secs(2) } else { Duration::from_millis(60) };
        let pending = Backend::submit(&gateway, task, scenario.instance.options[pick].clone(), Some(budget))
            .expect("gateway accepts submits");
        window.push_back((TaskId(u32::try_from(i).unwrap()), pending));
        if window.len() >= WINDOW {
            settle(window.pop_front().unwrap(), &mut verdicts);
        }
    }
    for entry in window.drain(..) {
        settle(entry, &mut verdicts);
    }

    // Dedup: one verdict per submit despite the duplicates in flight.
    assert_eq!(verdicts, (WARMUP + HEDGED) as u64);

    let report = gateway.drain();
    assert!(report.metrics.is_conserved(), "gateway ledger leaked: {:?}", report.metrics);
    assert_eq!(report.metrics.resolved(), (WARMUP + HEDGED) as u64);

    // The hedger actually fired (observable only with telemetry on).
    if offloadnn_telemetry::enabled() {
        let snap = offloadnn_telemetry::global().snapshot();
        let counter = |name: &str| snap.counters.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v);
        let hedges = counter("gw.hedges");
        let wins = counter("gw.hedge_wins");
        assert!(hedges > 0, "slow backends + tight budgets should hedge");
        assert!(wins <= hedges);
    }

    // No leaked capacity anywhere: every admission on every node —
    // winners (departed by the caller) and losers (departed by the
    // reaper) alike — was released before drain.
    for node in nodes {
        let r = node.shutdown();
        assert!(r.metrics.is_conserved(), "node leaked: {:?}", r.metrics);
        assert_eq!(
            r.metrics.departed, r.metrics.admitted,
            "hedge duplicates leaked in-flight capacity on a node"
        );
    }
}

//! Radio slices: per-task RB allocations and transmission timing.

use crate::snr::{RateModel, SnrDb};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from slice construction and use.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkError {
    /// A slice needs at least one RB to carry anything.
    ZeroRbs,
    /// The rate model yields zero capacity at this SNR.
    ZeroCapacity {
        /// The offending SNR.
        snr: SnrDb,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::ZeroRbs => write!(f, "slice has zero resource blocks"),
            LinkError::ZeroCapacity { snr } => write!(f, "zero link capacity at {snr}"),
        }
    }
}

impl std::error::Error for LinkError {}

/// A radio network slice dedicated to one offloaded task: `r` RBs at a
/// given SNR under a rate model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioSlice {
    /// Allocated resource blocks.
    pub rbs: u32,
    /// Average SNR of the devices in the slice.
    pub snr: SnrDb,
    /// Rate model in force.
    pub rate: RateModel,
}

impl RadioSlice {
    /// Creates a slice.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::ZeroRbs`] for an empty allocation and
    /// [`LinkError::ZeroCapacity`] if the SNR is below the rate model's
    /// decodable floor.
    pub fn new(rbs: u32, snr: SnrDb, rate: RateModel) -> Result<Self, LinkError> {
        if rbs == 0 {
            return Err(LinkError::ZeroRbs);
        }
        if rate.bits_per_rb(snr) <= 0.0 {
            return Err(LinkError::ZeroCapacity { snr });
        }
        Ok(Self { rbs, snr, rate })
    }

    /// Uplink capacity of the slice in bits per second.
    pub fn capacity_bps(&self) -> f64 {
        self.rate.bits_per_rb(self.snr) * self.rbs as f64
    }

    /// Seconds to serialise `bits` over the slice
    /// (`beta(q) / (B(sigma) * r)`, the networking term of the paper's
    /// end-to-end latency).
    pub fn tx_seconds(&self, bits: f64) -> f64 {
        bits / self.capacity_bps()
    }

    /// Sustainable image rate (images/s) for inputs of `bits` each — the
    /// throughput form of constraint (1e).
    pub fn sustainable_rate(&self, bits: f64) -> f64 {
        self.capacity_bps() / bits
    }
}

/// Minimum (real-valued) RBs so `bits`-sized inputs arriving at `rate_hz`
/// are sustainable at SNR `snr` — constraint (1e) solved for `r`.
pub fn min_rbs_for_rate(bits: f64, rate_hz: f64, snr: SnrDb, rate: RateModel) -> f64 {
    rate_hz * bits / rate.bits_per_rb(snr)
}

/// Minimum (real-valued) RBs so one input of `bits` is delivered within
/// `deadline` seconds — the networking share of constraint (1g) solved for
/// `r`. Returns `None` if the deadline is non-positive.
pub fn min_rbs_for_deadline(bits: f64, deadline: f64, snr: SnrDb, rate: RateModel) -> Option<f64> {
    if deadline <= 0.0 {
        return None;
    }
    Some(bits / (rate.bits_per_rb(snr) * deadline))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(rbs: u32) -> RadioSlice {
        RadioSlice::new(rbs, SnrDb(0.0), RateModel::table_iv()).unwrap()
    }

    #[test]
    fn table_iv_numbers() {
        // 350 kbit image over 1 RB at 0.35 Mbit/s: exactly 1 second.
        let s = slice(1);
        assert!((s.tx_seconds(350e3) - 1.0).abs() < 1e-12);
        // 5 RBs: 0.2 s.
        assert!((slice(5).tx_seconds(350e3) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sustainable_rate_matches_capacity() {
        let s = slice(5);
        // 5 RB x 0.35 Mb/s = 1.75 Mb/s; 350 kb images -> 5 images/s.
        assert!((s.sustainable_rate(350e3) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rbs_rejected() {
        assert_eq!(RadioSlice::new(0, SnrDb(0.0), RateModel::table_iv()).unwrap_err(), LinkError::ZeroRbs);
    }

    #[test]
    fn zero_capacity_rejected() {
        let err = RadioSlice::new(1, SnrDb(-30.0), RateModel::CqiTable).unwrap_err();
        assert!(matches!(err, LinkError::ZeroCapacity { .. }));
        assert!(err.to_string().contains("-30.0 dB"));
    }

    #[test]
    fn min_rbs_for_rate_inverts_sustainable_rate() {
        // lambda = 5/s, 350 kb images, 0.35 Mb/s per RB -> 5 RBs.
        let r = min_rbs_for_rate(350e3, 5.0, SnrDb(0.0), RateModel::table_iv());
        assert!((r - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_rbs_for_deadline() {
        // 350 kb within 0.2 s -> 5 RBs.
        let r = super::min_rbs_for_deadline(350e3, 0.2, SnrDb(0.0), RateModel::table_iv()).unwrap();
        assert!((r - 5.0).abs() < 1e-12);
        assert!(super::min_rbs_for_deadline(350e3, 0.0, SnrDb(0.0), RateModel::table_iv()).is_none());
        assert!(super::min_rbs_for_deadline(350e3, -1.0, SnrDb(0.0), RateModel::table_iv()).is_none());
    }
}

//! Radio substrate for the OffloaDNN reproduction: SNR-to-rate models,
//! per-task radio slices and traffic generation.
//!
//! The DOT problem consumes `B(sigma_tau)` — bits per RB at a task's SNR —
//! and allocates `r_tau` RBs per slice; the emulator additionally
//! serialises task inputs over the slices. All of that lives here.
//!
//! # Example
//!
//! ```
//! use offloadnn_radio::{RadioSlice, RateModel, SnrDb};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Table IV: 350 kbit images, 0.35 Mbit/s per RB, 5 RBs -> 0.2 s uplink.
//! let slice = RadioSlice::new(5, SnrDb(0.0), RateModel::table_iv())?;
//! assert!((slice.tx_seconds(350e3) - 0.2).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod link;
pub mod snr;
pub mod traffic;

pub use link::{min_rbs_for_deadline, min_rbs_for_rate, LinkError, RadioSlice};
pub use snr::{RateModel, SnrDb, RB_BANDWIDTH_HZ};
pub use traffic::{ArrivalProcess, Arrivals};

//! SNR and link-rate models: how many bits one resource block carries.
//!
//! The paper's `B(sigma_tau)` maps the SNR of the devices offloading task
//! `tau` to the bits an allocated RB can carry. Table IV pins it to a
//! constant 0.35 Mbit/s per RB; for the emulator and for sensitivity
//! studies we also provide a truncated-Shannon model and the 3GPP CQI
//! table, all behind one [`RateModel`] type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Signal-to-noise ratio in decibels.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SnrDb(pub f64);

impl SnrDb {
    /// Linear (power-ratio) value.
    pub fn linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

impl fmt::Display for SnrDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

/// LTE resource-block bandwidth (12 subcarriers x 15 kHz).
pub const RB_BANDWIDTH_HZ: f64 = 180e3;

/// 3GPP TS 36.213 Table 7.2.3-1 CQI spectral efficiencies (bits/s/Hz) and
/// approximate SNR activation thresholds (dB), CQI 1..=15.
const CQI_TABLE: [(f64, f64); 15] = [
    (-6.7, 0.1523),
    (-4.7, 0.2344),
    (-2.3, 0.3770),
    (0.2, 0.6016),
    (2.4, 0.8770),
    (4.3, 1.1758),
    (5.9, 1.4766),
    (8.1, 1.9141),
    (10.3, 2.4063),
    (11.7, 2.7305),
    (14.1, 3.3223),
    (16.3, 3.9023),
    (18.7, 4.5234),
    (21.0, 5.1152),
    (22.7, 5.5547),
];

/// How the per-RB rate is derived from SNR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RateModel {
    /// A fixed rate per RB, independent of SNR (Table IV's 0.35 Mbit/s).
    Constant {
        /// Bits per second carried by one RB.
        bits_per_rb: f64,
    },
    /// Truncated Shannon bound: `eff = min(att * log2(1 + snr), cap)`.
    TruncatedShannon {
        /// Implementation-loss attenuation (typ. 0.6).
        attenuation: f64,
        /// Spectral-efficiency cap in bits/s/Hz (typ. 5.55, 64-QAM 0.93).
        max_spectral_efficiency: f64,
    },
    /// Table lookup of the 3GPP CQI spectral efficiencies.
    CqiTable,
}

impl RateModel {
    /// The Table IV setting: 0.35 Mbit/s per RB regardless of SNR.
    pub fn table_iv() -> Self {
        RateModel::Constant { bits_per_rb: 0.35e6 }
    }

    /// A typical truncated-Shannon configuration.
    pub fn shannon() -> Self {
        RateModel::TruncatedShannon { attenuation: 0.6, max_spectral_efficiency: 5.55 }
    }

    /// Bits per second carried by one RB at the given SNR.
    pub fn bits_per_rb(&self, snr: SnrDb) -> f64 {
        match *self {
            RateModel::Constant { bits_per_rb } => bits_per_rb,
            RateModel::TruncatedShannon { attenuation, max_spectral_efficiency } => {
                let eff = (attenuation * (1.0 + snr.linear()).log2()).min(max_spectral_efficiency);
                eff.max(0.0) * RB_BANDWIDTH_HZ
            }
            RateModel::CqiTable => {
                let eff = CQI_TABLE
                    .iter()
                    .rev()
                    .find(|&&(thresh, _)| snr.0 >= thresh)
                    .map(|&(_, e)| e)
                    .unwrap_or(0.0);
                eff * RB_BANDWIDTH_HZ
            }
        }
    }
}

impl Default for RateModel {
    fn default() -> Self {
        Self::table_iv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_is_constant() {
        let r = RateModel::table_iv();
        assert_eq!(r.bits_per_rb(SnrDb(-10.0)), 0.35e6);
        assert_eq!(r.bits_per_rb(SnrDb(30.0)), 0.35e6);
    }

    #[test]
    fn snr_linear_conversion() {
        assert!((SnrDb(0.0).linear() - 1.0).abs() < 1e-12);
        assert!((SnrDb(10.0).linear() - 10.0).abs() < 1e-12);
        assert!((SnrDb(-10.0).linear() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn shannon_monotone_and_capped() {
        let r = RateModel::shannon();
        let mut prev = 0.0;
        for db in (-10..=40).step_by(2) {
            let b = r.bits_per_rb(SnrDb(db as f64));
            assert!(b >= prev, "rate must be non-decreasing in SNR");
            prev = b;
        }
        // Cap: 5.55 b/s/Hz * 180 kHz = 999.9 kbit/s.
        assert!((r.bits_per_rb(SnrDb(60.0)) - 5.55 * RB_BANDWIDTH_HZ).abs() < 1.0);
    }

    #[test]
    fn cqi_table_monotone_and_bounded() {
        let r = RateModel::CqiTable;
        assert_eq!(r.bits_per_rb(SnrDb(-20.0)), 0.0, "below CQI 1 nothing is carried");
        let mut prev = 0.0;
        for db in (-8..=30).step_by(1) {
            let b = r.bits_per_rb(SnrDb(db as f64));
            assert!(b >= prev);
            prev = b;
        }
        assert!((prev - 5.5547 * RB_BANDWIDTH_HZ).abs() < 1.0);
    }

    #[test]
    fn cqi_and_shannon_agree_roughly_at_mid_snr() {
        // Sanity: the two physical models should be within 2x of each other
        // in the operating region.
        let (c, s) = (RateModel::CqiTable, RateModel::shannon());
        for db in [0.0, 5.0, 10.0, 15.0] {
            let (bc, bs) = (c.bits_per_rb(SnrDb(db)), s.bits_per_rb(SnrDb(db)));
            assert!(bc < 2.0 * bs && bs < 2.0 * bc, "mismatch at {db} dB: {bc} vs {bs}");
        }
    }

    #[test]
    fn display() {
        assert_eq!(SnrDb(3.25).to_string(), "3.2 dB");
    }
}

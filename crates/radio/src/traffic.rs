//! Task-request traffic generation for the emulator.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// How request arrivals are spaced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals with the given rate (requests/s).
    Poisson {
        /// Mean rate in requests per second.
        rate_hz: f64,
    },
    /// Deterministic, evenly spaced arrivals (useful for tests and for the
    /// fixed inference rates the UEs are configured with in Sec. V-B).
    Periodic {
        /// Rate in requests per second.
        rate_hz: f64,
    },
    /// A two-state Markov-modulated Poisson process: bursty traffic that
    /// alternates between a calm and a burst phase (event-detection
    /// cameras behave like this; a stress generator for the emulator).
    Bursty {
        /// Rate during the calm phase (requests/s).
        calm_rate_hz: f64,
        /// Rate during the burst phase (requests/s).
        burst_rate_hz: f64,
        /// Mean duration of the calm phase (s).
        mean_calm_s: f64,
        /// Mean duration of the burst phase (s).
        mean_burst_s: f64,
    },
}

impl ArrivalProcess {
    /// Mean (long-run) rate of the process.
    pub fn rate_hz(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } | ArrivalProcess::Periodic { rate_hz } => rate_hz,
            ArrivalProcess::Bursty { calm_rate_hz, burst_rate_hz, mean_calm_s, mean_burst_s } => {
                (calm_rate_hz * mean_calm_s + burst_rate_hz * mean_burst_s) / (mean_calm_s + mean_burst_s)
            }
        }
    }
}

/// Seeded iterator over arrival timestamps (seconds, strictly increasing).
#[derive(Debug)]
pub struct Arrivals {
    process: ArrivalProcess,
    rng: StdRng,
    now: f64,
    /// Bursty state: whether the modulating chain is in the burst phase,
    /// and when the current phase ends.
    in_burst: bool,
    phase_ends: f64,
}

impl Arrivals {
    /// Creates a generator; `seed` makes runs reproducible.
    ///
    /// # Panics
    ///
    /// Panics if the mean rate is not strictly positive.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        assert!(process.rate_hz() > 0.0, "arrival rate must be positive");
        let mut a =
            Self { process, rng: StdRng::seed_from_u64(seed), now: 0.0, in_burst: false, phase_ends: 0.0 };
        if let ArrivalProcess::Bursty { mean_calm_s, .. } = process {
            a.phase_ends = a.exp(1.0 / mean_calm_s);
        }
        a
    }

    fn exp(&mut self, rate: f64) -> f64 {
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    }
}

impl Iterator for Arrivals {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        match self.process {
            ArrivalProcess::Poisson { rate_hz } => {
                self.now += self.exp(rate_hz);
            }
            ArrivalProcess::Periodic { rate_hz } => {
                self.now += 1.0 / rate_hz;
            }
            ArrivalProcess::Bursty { calm_rate_hz, burst_rate_hz, mean_calm_s, mean_burst_s } => {
                // Sample within the current phase; cross phase boundaries
                // by re-drawing from the new phase's rate (memorylessness
                // makes discarding the partial gap exact).
                loop {
                    let rate = if self.in_burst { burst_rate_hz } else { calm_rate_hz };
                    let candidate = self.now + self.exp(rate);
                    if candidate <= self.phase_ends {
                        self.now = candidate;
                        break;
                    }
                    self.now = self.phase_ends;
                    self.in_burst = !self.in_burst;
                    let mean = if self.in_burst { mean_burst_s } else { mean_calm_s };
                    self.phase_ends = self.now + self.exp(1.0 / mean);
                }
            }
        }
        Some(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_is_exactly_spaced() {
        let mut a = Arrivals::new(ArrivalProcess::Periodic { rate_hz: 4.0 }, 0);
        assert!((a.next().unwrap() - 0.25).abs() < 1e-12);
        assert!((a.next().unwrap() - 0.50).abs() < 1e-12);
    }

    #[test]
    fn poisson_mean_rate_converges() {
        let n = 20_000;
        let last = Arrivals::new(ArrivalProcess::Poisson { rate_hz: 5.0 }, 42).take(n).last().unwrap();
        let empirical = n as f64 / last;
        assert!((empirical - 5.0).abs() < 0.15, "empirical rate {empirical}");
    }

    #[test]
    fn poisson_is_reproducible() {
        let a: Vec<f64> = Arrivals::new(ArrivalProcess::Poisson { rate_hz: 2.0 }, 7).take(10).collect();
        let b: Vec<f64> = Arrivals::new(ArrivalProcess::Poisson { rate_hz: 2.0 }, 7).take(10).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut prev = 0.0;
        for t in Arrivals::new(ArrivalProcess::Poisson { rate_hz: 100.0 }, 3).take(1000) {
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        Arrivals::new(ArrivalProcess::Poisson { rate_hz: 0.0 }, 0);
    }

    #[test]
    fn bursty_mean_rate_formula() {
        let p = ArrivalProcess::Bursty {
            calm_rate_hz: 2.0,
            burst_rate_hz: 20.0,
            mean_calm_s: 9.0,
            mean_burst_s: 1.0,
        };
        assert!((p.rate_hz() - (2.0 * 9.0 + 20.0 * 1.0) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn bursty_long_run_rate_converges() {
        let p = ArrivalProcess::Bursty {
            calm_rate_hz: 2.0,
            burst_rate_hz: 20.0,
            mean_calm_s: 4.0,
            mean_burst_s: 1.0,
        };
        let n = 40_000;
        let last = Arrivals::new(p, 11).take(n).last().unwrap();
        let empirical = n as f64 / last;
        let expected = p.rate_hz();
        assert!((empirical - expected).abs() / expected < 0.06, "empirical {empirical} vs {expected}");
    }

    #[test]
    fn bursty_is_actually_bursty() {
        // Gap variance must exceed that of a Poisson process with the same
        // mean rate (index of dispersion > 1 on windowed counts).
        let p = ArrivalProcess::Bursty {
            calm_rate_hz: 1.0,
            burst_rate_hz: 30.0,
            mean_calm_s: 5.0,
            mean_burst_s: 1.0,
        };
        let times: Vec<f64> = Arrivals::new(p, 3).take(20_000).collect();
        let horizon = times.last().unwrap();
        let window = 1.0;
        let bins = (*horizon / window) as usize;
        let mut counts = vec![0f64; bins + 1];
        for &t in &times {
            let b = (t / window) as usize;
            if b < counts.len() {
                counts[b] += 1.0;
            }
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64;
        let dispersion = var / mean;
        assert!(dispersion > 2.0, "index of dispersion {dispersion} should be >> 1");
    }

    #[test]
    fn bursty_strictly_increases() {
        let p = ArrivalProcess::Bursty {
            calm_rate_hz: 3.0,
            burst_rate_hz: 50.0,
            mean_calm_s: 2.0,
            mean_burst_s: 0.5,
        };
        let mut prev = 0.0;
        for t in Arrivals::new(p, 5).take(5000) {
            assert!(t > prev);
            prev = t;
        }
    }
}

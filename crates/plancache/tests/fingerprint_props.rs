//! Property tests for shape-fingerprint canonicalization: equal shapes
//! map to equal keys regardless of identity fields, perturbed shapes map
//! to distinct keys, and keys are stable across reshards within a ring
//! generation.

use offloadnn_core::instance::PathOption;
use offloadnn_core::task::{QualityLevel, Task, TaskId};
use offloadnn_dnn::block::{BlockId, GroupId, ModelId};
use offloadnn_dnn::config::{Config, PathConfig};
use offloadnn_dnn::repository::DnnPath;
use offloadnn_plancache::{shape_fingerprint, PlanKey};
use offloadnn_radio::snr::SnrDb;
use proptest::prelude::*;

/// Everything that defines a shape, as plain sampled numbers.
#[derive(Debug, Clone)]
struct ShapeParams {
    group: u32,
    priority: f64,
    request_rate: f64,
    min_accuracy: f64,
    max_latency: f64,
    snr: f64,
    difficulty: f64,
    options: Vec<OptionParams>,
}

#[derive(Debug, Clone)]
struct OptionParams {
    model: u32,
    shared_prefix: usize,
    pruned: bool,
    blocks: Vec<u32>,
    quality: f64,
    bits: f64,
    accuracy: f64,
    proc_seconds: f64,
    training_seconds: f64,
}

fn option_params() -> impl Strategy<Value = OptionParams> {
    (
        0u32..4,
        0usize..5,
        proptest::bool::ANY,
        proptest::collection::vec(0u32..64, 1..6),
        (0.3f64..1.0, 1e4f64..1e6),
        (0.5f64..0.99, 1e-3f64..0.2, 0.0f64..50.0),
    )
        .prop_map(|(model, shared_prefix, pruned, blocks, (quality, bits), (accuracy, proc, train))| {
            OptionParams {
                model,
                shared_prefix,
                pruned,
                blocks,
                quality,
                bits,
                accuracy,
                proc_seconds: proc,
                training_seconds: train,
            }
        })
}

fn shape_params() -> impl Strategy<Value = ShapeParams> {
    (
        0u32..8,
        (0.05f64..1.0, 0.5f64..40.0),
        (0.5f64..0.95, 0.02f64..0.6),
        (-5.0f64..25.0, -0.1f64..0.1),
        proptest::collection::vec(option_params(), 1..4),
    )
        .prop_map(
            |(group, (priority, request_rate), (min_accuracy, max_latency), (snr, difficulty), options)| {
                ShapeParams {
                    group,
                    priority,
                    request_rate,
                    min_accuracy,
                    max_latency,
                    snr,
                    difficulty,
                    options,
                }
            },
        )
}

/// Materializes a shape with arbitrary identity fields — the fingerprint
/// must not depend on `id`, `name` or option `label`s.
fn build(p: &ShapeParams, id: u32, name: &str, label: &str) -> (Task, Vec<PathOption>) {
    let task = Task {
        id: TaskId(id),
        name: name.to_string(),
        group: GroupId(p.group),
        priority: p.priority,
        request_rate: p.request_rate,
        min_accuracy: p.min_accuracy,
        max_latency: p.max_latency,
        snr: SnrDb(p.snr),
        qualities: p.options.iter().map(|o| QualityLevel { quality: o.quality, bits: o.bits }).collect(),
        difficulty: p.difficulty,
    };
    let options = p
        .options
        .iter()
        .map(|o| PathOption {
            path: DnnPath {
                model: ModelId(o.model),
                group: GroupId(p.group),
                config: PathConfig { config: Config::with_shared_prefix(o.shared_prefix), pruned: o.pruned },
                blocks: o.blocks.iter().map(|&b| BlockId(b)).collect(),
            },
            quality: QualityLevel { quality: o.quality, bits: o.bits },
            accuracy: o.accuracy,
            proc_seconds: o.proc_seconds,
            training_seconds: o.training_seconds,
            label: label.to_string(),
        })
        .collect();
    (task, options)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Equal shapes ⇒ equal keys, no matter how the identity fields differ.
    fn equal_shapes_give_equal_fingerprints(p in shape_params(), id_a in 0u32..1000, id_b in 0u32..1000) {
        let (task_a, opts_a) = build(&p, id_a, "alpha", "m/CONF/q");
        let (task_b, opts_b) = build(&p, id_b, "beta", "other-label");
        prop_assert_eq!(shape_fingerprint(&task_a, &opts_a), shape_fingerprint(&task_b, &opts_b));
    }

    /// Perturbing any QoS field beyond the 1e-6 quantization step yields a
    /// distinct fingerprint.
    fn perturbed_shapes_give_distinct_fingerprints(
        p in shape_params(),
        field in 0usize..6,
        delta in 1e-3f64..0.2,
    ) {
        let (task, opts) = build(&p, 1, "t", "l");
        let base = shape_fingerprint(&task, &opts);
        let mut q = p.clone();
        match field {
            0 => q.priority += delta,
            1 => q.request_rate += delta,
            2 => q.min_accuracy += delta,
            3 => q.max_latency += delta,
            4 => q.snr += delta,
            _ => q.difficulty += delta,
        }
        let (task2, opts2) = build(&q, 1, "t", "l");
        prop_assert_ne!(base, shape_fingerprint(&task2, &opts2));
    }

    /// Changing the option set (dropping one, flipping pruning, remapping a
    /// block) changes the fingerprint.
    fn option_set_changes_give_distinct_fingerprints(p in shape_params(), extra in option_params()) {
        let (task, opts) = build(&p, 1, "t", "l");
        let base = shape_fingerprint(&task, &opts);

        let mut grown = p.clone();
        grown.options.push(extra);
        let (gt, go) = build(&grown, 1, "t", "l");
        prop_assert_ne!(base, shape_fingerprint(&gt, &go));

        let mut flipped = p.clone();
        flipped.options[0].pruned = !flipped.options[0].pruned;
        let (ft, fo) = build(&flipped, 1, "t", "l");
        prop_assert_ne!(base, shape_fingerprint(&ft, &fo));
    }

    /// The fingerprint is a pure function of the shape: recomputing it
    /// after a reshard changes nothing, so within one ring generation the
    /// full PlanKey is stable — and a generation bump alone separates keys.
    fn keys_stable_within_generation_distinct_across(
        p in shape_params(),
        bucket in 0u16..64,
        generation in 0u64..1_000,
    ) {
        let (task, opts) = build(&p, 7, "t", "l");
        // "After the reshard": same shape observed again, identity refreshed.
        let (task2, opts2) = build(&p, 8, "renamed", "relabeled");
        let before = PlanKey { shape: shape_fingerprint(&task, &opts), bucket, generation };
        let after = PlanKey { shape: shape_fingerprint(&task2, &opts2), bucket, generation };
        prop_assert_eq!(before, after);
        let next_ring = PlanKey { generation: generation + 1, ..after };
        prop_assert_ne!(before, next_ring);
    }
}

//! The sharded plan cache: bounded CLOCK eviction, per-entry TTL with a
//! shorter negative TTL, and epoch-based invalidation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use offloadnn_telemetry::{span, Counter, Registry};

use crate::fingerprint::PlanKey;
use crate::singleflight::{FlightAttempt, FlightTable};
use crate::stats::{AtomicStats, PlanCacheStats};

/// Tuning knobs for a [`PlanCache`]. `Copy + Eq` so it can ride inside
/// `ServiceConfig` unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheConfig {
    /// Maximum resident entries across all shards.
    pub capacity: usize,
    /// Number of independently locked shards (rounded up to ≥ 1).
    pub shards: usize,
    /// Time-to-live for positive (admit) entries.
    pub ttl: Duration,
    /// Time-to-live for negative (infeasible) entries; keep this short so
    /// a transiently saturated ledger cannot keep rejecting a shape that
    /// has since become feasible.
    pub negative_ttl: Duration,
    /// How long a single-flight follower waits for the leader's plan
    /// before giving up and solving locally.
    pub flight_wait: Duration,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig {
            capacity: 4096,
            shards: 8,
            ttl: Duration::from_secs(5),
            negative_ttl: Duration::from_millis(250),
            flight_wait: Duration::from_millis(2),
        }
    }
}

impl PlanCacheConfig {
    /// Validates the knobs, returning a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 {
            return Err("plan cache capacity must be positive".into());
        }
        if self.shards == 0 {
            return Err("plan cache shard count must be positive".into());
        }
        if self.ttl.is_zero() || self.negative_ttl.is_zero() {
            return Err("plan cache TTLs must be positive".into());
        }
        if self.negative_ttl > self.ttl {
            return Err("negative TTL must not exceed the positive TTL".into());
        }
        Ok(())
    }
}

/// A cache hit: the memoized value plus whether it was a negative entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cached<V> {
    /// The memoized plan value.
    pub value: V,
    /// True for negative (infeasible-shape) entries.
    pub negative: bool,
}

struct Entry<V> {
    key: PlanKey,
    value: V,
    negative: bool,
    epoch: u64,
    expires: Instant,
    referenced: bool,
}

/// One independently locked cache shard running the CLOCK second-chance
/// policy over a fixed slot arena.
struct CacheShard<V> {
    map: HashMap<PlanKey, usize>,
    slots: Vec<Option<Entry<V>>>,
    free: Vec<usize>,
    hand: usize,
}

impl<V: Clone> CacheShard<V> {
    fn new(capacity: usize) -> Self {
        CacheShard {
            map: HashMap::with_capacity(capacity),
            slots: (0..capacity).map(|_| None).collect(),
            free: (0..capacity).rev().collect(),
            hand: 0,
        }
    }

    fn remove(&mut self, key: &PlanKey) -> bool {
        if let Some(slot) = self.map.remove(key) {
            self.slots[slot] = None;
            self.free.push(slot);
            true
        } else {
            false
        }
    }

    /// Claims a slot, evicting with second chance when the arena is full.
    /// Returns the slot index and whether an entry was evicted.
    fn claim_slot(&mut self) -> (usize, bool) {
        if let Some(slot) = self.free.pop() {
            return (slot, false);
        }
        let n = self.slots.len();
        // Two sweeps guarantee progress: the first clears reference bits,
        // the second finds an unreferenced victim.
        for _ in 0..2 * n {
            let slot = self.hand;
            self.hand = (self.hand + 1) % n;
            match &mut self.slots[slot] {
                Some(entry) if entry.referenced => entry.referenced = false,
                Some(entry) => {
                    let key = entry.key;
                    self.map.remove(&key);
                    self.slots[slot] = None;
                    return (slot, true);
                }
                None => return (slot, false),
            }
        }
        unreachable!("CLOCK sweep must find a victim within two passes");
    }
}

/// A concurrent, sharded plan cache with single-flight miss dedup.
///
/// Generic over the memoized value so the serve tier (full admission
/// plans) and the gateway tier (routing affinity) share one
/// implementation. All methods take `&self`; the cache is shared as an
/// `Arc` between shard workers.
pub struct PlanCache<V: Clone> {
    config: PlanCacheConfig,
    epoch: AtomicU64,
    /// Per-scope epochs for [`PlanCache::scoped_key`]: advancing one
    /// scope's epoch orphans only the keys minted under that scope.
    scopes: Mutex<HashMap<u64, u64>>,
    shards: Vec<Mutex<CacheShard<V>>>,
    pub(crate) flights: FlightTable<V>,
    pub(crate) stats: AtomicStats,
    pub(crate) mirror: Option<Mirror>,
}

/// Optional telemetry mirror of the always-on atomic stats, registered on
/// a caller-supplied [`Registry`] so exporters see `plancache.*` next to
/// the service's other series.
pub(crate) struct Mirror {
    pub hits: Arc<Counter>,
    pub misses: Arc<Counter>,
    pub evictions: Arc<Counter>,
    pub invalidations: Arc<Counter>,
    pub singleflight: Arc<Counter>,
}

impl<V: Clone> std::fmt::Debug for PlanCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("config", &self.config)
            .field("epoch", &self.epoch())
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<V: Clone> PlanCache<V> {
    /// Builds a cache with no telemetry mirror.
    pub fn new(config: PlanCacheConfig) -> Self {
        Self::build(config, None)
    }

    /// Builds a cache whose counters are mirrored onto `registry` as
    /// `plancache.hits` / `.misses` / `.evictions` / `.invalidations` /
    /// `.singleflight`.
    pub fn with_registry(config: PlanCacheConfig, registry: &Registry) -> Self {
        let mirror = Mirror {
            hits: registry.counter("plancache.hits"),
            misses: registry.counter("plancache.misses"),
            evictions: registry.counter("plancache.evictions"),
            invalidations: registry.counter("plancache.invalidations"),
            singleflight: registry.counter("plancache.singleflight"),
        };
        Self::build(config, Some(mirror))
    }

    fn build(config: PlanCacheConfig, mirror: Option<Mirror>) -> Self {
        let shards = config.shards.max(1);
        let per_shard = config.capacity.div_ceil(shards).max(1);
        PlanCache {
            config,
            epoch: AtomicU64::new(0),
            scopes: Mutex::new(HashMap::new()),
            shards: (0..shards).map(|_| Mutex::new(CacheShard::new(per_shard))).collect(),
            flights: FlightTable::new(),
            stats: AtomicStats::default(),
            mirror,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlanCacheConfig {
        &self.config
    }

    /// The current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Invalidates every resident entry in O(1) by advancing the epoch.
    /// Entries minted under older epochs are dropped lazily on next touch.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// The current epoch of `scope` (0 until first bumped). Scopes are
    /// caller-chosen 64-bit ids — a federated gateway uses the hash of
    /// the origin gateway's address, so plans minted while answering
    /// that peer's forwarded traffic key under the peer's epoch.
    pub fn scope_epoch(&self, scope: u64) -> u64 {
        self.scopes.lock().expect("plancache scopes poisoned").get(&scope).copied().unwrap_or(0)
    }

    /// Advances `scope`'s epoch, orphaning every key minted through
    /// [`PlanCache::scoped_key`] under that scope — O(1), without
    /// touching entries of other scopes or unscoped entries. A gateway
    /// calls this when a peer's load digest reports a new cluster epoch
    /// (or the peer dies), so a stale negative entry cached against the
    /// peer's *old* cluster state can never reject a forwarded shape
    /// the peer's *new* state could admit.
    pub fn bump_scope_epoch(&self, scope: u64) {
        *self.scopes.lock().expect("plancache scopes poisoned").entry(scope).or_insert(0) += 1;
        self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.mirror {
            m.invalidations.inc();
        }
    }

    /// Derives the cache key for `key` under `scope`: the scope id and
    /// its current epoch are folded into the generation component, so
    /// scoped entries (a) never collide with unscoped ones and (b) all
    /// become unreachable the moment [`PlanCache::bump_scope_epoch`]
    /// advances the scope. The orphans age out through TTL and CLOCK
    /// eviction like any cold entry.
    pub fn scoped_key(&self, key: PlanKey, scope: u64) -> PlanKey {
        let mut generation = key.generation;
        generation ^= scope.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        generation ^= self.scope_epoch(scope).wrapping_mul(0xA24B_AED4_963E_E407).rotate_left(23);
        PlanKey { generation, ..key }
    }

    fn shard_for(&self, key: &PlanKey) -> &Mutex<CacheShard<V>> {
        // The fingerprint is already a high-quality 64-bit hash; fold in
        // the bucket and generation so sibling keys spread across shards.
        let h = key.shape.0 ^ key.bucket as u64 ^ key.generation.rotate_left(17);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, returning the memoized value if present, same-epoch
    /// and unexpired. Stale entries are dropped in place and counted.
    pub fn lookup(&self, key: &PlanKey) -> Option<Cached<V>> {
        let _span = span!("plancache.lookup");
        let epoch = self.epoch();
        let now = Instant::now();
        let mut shard = self.shard_for(key).lock().expect("plancache shard poisoned");
        let Some(&slot) = shard.map.get(key) else {
            drop(shard);
            self.note_miss();
            return None;
        };
        let entry = shard.slots[slot].as_ref().expect("mapped slot must be occupied");
        if entry.epoch != epoch {
            shard.remove(key);
            drop(shard);
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.mirror {
                m.invalidations.inc();
            }
            self.note_miss();
            return None;
        }
        if entry.expires <= now {
            shard.remove(key);
            drop(shard);
            self.stats.expirations.fetch_add(1, Ordering::Relaxed);
            self.note_miss();
            return None;
        }
        let entry = shard.slots[slot].as_mut().expect("mapped slot must be occupied");
        entry.referenced = true;
        let cached = Cached { value: entry.value.clone(), negative: entry.negative };
        drop(shard);
        if cached.negative {
            self.stats.negative_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(m) = &self.mirror {
            m.hits.inc();
        }
        Some(cached)
    }

    fn note_miss(&self) {
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.mirror {
            m.misses.inc();
        }
    }

    /// Inserts (or overwrites) `key`. Negative entries get the shorter
    /// negative TTL. Entries are stamped with the current epoch.
    pub fn insert(&self, key: PlanKey, value: V, negative: bool) {
        let ttl = if negative { self.config.negative_ttl } else { self.config.ttl };
        let entry = Entry {
            key,
            value,
            negative,
            epoch: self.epoch(),
            expires: Instant::now() + ttl,
            referenced: true,
        };
        let mut shard = self.shard_for(&key).lock().expect("plancache shard poisoned");
        let evicted = if let Some(&slot) = shard.map.get(&key) {
            shard.slots[slot] = Some(entry);
            false
        } else {
            let (slot, evicted) = shard.claim_slot();
            shard.slots[slot] = Some(entry);
            shard.map.insert(key, slot);
            evicted
        };
        drop(shard);
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.mirror {
                m.evictions.inc();
            }
        }
    }

    /// Drops `key` after a hit whose plan failed re-validation against the
    /// live ledger, so the next request for the shape re-solves.
    pub fn note_validation_failure(&self, key: &PlanKey) {
        let removed = self.shard_for(key).lock().expect("plancache shard poisoned").remove(key);
        self.stats.validation_failures.fetch_add(1, Ordering::Relaxed);
        if removed {
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.mirror {
                m.invalidations.inc();
            }
        }
    }

    /// Number of resident entries (for tests and reporting).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("plancache shard poisoned").map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time snapshot of the cache statistics.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats.snapshot()
    }

    /// Misses for the same key coalesce onto one solver run: the first
    /// caller becomes the leader, everyone else a follower. See
    /// [`crate::singleflight`].
    pub fn begin_flight(&self, key: PlanKey) -> FlightAttempt<'_, V> {
        self.flights.begin(self, key)
    }

    /// Convenience wrapper for benchmarks and simple callers: looks up
    /// `key`, and on a miss either computes the value (as leader) or waits
    /// for the in-flight leader, retrying until a value is available.
    pub fn get_or_compute(&self, key: PlanKey, mut compute: impl FnMut() -> (V, bool)) -> V {
        loop {
            if let Some(cached) = self.lookup(&key) {
                return cached.value;
            }
            match self.begin_flight(key) {
                FlightAttempt::Leader(leader) => {
                    let (value, negative) = compute();
                    leader.complete(value.clone(), negative);
                    return value;
                }
                FlightAttempt::Follower(follower) => {
                    if let Some(cached) = follower.wait(self.config.flight_wait) {
                        return cached.value;
                    }
                    // Leader aborted or timed out; loop and try to lead.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::ShapeFingerprint;
    use std::thread;

    fn key(n: u64) -> PlanKey {
        PlanKey { shape: ShapeFingerprint(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)), bucket: 0, generation: 0 }
    }

    fn tiny(capacity: usize) -> PlanCache<u64> {
        PlanCache::new(PlanCacheConfig { capacity, shards: 1, ..Default::default() })
    }

    #[test]
    fn insert_then_lookup_hits() {
        let cache = tiny(8);
        cache.insert(key(1), 42, false);
        let hit = cache.lookup(&key(1)).expect("must hit");
        assert_eq!(hit.value, 42);
        assert!(!hit.negative);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 0, 1));
    }

    #[test]
    fn negative_entries_report_negative_hits() {
        let cache = tiny(8);
        cache.insert(key(2), 0, true);
        assert!(cache.lookup(&key(2)).expect("must hit").negative);
        assert_eq!(cache.stats().negative_hits, 1);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn ttl_expiry_forces_a_miss_and_negative_ttl_is_shorter() {
        let cache = PlanCache::new(PlanCacheConfig {
            capacity: 8,
            shards: 1,
            ttl: Duration::from_millis(50),
            negative_ttl: Duration::from_millis(5),
            ..Default::default()
        });
        cache.insert(key(1), 1, false);
        cache.insert(key(2), 2, true);
        thread::sleep(Duration::from_millis(10));
        // Negative entry lapsed, positive still live.
        assert!(cache.lookup(&key(2)).is_none());
        assert!(cache.lookup(&key(1)).is_some());
        thread::sleep(Duration::from_millis(50));
        assert!(cache.lookup(&key(1)).is_none());
        assert_eq!(cache.stats().expirations, 2);
    }

    #[test]
    fn epoch_bump_invalidates_everything_lazily() {
        let cache = tiny(8);
        for i in 0..4 {
            cache.insert(key(i), i, false);
        }
        cache.bump_epoch();
        for i in 0..4 {
            assert!(cache.lookup(&key(i)).is_none(), "entry {i} must be stale");
        }
        assert_eq!(cache.stats().invalidations, 4);
        // Re-inserted entries are valid under the new epoch.
        cache.insert(key(0), 7, false);
        assert_eq!(cache.lookup(&key(0)).expect("fresh entry").value, 7);
    }

    #[test]
    fn scoped_keys_are_disjoint_per_scope_and_from_unscoped_keys() {
        let cache = tiny(8);
        let base = key(1);
        let a = cache.scoped_key(base, 0xAA);
        let b = cache.scoped_key(base, 0xBB);
        assert_ne!(a, base, "scoped key must not alias the unscoped key");
        assert_ne!(a, b, "distinct scopes must not alias each other");
        cache.insert(a, 10, false);
        cache.insert(b, 20, false);
        cache.insert(base, 30, false);
        assert_eq!(cache.lookup(&a).expect("scope A entry").value, 10);
        assert_eq!(cache.lookup(&b).expect("scope B entry").value, 20);
        assert_eq!(cache.lookup(&base).expect("unscoped entry").value, 30);
    }

    #[test]
    fn bumping_a_scope_epoch_orphans_only_that_scope() {
        let cache = tiny(8);
        let base = key(1);
        let a = cache.scoped_key(base, 0xAA);
        let b = cache.scoped_key(base, 0xBB);
        cache.insert(a, 10, true); // stale negative entry from peer A's old cluster state
        cache.insert(b, 20, false);
        cache.insert(base, 30, false);
        assert_eq!(cache.scope_epoch(0xAA), 0);
        cache.bump_scope_epoch(0xAA);
        assert_eq!(cache.scope_epoch(0xAA), 1);
        // Scope A keys now derive differently: the old negative entry is
        // unreachable, while scope B and unscoped entries are untouched.
        assert!(cache.lookup(&cache.scoped_key(base, 0xAA)).is_none());
        assert_eq!(cache.lookup(&cache.scoped_key(base, 0xBB)).expect("scope B").value, 20);
        assert_eq!(cache.lookup(&base).expect("unscoped").value, 30);
        assert!(cache.stats().invalidations >= 1);
    }

    #[test]
    fn clock_eviction_gives_referenced_entries_a_second_chance() {
        let cache = tiny(4);
        for i in 0..4 {
            cache.insert(key(i), i, false);
        }
        // Inserts set the reference bit; a full first sweep clears them.
        // Touch key(0) right before overflowing so it survives the sweep
        // that evicts an untouched sibling.
        for i in 0..4 {
            assert!(cache.lookup(&key(i)).is_some());
        }
        cache.insert(key(4), 4, false);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 4);
        // The freshly inserted key must be resident.
        assert!(cache.lookup(&key(4)).is_some());
    }

    #[test]
    fn validation_failure_drops_the_entry() {
        let cache = tiny(8);
        cache.insert(key(1), 1, false);
        cache.note_validation_failure(&key(1));
        assert!(cache.lookup(&key(1)).is_none());
        let s = cache.stats();
        assert_eq!(s.validation_failures, 1);
        assert_eq!(s.invalidations, 1);
    }

    #[test]
    fn capacity_is_bounded_across_shards() {
        let cache = PlanCache::new(PlanCacheConfig { capacity: 64, shards: 8, ..Default::default() });
        for i in 0..1000 {
            cache.insert(key(i), i, false);
        }
        assert!(cache.len() <= 64, "len {} exceeds capacity", cache.len());
        assert!(cache.stats().evictions >= 1000 - 64);
    }

    #[test]
    fn get_or_compute_runs_compute_once_per_residency() {
        let cache = tiny(8);
        let mut calls = 0;
        for _ in 0..5 {
            let v = cache.get_or_compute(key(9), || {
                calls += 1;
                (99, false)
            });
            assert_eq!(v, 99);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(PlanCacheConfig::default().validate().is_ok());
        assert!(PlanCacheConfig { capacity: 0, ..Default::default() }.validate().is_err());
        assert!(PlanCacheConfig { shards: 0, ..Default::default() }.validate().is_err());
        assert!(PlanCacheConfig { ttl: Duration::ZERO, ..Default::default() }.validate().is_err());
        assert!(PlanCacheConfig { negative_ttl: Duration::from_secs(60), ..Default::default() }
            .validate()
            .is_err());
    }
}

//! Canonical task-shape fingerprints and coarse budget buckets.
//!
//! A *shape* is everything about a submission that determines what the
//! solver would plan for it, and nothing else: the task's QoS targets,
//! radio conditions, quality ladder and the full option set it may be
//! served with. Identity fields (`TaskId`, the display `name`, option
//! `label`s) are deliberately excluded, so two requests that differ only
//! in identity hash to the same key and can share a cached plan.
//!
//! Floats are quantized to 1e-6 before hashing, making the fingerprint a
//! total function (no NaN/−0.0 pitfalls) and collapsing sub-microscopic
//! jitter that cannot change a plan. Hashing is FNV-1a/64 with explicit
//! field framing — stable across processes, platforms and `HashMap`
//! seeds, unlike `std::hash::Hasher` implementations.

use offloadnn_core::instance::{Budgets, PathOption};
use offloadnn_core::task::Task;

/// A stable 64-bit fingerprint of a task shape (task QoS + option set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeFingerprint(pub u64);

/// Cache key: shape fingerprint, coarse budget bucket and ring generation.
///
/// The generation component makes every reshard/repartition an implicit
/// flush for free — keys minted under the old ring can never match — while
/// the [`epoch`](crate::PlanCache::bump_epoch) mechanism handles validity
/// events that do *not* change the generation (heals, explicit flushes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Canonical shape fingerprint of (task, options).
    pub shape: ShapeFingerprint,
    /// Coarse headroom bucket from [`budget_bucket`].
    pub bucket: u16,
    /// Ring generation the plan was minted under.
    pub generation: u64,
}

/// FNV-1a 64-bit, the same construction the wire checksum and rendezvous
/// router already use — dependency-free and stable by definition.
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(quantize(v));
    }
}

/// Quantizes a float to 1e-6 resolution as a sign-preserving integer.
/// Non-finite values saturate instead of poisoning the hash.
fn quantize(v: f64) -> u64 {
    let scaled = v * 1e6;
    let q = if scaled.is_nan() {
        i64::MIN
    } else if scaled >= i64::MAX as f64 {
        i64::MAX
    } else if scaled <= i64::MIN as f64 {
        i64::MIN
    } else {
        scaled.round() as i64
    };
    q as u64
}

/// Computes the canonical fingerprint of `(task, options)`.
///
/// Included: group, priority, request rate, accuracy and latency targets,
/// SNR, difficulty, the quality ladder, and for every option (in order)
/// the path's model/group/config/pruned flag/block list plus its quality,
/// accuracy and compute costs. Excluded: `task.id`, `task.name` and
/// option `label`s — display-only identity.
pub fn shape_fingerprint(task: &Task, options: &[PathOption]) -> ShapeFingerprint {
    let mut h = Fnv::new();
    h.write_u64(u64::from(task.group.0));
    h.write_f64(task.priority);
    h.write_f64(task.request_rate);
    h.write_f64(task.min_accuracy);
    h.write_f64(task.max_latency);
    h.write_f64(task.snr.0);
    h.write_f64(task.difficulty);
    h.write_u64(task.qualities.len() as u64);
    for q in &task.qualities {
        h.write_f64(q.quality);
        h.write_f64(q.bits);
    }
    h.write_u64(options.len() as u64);
    for opt in options {
        h.write_u64(u64::from(opt.path.model.0));
        h.write_u64(u64::from(opt.path.group.0));
        // `shared_prefix()` is injective over the five Table I configs.
        h.write_u64(opt.path.config.config.shared_prefix() as u64);
        h.write_u64(u64::from(opt.path.config.pruned));
        h.write_u64(opt.path.blocks.len() as u64);
        for b in &opt.path.blocks {
            h.write_u64(u64::from(b.0));
        }
        h.write_f64(opt.quality.quality);
        h.write_f64(opt.quality.bits);
        h.write_f64(opt.accuracy);
        h.write_f64(opt.proc_seconds);
        h.write_f64(opt.training_seconds);
    }
    ShapeFingerprint(h.0)
}

/// Buckets live headroom into 4 coarse levels per budget dimension
/// (radio, compute, memory), packed into 6 bits.
///
/// The bucket only has to be coarse enough to *hit* often and fine enough
/// that a cached plan usually survives re-validation — correctness never
/// depends on it, because every hit is re-validated against the live
/// ledger before any budget is consumed.
pub fn budget_bucket(headroom: &Budgets, total: &Budgets) -> u16 {
    fn level(headroom: f64, total: f64) -> u16 {
        if total <= 0.0 {
            return 0;
        }
        let f = (headroom / total).clamp(0.0, 1.0);
        if f >= 0.75 {
            3
        } else if f >= 0.5 {
            2
        } else if f >= 0.25 {
            1
        } else {
            0
        }
    }
    level(headroom.rbs, total.rbs)
        | level(headroom.compute_seconds, total.compute_seconds) << 2
        | level(headroom.memory_bytes, total.memory_bytes) << 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_core::task::TaskId;

    fn sample_budgets(rbs: f64, compute: f64, memory: f64) -> Budgets {
        Budgets { rbs, compute_seconds: compute, training_seconds: 10.0, memory_bytes: memory }
    }

    #[test]
    fn fingerprint_ignores_identity_fields() {
        let scenario = offloadnn_core::scenario::small_scenario(3);
        let task = scenario.instance.tasks[0].clone();
        let options = scenario.instance.options[0].clone();

        let mut renamed = task.clone();
        renamed.id = TaskId(9_999);
        renamed.name = "totally-different".into();
        let mut relabeled = options.clone();
        for o in &mut relabeled {
            o.label = "x".into();
        }
        assert_eq!(shape_fingerprint(&task, &options), shape_fingerprint(&renamed, &relabeled));
    }

    #[test]
    fn fingerprint_distinguishes_qos_changes() {
        let scenario = offloadnn_core::scenario::small_scenario(3);
        let task = scenario.instance.tasks[0].clone();
        let options = scenario.instance.options[0].clone();
        let base = shape_fingerprint(&task, &options);

        let mut t = task.clone();
        t.min_accuracy += 0.01;
        assert_ne!(base, shape_fingerprint(&t, &options));

        let mut t = task.clone();
        t.max_latency *= 1.5;
        assert_ne!(base, shape_fingerprint(&t, &options));

        let mut fewer = options.clone();
        fewer.pop();
        assert_ne!(base, shape_fingerprint(&task, &fewer));
    }

    #[test]
    fn quantize_handles_non_finite_values() {
        assert_eq!(quantize(f64::NAN), i64::MIN as u64);
        assert_eq!(quantize(f64::INFINITY), i64::MAX as u64);
        assert_eq!(quantize(f64::NEG_INFINITY), i64::MIN as u64);
        assert_eq!(quantize(0.0), quantize(-0.0));
        assert_eq!(quantize(1.0), 1_000_000);
    }

    #[test]
    fn bucket_levels_partition_headroom() {
        let total = sample_budgets(100.0, 10.0, 1e9);
        assert_eq!(budget_bucket(&total, &total), 3 | 3 << 2 | 3 << 4);
        let empty = sample_budgets(0.0, 0.0, 0.0);
        assert_eq!(budget_bucket(&empty, &total), 0);
        let mixed = sample_budgets(60.0, 2.0, 0.9e9);
        assert_eq!(budget_bucket(&mixed, &total), 2 | 3 << 4); // rbs=2, compute=0, memory=3
                                                               // Degenerate totals never divide by zero.
        assert_eq!(budget_bucket(&total, &empty), 0);
    }
}

//! The concrete plan value memoized by the serve tier.

/// A memoized solver decision for one task shape.
///
/// The cache stores the *plan* — which option to run and how much to
/// grant — never the verdict. An `Admit` plan is only a proposal: on every
/// hit it is re-validated against the live ledger
/// (`Controller::try_apply_plan`) before any budget moves, and falls
/// through to a cold solve if validation fails.
///
/// The serve tier only mints `Admit` entries for *full* admissions
/// (`z = 1`): a full grant's sizing is the shape's unconstrained optimum
/// (rate-driven RBs, independent of residual headroom), so a validated
/// replay hands out what a fresh solve grants whenever the ledger has
/// slack. Partial grants are shaped by the exact residual at solve time
/// and are never memoized — replaying one later would apply a stale
/// fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachedPlan {
    /// Admit on `options[option]` with this admission fraction and RB grant.
    Admit {
        /// Index into the request's option slice.
        option: usize,
        /// Admission fraction `z` in `(0, 1]`.
        admission: f64,
        /// Radio resource blocks `r` granted.
        rbs: f64,
    },
    /// The shape was infeasible when last solved (negative entry; cached
    /// under the shorter negative TTL).
    ///
    /// Unlike an `Admit` plan there is nothing to re-validate — the
    /// rejection depends on the whole ledger, not one task's footprint —
    /// so the entry carries the minting shard's ledger stamp instead. A
    /// hit replays the rejection only while the stamp still matches
    /// (i.e. the ledger has not moved since the solver said no); any
    /// admit, departure, adoption or reshard bumps the stamp and the
    /// next hit falls through to a fresh solve. With a deterministic
    /// solver this makes negative hits bit-identical to cold solves.
    Infeasible {
        /// [`ledger stamp`](CachedPlan::Infeasible) of the shard whose
        /// solver produced the rejection, at mint time.
        ledger: u64,
    },
}

impl CachedPlan {
    /// Whether this is a negative (infeasible-shape) entry.
    pub fn is_negative(&self) -> bool {
        matches!(self, CachedPlan::Infeasible { .. })
    }
}

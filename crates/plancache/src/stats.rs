//! Always-on cache statistics, independent of the telemetry feature.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free internal counters. Relaxed ordering is fine: each counter is
/// an independent monotonic tally, never used to synchronize memory.
#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    pub hits: AtomicU64,
    pub negative_hits: AtomicU64,
    pub misses: AtomicU64,
    pub inserts: AtomicU64,
    pub evictions: AtomicU64,
    pub invalidations: AtomicU64,
    pub expirations: AtomicU64,
    pub validation_failures: AtomicU64,
    pub singleflight_leads: AtomicU64,
    pub singleflight_followers: AtomicU64,
    pub singleflight_timeouts: AtomicU64,
}

impl AtomicStats {
    pub fn snapshot(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            negative_hits: self.negative_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            validation_failures: self.validation_failures.load(Ordering::Relaxed),
            singleflight_leads: self.singleflight_leads.load(Ordering::Relaxed),
            singleflight_followers: self.singleflight_followers.load(Ordering::Relaxed),
            singleflight_timeouts: self.singleflight_timeouts.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of cache statistics.
///
/// Counters are monotonic over the cache's lifetime; rates derived from a
/// single snapshot are cumulative, not windowed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that returned a positive (admit) plan.
    pub hits: u64,
    /// Lookups that returned a negative (infeasible-shape) entry.
    pub negative_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries written (fresh inserts and overwrites).
    pub inserts: u64,
    /// Entries displaced by CLOCK second-chance eviction.
    pub evictions: u64,
    /// Entries dropped by epoch bumps or explicit invalidation
    /// (validation failures included).
    pub invalidations: u64,
    /// Entries dropped because their TTL lapsed.
    pub expirations: u64,
    /// Cache hits whose plan failed re-validation against the live ledger.
    pub validation_failures: u64,
    /// Misses that became single-flight leaders (ran the solver).
    pub singleflight_leads: u64,
    /// Misses that waited on another request's in-flight solve.
    pub singleflight_followers: u64,
    /// Followers that timed out waiting and solved locally.
    pub singleflight_timeouts: u64,
}

impl PlanCacheStats {
    /// Total lookups served (hits + negative hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.negative_hits + self.misses
    }

    /// Fraction of lookups answered from cache, in `[0, 1]`.
    /// Zero lookups yields 0.0.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.hits + self.negative_hits) as f64 / lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_counts_negative_hits_and_handles_zero() {
        assert_eq!(PlanCacheStats::default().hit_rate(), 0.0);
        let s = PlanCacheStats { hits: 6, negative_hits: 2, misses: 2, ..Default::default() };
        assert_eq!(s.lookups(), 10);
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
    }
}

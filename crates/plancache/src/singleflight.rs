//! Single-flight dedup: concurrent misses for one key run the solver once.
//!
//! The first miss for a key becomes the *leader* and owns the solve;
//! later misses become *followers* that block (briefly, with a timeout)
//! on the leader's result. A leader that is dropped without completing —
//! solver error, shard panic, round abandoned — aborts the flight and
//! wakes every follower so they fall back to a local solve; nobody waits
//! on a corpse.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::cache::{Cached, PlanCache};
use crate::fingerprint::PlanKey;

enum FlightState<V> {
    Pending,
    Done(Cached<V>),
    Aborted,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Self {
        Flight { state: Mutex::new(FlightState::Pending), cv: Condvar::new() }
    }

    fn settle(&self, state: FlightState<V>) {
        *self.state.lock().expect("flight state poisoned") = state;
        self.cv.notify_all();
    }
}

/// The per-cache registry of in-flight solves.
pub(crate) struct FlightTable<V> {
    inner: Mutex<HashMap<PlanKey, Arc<Flight<V>>>>,
}

impl<V: Clone> FlightTable<V> {
    pub(crate) fn new() -> Self {
        FlightTable { inner: Mutex::new(HashMap::new()) }
    }

    pub(crate) fn begin<'a>(&'a self, cache: &'a PlanCache<V>, key: PlanKey) -> FlightAttempt<'a, V> {
        let mut table = self.inner.lock().expect("flight table poisoned");
        if let Some(flight) = table.get(&key) {
            let flight = Arc::clone(flight);
            drop(table);
            cache.stats.singleflight_followers.fetch_add(1, Ordering::Relaxed);
            FlightAttempt::Follower(FlightFollower { cache, flight })
        } else {
            let flight = Arc::new(Flight::new());
            table.insert(key, Arc::clone(&flight));
            drop(table);
            cache.stats.singleflight_leads.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &cache.mirror {
                m.singleflight.inc();
            }
            FlightAttempt::Leader(FlightLeader { cache, key, flight, finished: false })
        }
    }

    /// Unregisters `flight` from `key`, but only if it is still the
    /// registered one — a replacement flight started after an abort must
    /// not be evicted by the late cleanup of its predecessor.
    fn unregister(&self, key: &PlanKey, flight: &Arc<Flight<V>>) {
        let mut table = self.inner.lock().expect("flight table poisoned");
        if table.get(key).is_some_and(|f| Arc::ptr_eq(f, flight)) {
            table.remove(key);
        }
    }
}

/// The outcome of [`PlanCache::begin_flight`]: lead the solve or follow
/// an in-flight one.
pub enum FlightAttempt<'a, V: Clone> {
    /// This caller owns the solve; it must call [`FlightLeader::complete`]
    /// (or drop the leader to abort the flight).
    Leader(FlightLeader<'a, V>),
    /// Another caller is already solving this key.
    Follower(FlightFollower<'a, V>),
}

/// Ownership of an in-flight solve for one key.
pub struct FlightLeader<'a, V: Clone> {
    cache: &'a PlanCache<V>,
    key: PlanKey,
    flight: Arc<Flight<V>>,
    finished: bool,
}

impl<V: Clone> FlightLeader<'_, V> {
    /// Publishes the solved plan: inserts it into the cache, then fans it
    /// out to every waiting follower.
    pub fn complete(mut self, value: V, negative: bool) {
        self.cache.insert(self.key, value.clone(), negative);
        self.flight.settle(FlightState::Done(Cached { value, negative }));
        self.cache.flights.unregister(&self.key, &self.flight);
        self.finished = true;
    }

    /// The key this leader is solving for.
    pub fn key(&self) -> PlanKey {
        self.key
    }
}

impl<V: Clone> Drop for FlightLeader<'_, V> {
    fn drop(&mut self) {
        if !self.finished {
            self.flight.settle(FlightState::Aborted);
            self.cache.flights.unregister(&self.key, &self.flight);
        }
    }
}

/// A handle on someone else's in-flight solve.
pub struct FlightFollower<'a, V: Clone> {
    cache: &'a PlanCache<V>,
    flight: Arc<Flight<V>>,
}

impl<V: Clone> FlightFollower<'_, V> {
    /// Waits up to `timeout` for the leader's plan. Returns `None` on
    /// timeout (counted) or if the leader aborted — in both cases the
    /// caller should solve locally.
    pub fn wait(&self, timeout: Duration) -> Option<Cached<V>> {
        let guard = self.flight.state.lock().expect("flight state poisoned");
        let (guard, _timeout_result) = self
            .flight
            .cv
            .wait_timeout_while(guard, timeout, |state| matches!(state, FlightState::Pending))
            .expect("flight state poisoned");
        match &*guard {
            FlightState::Done(cached) => Some(cached.clone()),
            FlightState::Aborted => None,
            FlightState::Pending => {
                self.cache.stats.singleflight_timeouts.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PlanCacheConfig;
    use crate::fingerprint::ShapeFingerprint;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    fn key(n: u64) -> PlanKey {
        PlanKey { shape: ShapeFingerprint(n), bucket: 0, generation: 0 }
    }

    fn cache() -> PlanCache<u64> {
        PlanCache::new(PlanCacheConfig::default())
    }

    #[test]
    fn second_miss_becomes_follower_and_receives_the_plan() {
        let cache = cache();
        let leader = match cache.begin_flight(key(1)) {
            FlightAttempt::Leader(l) => l,
            FlightAttempt::Follower(_) => panic!("first miss must lead"),
        };
        let follower = match cache.begin_flight(key(1)) {
            FlightAttempt::Follower(f) => f,
            FlightAttempt::Leader(_) => panic!("second miss must follow"),
        };
        leader.complete(77, false);
        assert_eq!(follower.wait(Duration::from_secs(1)).expect("fanned out").value, 77);
        let s = cache.stats();
        assert_eq!((s.singleflight_leads, s.singleflight_followers, s.singleflight_timeouts), (1, 1, 0));
        // The plan also landed in the cache for later arrivals.
        assert_eq!(cache.lookup(&key(1)).expect("cached").value, 77);
    }

    #[test]
    fn aborted_leader_wakes_followers_and_frees_the_key() {
        let cache = cache();
        let leader = match cache.begin_flight(key(2)) {
            FlightAttempt::Leader(l) => l,
            FlightAttempt::Follower(_) => panic!("must lead"),
        };
        let follower = match cache.begin_flight(key(2)) {
            FlightAttempt::Follower(f) => f,
            FlightAttempt::Leader(_) => panic!("must follow"),
        };
        drop(leader);
        assert!(follower.wait(Duration::from_secs(1)).is_none());
        // The key is leadable again.
        assert!(matches!(cache.begin_flight(key(2)), FlightAttempt::Leader(_)));
    }

    #[test]
    fn follower_timeout_is_counted() {
        let cache = cache();
        let _leader = match cache.begin_flight(key(3)) {
            FlightAttempt::Leader(l) => l,
            FlightAttempt::Follower(_) => panic!("must lead"),
        };
        let follower = match cache.begin_flight(key(3)) {
            FlightAttempt::Follower(f) => f,
            FlightAttempt::Leader(_) => panic!("must follow"),
        };
        assert!(follower.wait(Duration::from_millis(5)).is_none());
        assert_eq!(cache.stats().singleflight_timeouts, 1);
    }

    #[test]
    fn concurrent_misses_compute_exactly_once() {
        let cache = Arc::new(cache());
        let computes = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                thread::spawn(move || {
                    cache.get_or_compute(key(4), || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        // Hold the flight open long enough for followers
                        // to actually block on it.
                        thread::sleep(Duration::from_millis(20));
                        (123, false)
                    })
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().expect("thread panicked"), 123);
        }
        assert_eq!(computes.load(Ordering::Relaxed), 1, "solver must run once");
    }
}

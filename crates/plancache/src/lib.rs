//! Concurrent admission plan cache for repeat task shapes.
//!
//! Edge CV workloads are dominated by *repeat shapes*: the same model
//! family, accuracy target and latency class arriving over and over with
//! fresh identities. The OffloaDNN heuristic nevertheless rebuilds the
//! feasible-path clique and re-solves the convex `(z, r)` allocation from
//! scratch for every submission. This crate memoizes the solver's *plan*
//! — which DNN path to run, at what admission fraction and RB grant —
//! never its verdict:
//!
//! - **Key** = [`shape_fingerprint`] (canonical FNV-1a/64 over the QoS
//!   and option-set fields, identity excluded) + [`budget_bucket`]
//!   (coarse headroom level) + ring generation — see [`PlanKey`].
//! - **Hit** = a proposal only. Admission re-validates the plan against
//!   the live ledger (`Controller::try_apply_plan`) and falls through to
//!   a cold solve when validation fails, so budget conservation never
//!   depends on cache freshness.
//! - **Miss** = single-flight: concurrent misses for one key coalesce
//!   onto one solver run whose plan fans out to all waiters
//!   ([`singleflight`]).
//! - **Staleness** = bounded capacity with CLOCK second-chance eviction,
//!   per-entry TTL (shorter for negative entries), and O(1) epoch
//!   invalidation ([`PlanCache::bump_epoch`]) wired to reshards, budget
//!   repartitions and chaos heals.
//!
//! The cache is generic over the memoized value: the serve tier stores
//! full [`CachedPlan`]s, the gateway tier stores routing affinity.
//!
//! # Example
//!
//! ```
//! use offloadnn_plancache::{CachedPlan, PlanCache, PlanCacheConfig, PlanKey, ShapeFingerprint};
//!
//! let cache: PlanCache<CachedPlan> = PlanCache::new(PlanCacheConfig::default());
//! let key = PlanKey { shape: ShapeFingerprint(42), bucket: 0, generation: 0 };
//! cache.insert(key, CachedPlan::Admit { option: 0, admission: 1.0, rbs: 4.0 }, false);
//! assert!(cache.lookup(&key).is_some());
//! cache.bump_epoch(); // e.g. the service resharded
//! assert!(cache.lookup(&key).is_none());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
pub mod fingerprint;
mod plan;
pub mod singleflight;
mod stats;

pub use cache::{Cached, PlanCache, PlanCacheConfig};
pub use fingerprint::{budget_bucket, shape_fingerprint, PlanKey, ShapeFingerprint};
pub use plan::CachedPlan;
pub use singleflight::{FlightAttempt, FlightFollower, FlightLeader};
pub use stats::PlanCacheStats;

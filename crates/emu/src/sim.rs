//! The edge/radio emulator: UEs generate task requests, admitted images
//! are serialised over per-task radio slices, and the edge GPU serves
//! inferences FIFO — a faithful queueing abstraction of the Colosseum
//! setup of Sec. V-B.

use crate::event::{EventKind, EventQueue};
use crate::report::{EmulationReport, LatencySample, TaskStats};
use offloadnn_radio::{ArrivalProcess, Arrivals};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One deployed task: the output of the OffloaDNN controller for a task,
/// as configured into the radio and compute environment (steps 4–6 of
/// Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDeployment {
    /// Task name (for reports).
    pub name: String,
    /// RBs allocated to the task's slice.
    pub slice_rbs: u32,
    /// Bits per uploaded image (`beta(q)`).
    pub bits_per_image: f64,
    /// Bits per second per RB (`B(sigma)`).
    pub bits_per_rb: f64,
    /// Inference processing time of the selected path (s/request).
    pub proc_seconds: f64,
    /// Admission ratio `z`: the UE thins its request stream to this
    /// fraction.
    pub admission: f64,
    /// Request generation process *before* thinning.
    pub arrivals: ArrivalProcess,
    /// Latency target `L_tau` (for deadline accounting).
    pub max_latency: f64,
}

/// Same-task inference batching on the edge GPU (an extension in the
/// spirit of the batch-aware related work the paper cites).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Maximum images batched into one GPU launch.
    pub max_batch: usize,
    /// Marginal service time of each extra image, as a fraction of the
    /// single-image time (amortised kernel launches and weight loads make
    /// this well below 1 on real GPUs).
    pub marginal_cost: f64,
}

impl BatchPolicy {
    /// Service time of a batch of `n` images whose single-image time is
    /// `single`.
    pub fn service_seconds(&self, single: f64, n: usize) -> f64 {
        single * (1.0 + self.marginal_cost * (n.saturating_sub(1)) as f64)
    }
}

/// How the cell's RBs serve the tasks' uplinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RadioMode {
    /// Hard slicing: each task transmits only over its own `slice_rbs`
    /// (the SCOPE-configured isolation of Sec. V-B).
    #[default]
    HardSlices,
    /// A shared pool: all admitted images queue FIFO for the *sum* of the
    /// slices' RBs — statistical multiplexing without isolation.
    SharedPool,
}

/// Emulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmulatorConfig {
    /// Emulated duration in seconds.
    pub duration: f64,
    /// RNG seed (thinning + jitter).
    pub seed: u64,
    /// Number of inferences (or batches) the GPU can run concurrently.
    pub gpu_concurrency: usize,
    /// Same-task batching; `None` serves one image per launch.
    pub batching: Option<BatchPolicy>,
    /// Uplink discipline.
    pub radio_mode: RadioMode,
    /// Relative standard deviation of per-image link-rate jitter
    /// (fast fading); 0 disables.
    pub link_jitter: f64,
    /// Relative standard deviation of per-inference compute jitter; 0
    /// disables.
    pub compute_jitter: f64,
}

impl EmulatorConfig {
    /// 20 s run, mild jitter, no batching — mirrors Fig. 11's setup.
    pub fn reference() -> Self {
        Self {
            duration: 20.0,
            seed: 7,
            gpu_concurrency: 1,
            batching: None,
            radio_mode: RadioMode::HardSlices,
            link_jitter: 0.05,
            compute_jitter: 0.05,
        }
    }
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        Self::reference()
    }
}

/// Errors from the emulator.
#[derive(Debug, Clone, PartialEq)]
pub enum EmuError {
    /// A deployment is malformed (zero rate/capacity).
    BadDeployment {
        /// Task index.
        task: usize,
        /// Description.
        reason: &'static str,
    },
}

impl std::fmt::Display for EmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmuError::BadDeployment { task, reason } => write!(f, "task {task}: {reason}"),
        }
    }
}

impl std::error::Error for EmuError {}

struct UplinkState {
    /// Images waiting for (or in) transmission: (task, request id).
    queue: VecDeque<(usize, u64)>,
    /// Whether a transmission is in progress.
    busy: bool,
}

#[derive(Clone)]
struct Pending {
    arrival: f64,
}

/// Runs the emulation.
///
/// # Errors
///
/// Returns [`EmuError`] if a deployment has a zero-capacity slice with
/// non-zero admission.
pub fn run(tasks: &[TaskDeployment], cfg: &EmulatorConfig) -> Result<EmulationReport, EmuError> {
    for (i, t) in tasks.iter().enumerate() {
        if t.admission > 0.0 && (t.slice_rbs == 0 || t.bits_per_rb <= 0.0) {
            return Err(EmuError::BadDeployment {
                task: i,
                reason: "admitted task with zero slice capacity",
            });
        }
        if t.bits_per_image <= 0.0 {
            return Err(EmuError::BadDeployment { task: i, reason: "non-positive image size" });
        }
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut queue = EventQueue::new();
    let mut stats: Vec<TaskStats> = tasks.iter().map(|t| TaskStats::new(&t.name, t.max_latency)).collect();
    let mut samples: Vec<Vec<LatencySample>> = vec![Vec::new(); tasks.len()];

    // Pre-generate arrivals within the horizon.
    for (t, dep) in tasks.iter().enumerate() {
        for time in Arrivals::new(dep.arrivals, cfg.seed.wrapping_add(t as u64 * 7919)) {
            if time > cfg.duration {
                break;
            }
            queue.push(time, EventKind::Arrival { task: t });
        }
    }

    let mut uplinks: Vec<UplinkState> =
        tasks.iter().map(|_| UplinkState { queue: VecDeque::new(), busy: false }).collect();
    let mut pending: Vec<std::collections::HashMap<u64, Pending>> = vec![Default::default(); tasks.len()];
    let mut next_req: Vec<u64> = vec![0; tasks.len()];

    // GPU: fixed concurrency, FIFO backlog of (task, request, uplink done).
    let mut gpu_backlog: VecDeque<(usize, u64)> = VecDeque::new();
    let mut gpu_in_flight: usize = 0;
    let mut gpu_busy_until_sum = 0.0f64; // accumulated busy seconds

    let jitter = |rng: &mut StdRng, rel: f64| -> f64 {
        if rel <= 0.0 {
            1.0
        } else {
            // Two-uniform approximation of a normal, clamped positive.
            let u: f64 = rng.random_range(-1.0..1.0) + rng.random_range(-1.0..1.0);
            (1.0 + rel * u * std::f64::consts::FRAC_1_SQRT_2).max(0.2)
        }
    };

    while let Some(ev) = queue.pop() {
        // The horizon is a hard stop: whatever is still in the pipeline
        // stays in flight (and is reported as such).
        if ev.time > cfg.duration {
            break;
        }
        let _step = offloadnn_telemetry::span!("emu.step");
        match ev.kind {
            EventKind::Arrival { task } => {
                offloadnn_telemetry::count!("emu.arrivals");
                let dep = &tasks[task];
                stats[task].generated += 1;
                // UE-side thinning to the admission ratio.
                let admitted = dep.admission > 0.0
                    && (dep.admission >= 1.0 || rng.random_range(0.0..1.0) < dep.admission);
                if !admitted {
                    stats[task].thinned += 1;
                    continue;
                }
                stats[task].admitted += 1;
                let req = next_req[task];
                next_req[task] += 1;
                pending[task].insert(req, Pending { arrival: ev.time });
                let lane = match cfg.radio_mode {
                    RadioMode::HardSlices => task,
                    RadioMode::SharedPool => 0,
                };
                uplinks[lane].queue.push_back((task, req));
                if !uplinks[lane].busy {
                    start_uplink(lane, ev.time, tasks, &mut uplinks, &mut queue, &mut rng, cfg, &jitter);
                }
            }
            EventKind::UplinkDone { task, request } => {
                offloadnn_telemetry::count!("emu.uplinks");
                let lane = match cfg.radio_mode {
                    RadioMode::HardSlices => task,
                    RadioMode::SharedPool => 0,
                };
                uplinks[lane].busy = false;
                if !uplinks[lane].queue.is_empty() {
                    start_uplink(lane, ev.time, tasks, &mut uplinks, &mut queue, &mut rng, cfg, &jitter);
                }
                gpu_backlog.push_back((task, request));
                drain_gpu(
                    ev.time,
                    tasks,
                    &mut gpu_backlog,
                    &mut gpu_in_flight,
                    &mut gpu_busy_until_sum,
                    &mut queue,
                    &mut rng,
                    cfg,
                    &jitter,
                );
            }
            EventKind::InferenceDone { task, request, releases_slot } => {
                offloadnn_telemetry::count!("emu.inferences");
                if releases_slot {
                    gpu_in_flight -= 1;
                }
                let p = pending[task].remove(&request).expect("completion for unknown request");
                let latency = ev.time - p.arrival;
                stats[task].completed += 1;
                if latency > tasks[task].max_latency {
                    stats[task].deadline_misses += 1;
                }
                samples[task].push(LatencySample { completed_at: ev.time, latency });
                drain_gpu(
                    ev.time,
                    tasks,
                    &mut gpu_backlog,
                    &mut gpu_in_flight,
                    &mut gpu_busy_until_sum,
                    &mut queue,
                    &mut rng,
                    cfg,
                    &jitter,
                );
            }
        }
    }

    for (t, p) in pending.iter().enumerate() {
        stats[t].in_flight_at_end = p.len() as u64;
    }

    Ok(EmulationReport { duration: cfg.duration, stats, samples, gpu_busy_seconds: gpu_busy_until_sum })
}

#[allow(clippy::too_many_arguments)]
fn start_uplink(
    lane: usize,
    now: f64,
    tasks: &[TaskDeployment],
    uplinks: &mut [UplinkState],
    queue: &mut EventQueue,
    rng: &mut StdRng,
    cfg: &EmulatorConfig,
    jitter: &impl Fn(&mut StdRng, f64) -> f64,
) {
    if let Some((task, req)) = uplinks[lane].queue.pop_front() {
        uplinks[lane].busy = true;
        let dep = &tasks[task];
        let rbs = match cfg.radio_mode {
            RadioMode::HardSlices => dep.slice_rbs as f64,
            // The pool transmits one image at a time over every RB any
            // slice contributed.
            RadioMode::SharedPool => tasks.iter().map(|t| t.slice_rbs as f64).sum(),
        };
        let rate = dep.bits_per_rb * rbs * jitter(rng, cfg.link_jitter);
        let tx = dep.bits_per_image / rate;
        queue.push(now + tx, EventKind::UplinkDone { task, request: req });
    }
}

#[allow(clippy::too_many_arguments)]
fn drain_gpu(
    now: f64,
    tasks: &[TaskDeployment],
    backlog: &mut VecDeque<(usize, u64)>,
    in_flight: &mut usize,
    busy_sum: &mut f64,
    queue: &mut EventQueue,
    rng: &mut StdRng,
    cfg: &EmulatorConfig,
    jitter: &impl Fn(&mut StdRng, f64) -> f64,
) {
    while *in_flight < cfg.gpu_concurrency {
        let Some((task, request)) = backlog.pop_front() else {
            break;
        };
        // With batching enabled, pull further backlog images of the same
        // task (same resident DNN) into this launch.
        let mut members = vec![request];
        if let Some(policy) = cfg.batching {
            let mut i = 0;
            while members.len() < policy.max_batch.max(1) && i < backlog.len() {
                if backlog[i].0 == task {
                    let (_, req) = backlog.remove(i).expect("index checked");
                    members.push(req);
                } else {
                    i += 1;
                }
            }
        }
        let single = tasks[task].proc_seconds * jitter(rng, cfg.compute_jitter);
        let service = match cfg.batching {
            Some(policy) => policy.service_seconds(single, members.len()),
            None => single,
        };
        *in_flight += 1;
        *busy_sum += service;
        for (i, req) in members.into_iter().enumerate() {
            queue.push(now + service, EventKind::InferenceDone { task, request: req, releases_slot: i == 0 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(rbs: u32, lambda: f64, admission: f64) -> TaskDeployment {
        TaskDeployment {
            name: "t".into(),
            slice_rbs: rbs,
            bits_per_image: 350e3,
            bits_per_rb: 0.35e6,
            proc_seconds: 0.005,
            admission,
            arrivals: ArrivalProcess::Periodic { rate_hz: lambda },
            max_latency: 0.3,
        }
    }

    fn quiet(cfg: &mut EmulatorConfig) {
        cfg.link_jitter = 0.0;
        cfg.compute_jitter = 0.0;
    }

    #[test]
    fn conservation_of_requests() {
        let mut cfg = EmulatorConfig::reference();
        quiet(&mut cfg);
        let report = run(&[dep(6, 5.0, 1.0), dep(6, 5.0, 0.5)], &cfg).unwrap();
        for s in &report.stats {
            assert_eq!(s.generated, s.thinned + s.admitted, "{s:?}");
            assert_eq!(s.admitted, s.completed + s.in_flight_at_end, "{s:?}");
        }
    }

    #[test]
    fn deterministic_latency_matches_closed_form() {
        let mut cfg = EmulatorConfig::reference();
        quiet(&mut cfg);
        // 6 RBs -> tx = 350k / 2.1M = 1/6 s; + 5 ms inference.
        let report = run(&[dep(6, 5.0, 1.0)], &cfg).unwrap();
        let expected = 350e3 / (6.0 * 0.35e6) + 0.005;
        for s in &report.samples[0] {
            assert!((s.latency - expected).abs() < 1e-9, "{} vs {expected}", s.latency);
        }
        assert!(report.stats[0].completed > 90, "20s at 5/s minus drain");
    }

    #[test]
    fn zero_admission_sends_nothing() {
        let report = run(&[dep(6, 5.0, 0.0)], &EmulatorConfig::reference()).unwrap();
        assert_eq!(report.stats[0].admitted, 0);
        assert_eq!(report.stats[0].thinned, report.stats[0].generated);
        assert!(report.samples[0].is_empty());
    }

    #[test]
    fn thinning_approximates_admission_ratio() {
        let mut cfg = EmulatorConfig::reference();
        cfg.duration = 400.0;
        quiet(&mut cfg);
        let report = run(&[dep(6, 5.0, 0.6)], &cfg).unwrap();
        let ratio = report.stats[0].admitted as f64 / report.stats[0].generated as f64;
        assert!((ratio - 0.6).abs() < 0.05, "thinned to {ratio}");
    }

    #[test]
    fn undersized_slice_queues_and_misses_deadlines() {
        let mut cfg = EmulatorConfig::reference();
        quiet(&mut cfg);
        // 2 RBs: tx = 0.5 s per image, arrivals every 0.2 s: queue grows.
        let report = run(&[dep(2, 5.0, 1.0)], &cfg).unwrap();
        assert!(report.stats[0].deadline_misses > 0);
        assert!(report.stats[0].in_flight_at_end > 0, "backlog remains");
    }

    #[test]
    fn gpu_contention_serialises() {
        let mut cfg = EmulatorConfig::reference();
        quiet(&mut cfg);
        cfg.duration = 10.0;
        // Heavy inference (0.3 s) from two tasks at 2/s each: GPU util > 1
        // -> deadline misses pile up.
        let mut d = dep(50, 2.0, 1.0);
        d.proc_seconds = 0.3;
        let report = run(&[d.clone(), d], &cfg).unwrap();
        let misses: u64 = report.stats.iter().map(|s| s.deadline_misses).sum();
        assert!(misses > 0, "overloaded GPU must miss deadlines");
    }

    #[test]
    fn batching_relieves_a_saturated_gpu() {
        let mut cfg = EmulatorConfig::reference();
        quiet(&mut cfg);
        cfg.duration = 10.0;
        // One heavy task: 0.25 s per inference at 8 req/s -> GPU demand 2x.
        let mut d = dep(50, 8.0, 1.0);
        d.proc_seconds = 0.25;
        d.max_latency = 2.0;
        let unbatched = run(&[d.clone()], &cfg).unwrap();
        cfg.batching = Some(BatchPolicy { max_batch: 8, marginal_cost: 0.2 });
        let batched = run(&[d], &cfg).unwrap();
        assert!(
            batched.stats[0].completed > unbatched.stats[0].completed,
            "batching must raise throughput: {} vs {}",
            batched.stats[0].completed,
            unbatched.stats[0].completed
        );
        // Conservation still holds with batching.
        let s = &batched.stats[0];
        assert_eq!(s.admitted, s.completed + s.in_flight_at_end);
    }

    #[test]
    fn shared_pool_multiplexes_an_overloaded_task() {
        let mut cfg = EmulatorConfig::reference();
        quiet(&mut cfg);
        cfg.duration = 30.0;
        // Task 0's slice is undersized for its rate; task 1 is idle-ish.
        let mut hot = dep(2, 5.0, 1.0); // needs 5 RBs, has 2
        hot.max_latency = 0.6;
        let cold = dep(8, 0.2, 1.0);
        let sliced = run(&[hot.clone(), cold.clone()], &cfg).unwrap();
        cfg.radio_mode = RadioMode::SharedPool;
        let pooled = run(&[hot, cold], &cfg).unwrap();
        // Under hard slicing the hot task backlogs; the pool absorbs it.
        assert!(sliced.stats[0].in_flight_at_end > 0, "hot slice must backlog");
        assert!(
            pooled.stats[0].in_flight_at_end < sliced.stats[0].in_flight_at_end,
            "pool must drain the hot task: {} vs {}",
            pooled.stats[0].in_flight_at_end,
            sliced.stats[0].in_flight_at_end
        );
        // Conservation in both modes.
        for r in [&sliced, &pooled] {
            for s in &r.stats {
                assert_eq!(s.admitted, s.completed + s.in_flight_at_end);
            }
        }
    }

    #[test]
    fn pool_and_slices_agree_when_one_task_owns_everything() {
        let mut cfg = EmulatorConfig::reference();
        quiet(&mut cfg);
        let d = dep(6, 5.0, 1.0);
        let sliced = run(std::slice::from_ref(&d), &cfg).unwrap();
        cfg.radio_mode = RadioMode::SharedPool;
        let pooled = run(&[d], &cfg).unwrap();
        assert_eq!(sliced.stats[0].completed, pooled.stats[0].completed);
        let (a, b) = (sliced.samples[0][10].latency, pooled.samples[0][10].latency);
        assert!((a - b).abs() < 1e-9, "single-task pool == its own slice");
    }

    #[test]
    fn batch_service_time_model() {
        let p = BatchPolicy { max_batch: 8, marginal_cost: 0.25 };
        assert!((p.service_seconds(0.1, 1) - 0.1).abs() < 1e-12);
        assert!((p.service_seconds(0.1, 4) - 0.175).abs() < 1e-12);
    }

    #[test]
    fn bad_deployment_rejected() {
        let mut d = dep(0, 5.0, 1.0);
        assert!(run(&[d.clone()], &EmulatorConfig::reference()).is_err());
        d.slice_rbs = 1;
        d.bits_per_image = 0.0;
        assert!(run(&[d], &EmulatorConfig::reference()).is_err());
    }

    #[test]
    fn jitter_produces_varying_latencies() {
        let cfg = EmulatorConfig::reference();
        let report = run(&[dep(6, 5.0, 1.0)], &cfg).unwrap();
        let lats: Vec<f64> = report.samples[0].iter().map(|s| s.latency).collect();
        let min = lats.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lats.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min * 1.02, "jitter must spread latencies");
    }
}

//! Mobile-device energy accounting: the paper's opening motivation is
//! that offloading CV tasks spares the devices' batteries. This module
//! quantifies it for a deployment: the energy a UE spends transmitting an
//! image over its slice, versus what executing the DNN locally would
//! cost on a mobile SoC.

use crate::sim::TaskDeployment;
use serde::{Deserialize, Serialize};

/// Power/efficiency profile of a mobile device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceEnergyModel {
    /// Radio power while transmitting (PA + circuitry), watts.
    pub tx_power_w: f64,
    /// Radio power while receiving the (tiny) result, watts.
    pub rx_power_w: f64,
    /// Result payload per inference (class id + confidence), bits.
    pub result_bits: f64,
    /// Downlink rate available for results, bits/s.
    pub downlink_bps: f64,
    /// Local-inference energy efficiency of the device SoC, joules per
    /// GFLOP (mobile NPUs land around 0.1–0.5 J/GFLOP end-to-end,
    /// DRAM traffic included).
    pub joules_per_gflop: f64,
    /// Sustained local inference throughput, FLOP/s (thermally limited).
    pub local_flops_per_sec: f64,
}

impl DeviceEnergyModel {
    /// A mid-range smartphone profile.
    pub fn smartphone() -> Self {
        Self {
            tx_power_w: 1.2,
            rx_power_w: 0.8,
            result_bits: 2048.0,
            downlink_bps: 20e6,
            joules_per_gflop: 0.30,
            local_flops_per_sec: 50e9,
        }
    }

    /// Energy (J) to offload one image over the given slice.
    pub fn offload_energy_j(&self, dep: &TaskDeployment) -> f64 {
        let rate = dep.bits_per_rb * dep.slice_rbs as f64;
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        let tx = dep.bits_per_image / rate;
        let rx = self.result_bits / self.downlink_bps;
        self.tx_power_w * tx + self.rx_power_w * rx
    }

    /// Energy (J) to run `flops` of inference locally.
    pub fn local_energy_j(&self, flops: u64) -> f64 {
        flops as f64 / 1e9 * self.joules_per_gflop
    }

    /// Local inference latency (s) for `flops` on this device.
    pub fn local_latency_s(&self, flops: u64) -> f64 {
        flops as f64 / self.local_flops_per_sec
    }

    /// Energy-saving factor of offloading vs local execution for a task
    /// whose model costs `local_flops` per inference.
    pub fn saving_factor(&self, dep: &TaskDeployment, local_flops: u64) -> f64 {
        self.local_energy_j(local_flops) / self.offload_energy_j(dep)
    }
}

impl Default for DeviceEnergyModel {
    fn default() -> Self {
        Self::smartphone()
    }
}

/// Per-task energy comparison for a whole deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Per-task: (offload J/image, local J/image, saving factor).
    pub per_task: Vec<(f64, f64, f64)>,
    /// Mean saving factor across tasks with non-zero slices.
    pub mean_saving: f64,
}

/// Compares offload vs local energy for every deployed task;
/// `local_flops[t]` is the FLOP count of the model task `t` would have to
/// run on-device (typically the full unpruned network).
pub fn energy_report(
    model: &DeviceEnergyModel,
    deps: &[TaskDeployment],
    local_flops: &[u64],
) -> EnergyReport {
    let per_task: Vec<(f64, f64, f64)> = deps
        .iter()
        .zip(local_flops)
        .map(|(d, &f)| {
            let off = model.offload_energy_j(d);
            let loc = model.local_energy_j(f);
            (off, loc, if off.is_finite() && off > 0.0 { loc / off } else { 0.0 })
        })
        .collect();
    let active: Vec<f64> = per_task.iter().filter(|(o, _, _)| o.is_finite()).map(|&(_, _, s)| s).collect();
    let mean_saving = if active.is_empty() { 0.0 } else { active.iter().sum::<f64>() / active.len() as f64 };
    EnergyReport { per_task, mean_saving }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_radio::ArrivalProcess;

    fn dep(rbs: u32) -> TaskDeployment {
        TaskDeployment {
            name: "t".into(),
            slice_rbs: rbs,
            bits_per_image: 350e3,
            bits_per_rb: 0.35e6,
            proc_seconds: 0.007,
            admission: 1.0,
            arrivals: ArrivalProcess::Periodic { rate_hz: 5.0 },
            max_latency: 0.3,
        }
    }

    #[test]
    fn offloading_resnet18_saves_energy() {
        // The paper's motivation: a ResNet-18 inference (~3.6 GFLOPs) on
        // device vs uploading a 350 kbit image over a 5-RB slice.
        let m = DeviceEnergyModel::smartphone();
        let d = dep(5);
        let local = m.local_energy_j(3_600_000_000);
        let offload = m.offload_energy_j(&d);
        assert!(local > 2.0 * offload, "offloading must save energy: {local} vs {offload}");
        assert!(m.saving_factor(&d, 3_600_000_000) > 2.0);
    }

    #[test]
    fn bigger_slices_cost_less_tx_energy() {
        let m = DeviceEnergyModel::smartphone();
        assert!(m.offload_energy_j(&dep(10)) < m.offload_energy_j(&dep(2)));
    }

    #[test]
    fn tiny_models_may_prefer_local_execution() {
        // A MobileNet-class model (~0.6 GFLOPs) over a starving 1-RB slice:
        // the crossover the paper's intro alludes to.
        let m = DeviceEnergyModel::smartphone();
        let d = dep(1);
        let factor = m.saving_factor(&d, 600_000_000);
        assert!(factor < 1.0, "local wins for tiny models on bad links: {factor}");
    }

    #[test]
    fn local_latency_is_thermal_bound() {
        let m = DeviceEnergyModel::smartphone();
        // 3.6 GFLOPs at 50 GFLOP/s: 72 ms on device vs ~7 ms at the edge.
        let lat = m.local_latency_s(3_600_000_000);
        assert!((lat - 0.072).abs() < 1e-9);
    }

    #[test]
    fn zero_slice_is_infinite_energy() {
        let m = DeviceEnergyModel::smartphone();
        assert!(m.offload_energy_j(&dep(0)).is_infinite());
    }

    #[test]
    fn report_aggregates() {
        let m = DeviceEnergyModel::smartphone();
        let deps = vec![dep(5), dep(10)];
        let r = energy_report(&m, &deps, &[3_600_000_000, 3_600_000_000]);
        assert_eq!(r.per_task.len(), 2);
        assert!(r.mean_saving > 1.0);
        assert!(r.per_task[1].2 > r.per_task[0].2, "bigger slice, bigger saving");
    }
}

//! Closed-loop slice tuning: the DOT allocation sizes each slice at the
//! deterministic latency/rate floor, so a jittery link can graze the
//! deadline (visible in Fig. 11's near-target traces). This module closes
//! the loop the way an operator would: emulate, find the tasks whose
//! p-quantile latency violates the target, grow their slices by one RB,
//! repeat — subject to the cell capacity.

use crate::report::EmulationReport;
use crate::sim::{run, EmuError, EmulatorConfig, TaskDeployment};
use serde::{Deserialize, Serialize};

/// Autotuning configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutotuneConfig {
    /// Latency quantile that must sit below each task's target.
    pub quantile: f64,
    /// Maximum tuning iterations.
    pub max_rounds: usize,
    /// Cell capacity the summed slices may not exceed.
    pub total_rbs: u32,
    /// Emulator settings for the evaluation runs.
    pub emulator: EmulatorConfig,
}

impl AutotuneConfig {
    /// p95 within target, up to 10 rounds, a 100-RB cell.
    pub fn reference() -> Self {
        Self { quantile: 0.95, max_rounds: 10, total_rbs: 100, emulator: EmulatorConfig::reference() }
    }
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        Self::reference()
    }
}

/// Result of an autotuning session.
#[derive(Debug, Clone, PartialEq)]
pub struct AutotuneResult {
    /// The tuned deployments.
    pub deployments: Vec<TaskDeployment>,
    /// RBs added per task over the initial allocation.
    pub added_rbs: Vec<u32>,
    /// Rounds actually run.
    pub rounds: usize,
    /// The final evaluation report.
    pub report: EmulationReport,
    /// Whether every task met its quantile target at the end.
    pub converged: bool,
}

/// Runs the tuning loop.
///
/// # Errors
///
/// Propagates emulator errors ([`EmuError`]).
pub fn autotune(deployments: &[TaskDeployment], cfg: &AutotuneConfig) -> Result<AutotuneResult, EmuError> {
    let mut deps = deployments.to_vec();
    let mut added = vec![0u32; deps.len()];
    let mut rounds = 0usize;

    loop {
        let report = run(&deps, &cfg.emulator)?;
        let mut violators: Vec<usize> = (0..deps.len())
            .filter(|&t| {
                deps[t].admission > 0.0
                    && report
                        .latency_percentile(t, cfg.quantile)
                        .map(|q| q > deps[t].max_latency)
                        .unwrap_or(false)
            })
            .collect();
        let converged = violators.is_empty();
        let total: u32 = deps.iter().map(|d| d.slice_rbs).sum();
        if converged || rounds >= cfg.max_rounds || total >= cfg.total_rbs {
            return Ok(AutotuneResult { deployments: deps, added_rbs: added, rounds, report, converged });
        }
        // Grow the worst violators first, one RB each, within capacity.
        violators.sort_by(|&a, &b| {
            let qa = report.latency_percentile(a, cfg.quantile).unwrap_or(0.0) / deps[a].max_latency;
            let qb = report.latency_percentile(b, cfg.quantile).unwrap_or(0.0) / deps[b].max_latency;
            qb.total_cmp(&qa)
        });
        let mut budget = cfg.total_rbs.saturating_sub(total);
        for t in violators {
            if budget == 0 {
                break;
            }
            deps[t].slice_rbs += 1;
            added[t] += 1;
            budget -= 1;
        }
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_radio::ArrivalProcess;

    fn dep(rbs: u32, max_latency: f64) -> TaskDeployment {
        TaskDeployment {
            name: "t".into(),
            slice_rbs: rbs,
            bits_per_image: 350e3,
            bits_per_rb: 0.35e6,
            proc_seconds: 0.005,
            admission: 1.0,
            arrivals: ArrivalProcess::Periodic { rate_hz: 5.0 },
            max_latency,
        }
    }

    #[test]
    fn undersized_slice_gets_grown_until_it_converges() {
        // 4 RBs cannot meet 0.23 s (tx alone is 0.25 s); the tuner must
        // add capacity until the p95 fits.
        let mut cfg = AutotuneConfig::reference();
        cfg.emulator.duration = 12.0;
        let out = autotune(&[dep(4, 0.23)], &cfg).unwrap();
        assert!(out.converged, "tuner must converge: added {:?}", out.added_rbs);
        assert!(out.added_rbs[0] >= 1);
        let q = out.report.latency_percentile(0, 0.95).unwrap();
        assert!(q <= 0.23, "final p95 {q}");
    }

    #[test]
    fn well_sized_deployment_is_left_alone() {
        let mut cfg = AutotuneConfig::reference();
        cfg.emulator.duration = 12.0;
        let out = autotune(&[dep(7, 0.4)], &cfg).unwrap();
        assert!(out.converged);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.added_rbs, vec![0]);
    }

    #[test]
    fn capacity_cap_is_respected() {
        let mut cfg = AutotuneConfig::reference();
        cfg.emulator.duration = 8.0;
        cfg.total_rbs = 9;
        // Impossible target: would need ~40 RBs; cap at 9.
        let out = autotune(&[dep(4, 0.03)], &cfg).unwrap();
        assert!(!out.converged);
        let total: u32 = out.deployments.iter().map(|d| d.slice_rbs).sum();
        assert!(total <= 9);
    }

    #[test]
    fn rejected_tasks_are_ignored() {
        let mut silent = dep(1, 0.001);
        silent.admission = 0.0;
        let mut cfg = AutotuneConfig::reference();
        cfg.emulator.duration = 5.0;
        let out = autotune(&[silent], &cfg).unwrap();
        assert!(out.converged);
        assert_eq!(out.added_rbs, vec![0]);
    }
}

//! Discrete-event edge/radio emulator — the reproduction's stand-in for
//! the Colosseum wireless network emulator used in Sec. V-B.
//!
//! UEs generate task requests (periodic at the configured inference rate,
//! or Poisson), admitted images are serialised over per-task RB slices,
//! and the edge GPU serves inferences FIFO. [`colosseum::validate`] takes
//! an OffloaDNN solution and reproduces Fig. 11's end-to-end latency
//! traces against the per-task targets.
//!
//! # Example
//!
//! ```
//! use offloadnn_core::{scenario::small_scenario, OffloadnnSolver};
//! use offloadnn_emu::colosseum::{validate, ColosseumConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let s = small_scenario(2);
//! let sol = OffloadnnSolver::new().solve(&s.instance)?;
//! let report = validate(&s.instance, &sol, &ColosseumConfig::reference())?;
//! assert!(report.stats[0].completed > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod autotune;
pub mod colosseum;
pub mod energy;
pub mod event;
pub mod report;
pub mod sim;

pub use autotune::{autotune, AutotuneConfig, AutotuneResult};
pub use colosseum::{deployments, validate, ColosseumConfig, DeployError};
pub use energy::{energy_report, DeviceEnergyModel, EnergyReport};
pub use report::{EmulationReport, LatencySample, TaskStats};
pub use sim::{run, BatchPolicy, EmuError, EmulatorConfig, RadioMode, TaskDeployment};

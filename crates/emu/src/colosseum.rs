//! The Sec. V-B validation scenario: deploy an OffloaDNN solution into the
//! emulated LTE cell and measure end-to-end latencies (Fig. 11).
//!
//! The real experiment runs on the Colosseum hardware-in-the-loop emulator
//! (one SRN as edge platform + vRAN base station, five SRNs as UEs, a
//! 20 MHz FDD cell with 100 RBs, 0 dB path loss, SCOPE-configured slicing).
//! Here the same pipeline is exercised end-to-end against the discrete
//! event model: the controller's outputs (per-task DNN path, admission
//! ratio, RB slice) are applied verbatim, UEs send at the configured
//! inference rate, and latencies are traced.

use crate::report::EmulationReport;
use crate::sim::{run, EmuError, EmulatorConfig, TaskDeployment};
use offloadnn_core::instance::DotInstance;
use offloadnn_core::objective::DotSolution;
use offloadnn_radio::ArrivalProcess;
use serde::{Deserialize, Serialize};

/// Colosseum-like cell configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColosseumConfig {
    /// Cell capacity in RBs (20 MHz FDD -> 100 RBs).
    pub total_rbs: u32,
    /// Emulation horizon and jitters.
    pub emulator: EmulatorConfig,
    /// Whether UEs send periodically at the admitted rate (the SCOPE/UE
    /// configuration of Sec. V-B) or as a Poisson stream.
    pub poisson_arrivals: bool,
}

impl ColosseumConfig {
    /// The Sec. V-B setup.
    pub fn reference() -> Self {
        Self { total_rbs: 100, emulator: EmulatorConfig::reference(), poisson_arrivals: false }
    }
}

impl Default for ColosseumConfig {
    fn default() -> Self {
        Self::reference()
    }
}

/// Errors from deployment.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// The integer slice allocation exceeds the cell capacity.
    CellOverflow {
        /// Total RBs demanded.
        demanded: u32,
        /// Cell capacity.
        capacity: u32,
    },
    /// Emulator-level error.
    Emu(EmuError),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::CellOverflow { demanded, capacity } => {
                write!(f, "slices demand {demanded} RBs but the cell has {capacity}")
            }
            DeployError::Emu(e) => write!(f, "emulation failed: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// Converts a DOT solution into per-task deployments (steps 4–6 of
/// Fig. 4): integer RB slices, UE admission rates, selected-path compute
/// times.
pub fn deployments(
    instance: &DotInstance,
    solution: &DotSolution,
    cfg: &ColosseumConfig,
) -> Vec<TaskDeployment> {
    instance
        .tasks
        .iter()
        .enumerate()
        .map(|(t, task)| {
            let (rbs, bits, proc) = match solution.choices[t] {
                Some(o) => {
                    let opt = &instance.options[t][o];
                    (solution.rbs[t].ceil() as u32, opt.quality.bits, opt.proc_seconds)
                }
                None => (0, task.qualities[0].bits, 0.0),
            };
            let rate = task.request_rate;
            TaskDeployment {
                name: task.name.clone(),
                slice_rbs: rbs,
                bits_per_image: bits,
                bits_per_rb: instance.bits_per_rb(t),
                proc_seconds: proc,
                admission: solution.admission[t],
                arrivals: if cfg.poisson_arrivals {
                    ArrivalProcess::Poisson { rate_hz: rate }
                } else {
                    ArrivalProcess::Periodic { rate_hz: rate }
                },
                max_latency: task.max_latency,
            }
        })
        .collect()
}

/// Deploys and runs a solved instance, checking the integer slice
/// allocation against the cell capacity first.
///
/// # Errors
///
/// [`DeployError::CellOverflow`] if the ceiled slices do not fit the cell;
/// [`DeployError::Emu`] for malformed deployments.
pub fn validate(
    instance: &DotInstance,
    solution: &DotSolution,
    cfg: &ColosseumConfig,
) -> Result<EmulationReport, DeployError> {
    let deps = deployments(instance, solution, cfg);
    let demanded: u32 = deps.iter().map(|d| d.slice_rbs).sum();
    if demanded > cfg.total_rbs {
        return Err(DeployError::CellOverflow { demanded, capacity: cfg.total_rbs });
    }
    run(&deps, &cfg.emulator).map_err(DeployError::Emu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use offloadnn_core::heuristic::OffloadnnSolver;
    use offloadnn_core::scenario::small_scenario;

    #[test]
    fn small_scenario_latencies_meet_targets() {
        // The Fig. 11 claim: the OffloaDNN solution, deployed, keeps the
        // end-to-end latency of every task within its bound.
        let s = small_scenario(5);
        let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
        let cfg = ColosseumConfig::reference();
        let report = validate(&s.instance, &sol, &cfg).unwrap();
        for (t, stats) in report.stats.iter().enumerate() {
            if sol.admission[t] > 0.0 {
                assert!(stats.completed > 0, "task {t} completed nothing");
                // Slices are sized exactly at the latency/rate floor, so a
                // jittered link occasionally grazes the bound; the paper's
                // Fig. 11 shows the same near-target behaviour. The mean
                // must stay within the bound and misses must be rare.
                assert!(
                    stats.miss_rate() < 0.10,
                    "task {t} misses {}% of deadlines",
                    stats.miss_rate() * 100.0
                );
                let mean = report.mean_latency(t).unwrap();
                assert!(mean <= s.instance.tasks[t].max_latency, "task {t} mean latency {mean} above target");
            }
        }
    }

    #[test]
    fn overflow_detected() {
        let s = small_scenario(3);
        let mut sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
        sol.rbs[0] = 1000.0;
        let err = validate(&s.instance, &sol, &ColosseumConfig::reference()).unwrap_err();
        assert!(matches!(err, DeployError::CellOverflow { .. }));
    }

    #[test]
    fn rejected_tasks_deploy_silent() {
        let s = small_scenario(2);
        let sol = offloadnn_core::objective::DotSolution::rejected(&s.instance);
        let report = validate(&s.instance, &sol, &ColosseumConfig::reference()).unwrap();
        for stats in &report.stats {
            assert_eq!(stats.admitted, 0);
        }
    }

    #[test]
    fn poisson_mode_runs() {
        let s = small_scenario(2);
        let sol = OffloadnnSolver::new().solve(&s.instance).unwrap();
        let mut cfg = ColosseumConfig::reference();
        cfg.poisson_arrivals = true;
        let report = validate(&s.instance, &sol, &cfg).unwrap();
        assert!(report.stats.iter().any(|st| st.completed > 0));
    }
}

//! Discrete-event machinery: a time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at an event instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A UE generates a task request (image ready for upload).
    Arrival {
        /// Task index.
        task: usize,
    },
    /// An image finished its uplink transmission.
    UplinkDone {
        /// Task index.
        task: usize,
        /// Request sequence number within the task.
        request: u64,
    },
    /// The GPU finished an inference.
    InferenceDone {
        /// Task index.
        task: usize,
        /// Request sequence number within the task.
        request: u64,
        /// Whether this completion frees the GPU slot its batch occupied
        /// (true for exactly one member per batch).
        releases_slot: bool,
    },
}

/// A scheduled event. Ordered by time, with a sequence number as a
/// deterministic tie-break.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation time in seconds.
    pub time: f64,
    /// Monotonic tie-break.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first.
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event.
    ///
    /// # Panics
    ///
    /// Panics on non-finite times (a corrupted simulation clock).
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::Arrival { task: 0 });
        q.push(1.0, EventKind::Arrival { task: 1 });
        q.push(3.0, EventKind::Arrival { task: 2 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Arrival { task: 0 });
        q.push(1.0, EventKind::Arrival { task: 1 });
        q.push(1.0, EventKind::Arrival { task: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival { task } => task,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_rejected() {
        EventQueue::new().push(f64::NAN, EventKind::Arrival { task: 0 });
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, EventKind::Arrival { task: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}

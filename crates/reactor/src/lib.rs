//! `offloadnn-reactor` — minimal, dependency-free epoll event-loop
//! primitives for the `offloadnn-net` async frontend.
//!
//! The crate wraps exactly the kernel surface a readiness-driven TCP
//! server needs and nothing more:
//!
//! - [`Epoll`] — level-triggered interest registration ([`Epoll::add`] /
//!   [`Epoll::modify`] / [`Epoll::delete`]) and polling ([`Epoll::wait`])
//!   with `u64` user tokens;
//! - [`Events`] / [`Event`] — the reusable readiness buffer and decoded
//!   per-fd readiness flags;
//! - [`Waker`] — self-pipe cross-thread wakeup so other threads can
//!   unpark a loop sitting in `epoll_wait`;
//! - [`set_nonblocking`] — the `fcntl` toggle every registered socket
//!   needs.
//!
//! The raw `extern "C"` declarations live in the private `sys` module —
//! the registry is unreachable in this environment, so there is no `libc`
//! dependency; the declarations are the crate's own vendored stand-in.
//! All `unsafe` in the workspace's networking stack is confined to this
//! crate: `offloadnn-net` keeps its `#![forbid(unsafe_code)]`.
//!
//! Linux-only by construction (epoll is a Linux API), matching the
//! workspace's deployment target.

#![deny(missing_docs)]

mod epoll;
mod sys;
mod waker;

pub use epoll::{set_nonblocking, Epoll, Event, Events, Interest};
pub use waker::Waker;

//! Cross-thread event-loop wakeup via the self-pipe trick.
//!
//! An event loop parked in `epoll_wait` cannot see work queued by other
//! threads (completion handlers, the acceptor) until something makes a
//! registered fd ready. A [`Waker`] owns a nonblocking pipe whose read end
//! the loop registers under a reserved token; [`Waker::wake`] writes one
//! byte, the loop wakes, calls [`Waker::drain`], and checks its queues.
//!
//! An `armed` flag dedupes wakes: while a byte is already in flight every
//! further `wake` is a single atomic load, so hot completion paths don't
//! serialize on pipe writes.

use crate::sys;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};

/// A pipe-backed wakeup handle, shared across threads via `Arc`.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
    armed: AtomicBool,
}

impl Waker {
    /// Creates the pipe (nonblocking, close-on-exec on both ends).
    ///
    /// # Errors
    ///
    /// The `pipe2` failure as [`io::Error`].
    pub fn new() -> io::Result<Self> {
        let mut fds: [sys::c_int; 2] = [-1, -1];
        // SAFETY: `fds` is a live 2-element array for the duration of the
        // call, which is what pipe2 writes into.
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { read_fd: fds[0], write_fd: fds[1], armed: AtomicBool::new(false) })
    }

    /// The read end, for the event loop to register with its epoll.
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Makes the read end readable, waking a parked `epoll_wait`. No-op
    /// (one atomic load) while a previous wake is still pending.
    pub fn wake(&self) {
        if self.armed.swap(true, Ordering::AcqRel) {
            return;
        }
        let byte = 1u8;
        // SAFETY: writes one byte from a live stack local. A full pipe
        // returns EAGAIN, which is fine: the loop is awake already.
        unsafe { sys::write(self.write_fd, (&byte as *const u8).cast(), 1) };
    }

    /// Empties the pipe and re-arms. The event loop calls this on every
    /// wakeup of the waker token, before inspecting its queues — draining
    /// first means a `wake` racing with the drain is never lost.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reads into a live stack buffer of the stated size.
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
        self.armed.store(false, Ordering::Release);
    }
}

// SAFETY: both fds are plain integers used through thread-safe syscalls,
// and `armed` is atomic.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: both fds are owned by this waker and closed once.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoll::{Epoll, Events, Interest};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wake_unblocks_an_epoll_wait() {
        let waker = Arc::new(Waker::new().expect("waker"));
        let epoll = Epoll::new().expect("epoll");
        epoll.add(waker.fd(), u64::MAX, Interest::READABLE).expect("add");

        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });

        let mut events = Events::with_capacity(4);
        let n = epoll.wait(&mut events, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().expect("event").token, u64::MAX);
        handle.join().expect("join");
    }

    #[test]
    fn drain_rearms_so_the_next_wake_fires_again() {
        let waker = Waker::new().expect("waker");
        let epoll = Epoll::new().expect("epoll");
        epoll.add(waker.fd(), 0, Interest::READABLE).expect("add");
        let mut events = Events::with_capacity(4);

        waker.wake();
        waker.wake(); // deduped while armed
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_secs(5))).expect("wait"), 1);
        waker.drain();
        // Level-triggered: with the pipe drained, no stale readiness.
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_millis(10))).expect("wait"), 0);

        waker.wake();
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_secs(5))).expect("wait"), 1);
        waker.drain();
    }
}
